"""Head-to-head: LOCAT vs the four SOTA tuners on one benchmark.

Tunes HiBench Aggregation at 300 GB on the simulated x86 cluster with
LOCAT, Tuneful, DAC, GBO-RL, and QTune, then reports each tuner's
optimization overhead and tuned performance (the paper's Figures 11-14
condensed to one table).

    python examples/compare_tuners.py [benchmark]
"""

import sys

from repro.harness.experiment import compare_tuners
from repro.harness.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "aggregation"
    print(f"Tuning {benchmark} at 300 GB with five tuners (this runs "
          "thousands of simulated Spark jobs)...")
    comparison = compare_tuners(benchmark=benchmark, cluster="x86", datasize_gb=300.0, seed=3)

    rows = []
    locat = comparison.locat
    for name, result in comparison.results.items():
        rows.append([
            name,
            result.best_duration_s,
            result.overhead_hours,
            result.evaluations,
            "-" if name == "LOCAT" else f"{comparison.overhead_ratio(name):.1f}x",
        ])
    print()
    print(format_table(
        ["tuner", "tuned time (s)", "overhead (h)", "runs", "overhead vs LOCAT"],
        rows,
        title=f"{benchmark} @ 300 GB on the x86 cluster",
    ))
    print()
    print(f"LOCAT reached {locat.best_duration_s:.0f}s spending "
          f"{locat.overhead_hours:.1f}h; the cheapest baseline spent "
          f"{min(r.overhead_hours for n, r in comparison.results.items() if n != 'LOCAT'):.1f}h.")


if __name__ == "__main__":
    main()
