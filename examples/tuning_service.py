"""Tuning-as-a-service: several applications sharing one LOCAT server.

Starts the HTTP tuning service on an ephemeral port, registers three
benchmarks as tenants, and drives a week of nightly runs for each from
concurrent client threads — the first night pays the tuning session,
every later night reuses the deployed configuration at zero cost.  The
service is then killed and restarted on the same history store to show
the warm start: every tenant comes back bootstrapped with zero simulator
runs and keeps serving its tuned configuration.

    python examples/tuning_service.py
"""

import tempfile
import threading

from repro.harness.report import format_table
from repro.service import TuningClient, TuningService

#: Keep the demo quick: small bootstrap, few BO iterations.
TUNER = {"n_qcsa": 10, "n_iicp": 8, "max_iterations": 8, "min_iterations": 3, "n_mcmc": 0}

#: Tenants: (app_id, benchmark, nightly input sizes in GB).
TENANTS = [
    ("etl-join", "join", [100, 104, 108, 112]),
    ("reporting-scan", "scan", [200, 205, 210, 220]),
    ("rollup-agg", "aggregation", [150, 152, 155, 160]),
]


def drive(client: TuningClient, app_id: str, sizes: list[float], rows: list) -> None:
    """One tenant's nightly loop: observe, run with the returned config."""
    last_duration = None
    for night, datasize in enumerate(sizes, start=1):
        job = client.observe(app_id, float(datasize), duration_s=last_duration)
        decision = job["decision"]
        # In production the application would now run with decision["config"];
        # here the best-known duration stands in for the measured runtime.
        last_duration = decision["duration_s"]
        rows.append([
            app_id, night, f"{datasize} GB",
            "RETUNE" if decision["retuned"] else "reuse",
            decision["reason"],
        ])


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="locat-store-") as store_dir:
        print("=== first service lifetime: cold start ===")
        service = TuningService(store_dir, port=0, n_workers=4).start()
        client = TuningClient(service.url)
        for app_id, benchmark, _ in TENANTS:
            client.register_app(app_id, benchmark, seed=11, tuner=TUNER)
        print(f"serving {len(TENANTS)} tenants on {service.url}\n")

        rows: list = []
        threads = [
            threading.Thread(target=drive, args=(client, app_id, sizes, rows))
            for app_id, _, sizes in TENANTS
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rows.sort()
        print(format_table(
            ["tenant", "night", "input", "action", "why"], rows,
            title="Nightly runs across tenants (concurrent)",
        ))
        before = {a["app_id"]: a for a in client.list_apps()}
        print("\nsimulator runs paid per tenant:",
              {k: v["evaluations"] for k, v in before.items()})
        configs_before = {app_id: client.config(app_id)["parameters"] for app_id, _, _ in TENANTS}
        service.close()

        print("\n=== second service lifetime: warm start from the store ===")
        service = TuningService(store_dir, port=0, n_workers=4).start()
        client = TuningClient(service.url)
        rows = []
        for a in client.list_apps():
            same = client.config(a["app_id"])["parameters"] == configs_before[a["app_id"]]
            rows.append([
                a["app_id"], a["bootstrapped"], a["evaluations"],
                "identical" if same else "DIFFERENT",
            ])
        print(format_table(
            ["tenant", "bootstrapped", "runs since restart", "deployed config"], rows,
            title="Rehydrated sessions (no QCSA/IICP bootstrap re-run)",
        ))

        job = client.observe("etl-join", 110.0)
        after = client.app("etl-join")
        print(f"\npost-restart observe on etl-join: retuned={job['decision']['retuned']} "
              f"({job['decision']['reason']}); simulator runs this lifetime: "
              f"{after['evaluations']}")
        service.close()


if __name__ == "__main__":
    main()
