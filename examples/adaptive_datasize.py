"""The paper's motivating scenario: input data grows, configs go stale.

A nightly TPC-H job starts at 100 GB and grows to 500 GB over time.  A
conventional tuner's configuration (tuned once at 100 GB) degrades as
data grows; LOCAT's datasize-aware Gaussian process adapts at a small
fraction of a re-tuning cost.

    python examples/adaptive_datasize.py
"""

import numpy as np

from repro.baselines import Tuneful
from repro.core import LOCAT
from repro.harness.report import format_table
from repro.sparksim import SparkSQLSimulator, get_application, x86_cluster

DATASIZES = (100.0, 200.0, 300.0, 400.0, 500.0)


def main() -> None:
    app = get_application("tpch")
    simulator = SparkSQLSimulator(x86_cluster())

    print("Tuning once with Tuneful at 100 GB (a conventional, "
          "datasize-unaware tuner)...")
    tuneful = Tuneful(SparkSQLSimulator(x86_cluster()), app, rng=5)
    tuneful_result = tuneful.tune(100.0)
    print(f"  {tuneful_result.summary()}")

    print("Tuning online with LOCAT (bootstrap at 100 GB, cheap "
          "adaptation afterwards)...")
    locat = LOCAT(simulator, app, rng=5)

    rows = []
    rng = np.random.default_rng(9)
    for ds in DATASIZES:
        locat_result = locat.tune(ds)
        stale = float(np.mean([
            simulator.run(app, tuneful_result.best_config, ds, rng=rng).duration_s
            for _ in range(3)
        ]))
        rows.append([
            f"{ds:.0f} GB",
            stale,
            locat_result.best_duration_s,
            stale / locat_result.best_duration_s,
            locat_result.overhead_hours,
        ])

    print()
    print(format_table(
        ["datasize", "Tuneful@100GB config (s)", "LOCAT adapted (s)", "speedup", "LOCAT session cost (h)"],
        rows,
        title="Config staleness vs online adaptation (TPC-H)",
    ))
    print("\nThe stale configuration's penalty grows with the data; LOCAT's")
    print("adaptation sessions reuse the DAGP across datasizes, so only the")
    print("first session pays the bootstrap cost.")


if __name__ == "__main__":
    main()
