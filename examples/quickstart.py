"""Quickstart: tune a Spark SQL application with LOCAT.

Runs LOCAT on the HiBench Join benchmark (simulated x86 cluster),
compares the tuned configuration against Spark defaults, and prints the
interesting parameter values.

    python examples/quickstart.py
"""

from repro.core import LOCAT
from repro.sparksim import SparkSQLSimulator, get_application, x86_cluster


def main() -> None:
    cluster = x86_cluster()
    simulator = SparkSQLSimulator(cluster)
    app = get_application("join")

    print(f"Tuning {app.name} on the {cluster.name} cluster "
          f"({cluster.total_cores} cores / {cluster.total_memory_gb:.0f} GB)...")
    locat = LOCAT(simulator, app, rng=1)
    result = locat.tune(datasize_gb=300.0)

    default_config = simulator.space.default()
    default_time = simulator.run(app, default_config, 300.0, rng=2).duration_s

    print()
    print(result.summary())
    print(f"Spark defaults:    {default_time:10.1f} s")
    print(f"LOCAT-tuned:       {result.best_duration_s:10.1f} s "
          f"({default_time / result.best_duration_s:.1f}x faster than defaults)")
    print()
    print("Key tuned parameters:")
    for name in (
        "sql.shuffle.partitions",
        "executor.instances",
        "executor.cores",
        "executor.memory",
        "memory.offHeap.enabled",
        "memory.offHeap.size",
        "shuffle.compress",
    ):
        print(f"  spark.{name:40s} {default_config[name]!s:>8} -> {result.best_config[name]!s:>8}")
    print()
    print(f"Important parameters selected by IICP: {len(result.details['iicp_selected'])}"
          f" of 38; latent dimensions tuned by BO: {result.details['n_latent_dims']}")


if __name__ == "__main__":
    main()
