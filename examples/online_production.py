"""Production-style online tuning with drift detection.

Simulates a month of nightly TPC-H runs whose input grows over time. The
OnlineController decides when LOCAT should (re)tune: the first night, at
large datasize jumps, and whenever measured durations drift above the
model's expectation. Between tuning sessions, production runs reuse the
deployed configuration at zero tuning cost.

    python examples/online_production.py
"""

from repro.core import LOCAT
from repro.core.export import diff_configs
from repro.core.online import OnlineController
from repro.harness.report import format_table
from repro.sparksim import SparkSQLSimulator, get_application, x86_cluster

#: Nightly input sizes (GB): slow growth, then a step change.
NIGHTLY_DATASIZES = [100, 105, 110, 118, 125, 135, 150, 290, 300, 310, 330, 350]


def main() -> None:
    app = get_application("tpch")
    simulator = SparkSQLSimulator(x86_cluster())
    locat = LOCAT(simulator, app, rng=11, max_iterations=15)
    controller = OnlineController(locat, datasize_margin=0.3)

    rows = []
    last_duration = None
    for night, datasize in enumerate(NIGHTLY_DATASIZES, start=1):
        decision = controller.observe(float(datasize), duration_s=last_duration)
        # "Run tonight's job" with the deployed configuration.
        last_duration = simulator.run(app, decision.config, float(datasize),
                                      rng=night).duration_s
        rows.append([
            night,
            f"{datasize} GB",
            "RETUNE" if decision.retuned else "reuse",
            last_duration,
            decision.reason if decision.retuned else "",
        ])

    print(format_table(
        ["night", "input", "action", "runtime (s)", "why"],
        rows,
        title="A month of nightly TPC-H runs under the online controller",
    ))

    print("\nFinal deployed configuration vs Spark defaults:")
    changed = diff_configs(simulator.space.default(), controller.deployed_config)
    for key, (before, after) in sorted(changed.items())[:12]:
        print(f"  {key:50s} {before:>8} -> {after:>8}")
    sessions = sum(1 for r in rows if r[2] == "RETUNE")
    print(f"\nTuning sessions: {sessions} of {len(rows)} nights; every other "
          "night ran at zero tuning cost.")


if __name__ == "__main__":
    main()
