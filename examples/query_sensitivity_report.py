"""QCSA in isolation: which TPC-DS queries react to configuration tuning?

Reproduces the paper's Figure 8 analysis: run TPC-DS under 30 random
configurations, compute each query's coefficient of variation, split the
CV range into three bands, and report the configuration-sensitive set —
along with the shuffle volumes that explain it (section 5.11).

    python examples/query_sensitivity_report.py
"""

from repro.core import SparkSQLObjective
from repro.core.qcsa import QCSA, analyze_samples
from repro.harness.report import format_table
from repro.sparksim import SparkSQLSimulator, arm_cluster, get_application

PAPER_CSQ = {
    "Q72", "Q29", "Q14b", "Q43", "Q41", "Q99", "Q57", "Q33", "Q14a", "Q69",
    "Q40", "Q64a", "Q50", "Q21", "Q70", "Q95", "Q54", "Q23a", "Q23b", "Q15",
    "Q58", "Q62", "Q20",
}


def main() -> None:
    app = get_application("tpcds")
    simulator = SparkSQLSimulator(arm_cluster())
    objective = SparkSQLObjective(simulator, app, rng=42)

    print("Running TPC-DS 30 times with random configurations (300 GB)...")
    samples = QCSA(n_samples=30).collect(objective, 300.0, rng=42)
    result = analyze_samples(samples)

    ranked = sorted(result.cvs.items(), key=lambda kv: -kv[1])
    shuffle_gb = {q.name: q.total_shuffle_fraction * 300.0 for q in app.queries}
    rows = [
        [name, cv, shuffle_gb[name], "CSQ" if name in result.csq else "CIQ"]
        for name, cv in ranked[:25]
    ]
    print()
    print(format_table(
        ["query", "CV", "shuffle GB", "class"],
        rows,
        title="Top 25 TPC-DS queries by configuration sensitivity",
    ))
    print()
    overlap = len(set(result.csq) & PAPER_CSQ)
    print(f"CSQ: {len(result.csq)} queries, CIQ: {len(result.ciq)} "
          f"(paper: 23 / 81); overlap with the paper's CSQ set: {overlap}/23")
    print(f"CV threshold (min + width of the bottom band): {result.threshold:.2f}")
    print()
    print("Collecting one training sample with only the CSQ queries (the")
    print("RQA) costs a fraction of a full run, which is where LOCAT's")
    print("sample-collection savings come from.")


if __name__ == "__main__":
    main()
