"""Tests for regression trees and gradient boosting."""

import numpy as np
import pytest

from repro.ml.gbrt import GradientBoostedRegressionTrees
from repro.ml.tree import RegressionTree


@pytest.fixture()
def step_data():
    x = np.linspace(0, 1, 50)[:, None]
    y = np.where(x[:, 0] < 0.5, 1.0, 3.0)
    return x, y


class TestRegressionTree:
    def test_learns_step_function(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=2).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y, atol=1e-9)

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(0)
        x = rng.random((100, 2))
        y = rng.random(100)
        tree = RegressionTree(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(1).random((20, 2))
        tree = RegressionTree().fit(x, np.full(20, 5.0))
        assert tree.depth == 0
        np.testing.assert_allclose(tree.predict(x), 5.0)

    def test_min_samples_leaf(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = RegressionTree(min_samples_leaf=2).fit(x, y)
        # The only legal split leaves two samples per side.
        assert tree.predict(np.array([[0.5]]))[0] == pytest.approx(0.0)

    def test_feature_importances_point_to_signal(self):
        rng = np.random.default_rng(2)
        x = rng.random((200, 3))
        y = 5.0 * (x[:, 1] > 0.5)  # only feature 1 matters
        tree = RegressionTree(max_depth=3).fit(x, y)
        assert int(np.argmax(tree.feature_importances_)) == 1

    def test_predict_wrong_width(self, step_data):
        x, y = step_data
        tree = RegressionTree().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 5)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_split=1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))


class TestGBRT:
    def test_beats_single_tree_on_smooth_target(self):
        rng = np.random.default_rng(3)
        x = rng.random((150, 1))
        y = np.sin(6 * x[:, 0])
        tree = RegressionTree(max_depth=3).fit(x, y)
        gbrt = GradientBoostedRegressionTrees(n_estimators=100, max_depth=3).fit(x, y)
        err_tree = float(np.mean((tree.predict(x) - y) ** 2))
        err_gbrt = float(np.mean((gbrt.predict(x) - y) ** 2))
        assert err_gbrt < err_tree / 2

    def test_staged_predictions_improve(self):
        rng = np.random.default_rng(4)
        x = rng.random((100, 2))
        y = x[:, 0] * 2 + x[:, 1]
        gbrt = GradientBoostedRegressionTrees(n_estimators=40).fit(x, y)
        errors = [float(np.mean((p - y) ** 2)) for p in gbrt.staged_predict(x)]
        assert errors[-1] < errors[0]

    def test_feature_importances_normalized(self):
        rng = np.random.default_rng(5)
        x = rng.random((100, 4))
        y = 3 * x[:, 2]
        gbrt = GradientBoostedRegressionTrees(n_estimators=20).fit(x, y)
        assert gbrt.feature_importances_.sum() == pytest.approx(1.0)
        assert int(np.argmax(gbrt.feature_importances_)) == 2

    def test_subsampling_reproducible_with_seed(self):
        rng = np.random.default_rng(6)
        x = rng.random((80, 2))
        y = x[:, 0]
        a = GradientBoostedRegressionTrees(n_estimators=10, subsample=0.7, rng=1).fit(x, y)
        b = GradientBoostedRegressionTrees(n_estimators=10, subsample=0.7, rng=1).fit(x, y)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedRegressionTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedRegressionTrees(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedRegressionTrees(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedRegressionTrees().predict(np.zeros((1, 2)))
