"""Tests for the Datasize-Aware Gaussian Process."""

import numpy as np
import pytest

from repro.core.dagp import DatasizeAwareGP, datasize_coordinate


def synthetic_observations(rng, n=30):
    """t = 100 * (1 + 4*(x0-0.7)^2) * ds ; minimum at x0 = 0.7."""
    points = rng.random((n, 2))
    datasizes = rng.choice([100.0, 300.0, 500.0], size=n)
    durations = 100.0 * (1 + 4 * (points[:, 0] - 0.7) ** 2) * datasizes / 100.0
    return points, datasizes, durations


class TestNormalization:
    def test_reference_is_one_tb(self):
        assert datasize_coordinate(1024.0) == pytest.approx(1.0)
        assert datasize_coordinate(512.0) == pytest.approx(0.5)


class TestFitPredict:
    def test_prediction_scales_with_datasize(self, rng):
        points, datasizes, durations = synthetic_observations(rng)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(points, datasizes, durations)
        x = np.array([[0.7, 0.5]])
        t100 = model.predict_duration(x, 100.0)[0]
        t500 = model.predict_duration(x, 500.0)[0]
        assert t500 > t100

    def test_interpolates_training_data(self, rng):
        points, datasizes, durations = synthetic_observations(rng)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(points, datasizes, durations)
        for i in range(5):
            predicted = model.predict_duration(points[i : i + 1], datasizes[i])[0]
            assert predicted == pytest.approx(durations[i], rel=0.2)

    def test_positive_durations_required(self, rng):
        model = DatasizeAwareGP(config_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)), np.array([100.0, 100.0]), np.array([1.0, -1.0]))

    def test_dimension_checked(self, rng):
        model = DatasizeAwareGP(config_dim=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.full(4, 100.0), np.ones(4))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DatasizeAwareGP(config_dim=2).predict(np.zeros((1, 2)), 100.0)

    def test_invalid_config_dim(self):
        with pytest.raises(ValueError):
            DatasizeAwareGP(config_dim=0)


class TestAcquisition:
    def test_ei_mcmc_runs_and_is_nonnegative(self, rng):
        points, datasizes, durations = synthetic_observations(rng)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=4).fit(points, datasizes, durations, rng=0)
        candidates = rng.random((20, 2))
        ei = model.acquisition(candidates, 300.0, best_duration_s=float(durations.min()))
        assert ei.shape == (20,)
        assert np.all(ei >= -1e-12)

    def test_acquisition_favors_promising_region(self, rng):
        points, datasizes, durations = synthetic_observations(rng, n=40)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(points, datasizes, durations)
        best = float(durations[datasizes == 300.0].min()) if np.any(datasizes == 300.0) else float(durations.min())
        near_optimum = np.array([[0.7, 0.5]])
        far = np.array([[0.05, 0.5]])
        ei_near = model.acquisition(near_optimum, 300.0, best)
        ei_far = model.acquisition(far, 300.0, best)
        assert ei_near[0] > ei_far[0] * 0.5  # near-optimum at least competitive

    def test_mcmc_marginalization_changes_scores(self, rng):
        points, datasizes, durations = synthetic_observations(rng)
        plain = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(points, datasizes, durations)
        marginal = DatasizeAwareGP(config_dim=2, n_mcmc=6).fit(points, datasizes, durations, rng=1)
        candidates = rng.random((10, 2))
        best = float(durations.min())
        a = plain.acquisition(candidates, 300.0, best)
        b = marginal.acquisition(candidates, 300.0, best)
        assert not np.allclose(a, b)

    def test_transfer_across_datasizes(self, rng):
        # Observations only at 100 GB still inform ranking at 500 GB.
        points = rng.random((25, 1))
        durations = 50.0 + 500.0 * (points[:, 0] - 0.6) ** 2
        model = DatasizeAwareGP(config_dim=1, n_mcmc=0).fit(
            points, np.full(25, 100.0), durations
        )
        good = model.predict_duration(np.array([[0.6]]), 500.0)[0]
        bad = model.predict_duration(np.array([[0.05]]), 500.0)[0]
        assert good < bad
