"""Tests for the execution engine — the paper's causal mechanisms."""

import numpy as np
import pytest

from repro.sparksim import SparkSQLSimulator, get_application, x86_cluster
from repro.sparksim.query import Application, Query, Stage, StageKind


@pytest.fixture()
def sim(x86):
    return SparkSQLSimulator(x86, noise=0.0)


def single_stage_app(stage, category="join"):
    return Application(name="one", queries=(Query(name="q", stages=(stage,), category=category),))


class TestBasics:
    def test_run_returns_all_queries(self, sim, tpcds):
        metrics = sim.run(tpcds, sim.space.default(), 100.0, rng=0)
        assert len(metrics.queries) == 104
        assert metrics.duration_s == pytest.approx(sum(q.duration_s for q in metrics.queries))

    def test_durations_positive(self, sim, tpch):
        metrics = sim.run(tpch, sim.space.default(), 100.0, rng=0)
        assert all(q.duration_s > 0 for q in metrics.queries)
        assert metrics.gc_s >= 0

    def test_datasize_must_be_positive(self, sim, join_app):
        with pytest.raises(ValueError):
            sim.run(join_app, sim.space.default(), 0.0)

    def test_noise_reproducible_with_seed(self, x86, join_app):
        sim = SparkSQLSimulator(x86, noise=0.05)
        a = sim.run(join_app, sim.space.default(), 100.0, rng=5).duration_s
        b = sim.run(join_app, sim.space.default(), 100.0, rng=5).duration_s
        assert a == pytest.approx(b)

    def test_noiseless_is_deterministic(self, sim, join_app):
        a = sim.run(join_app, sim.space.default(), 100.0, rng=1).duration_s
        b = sim.run(join_app, sim.space.default(), 100.0, rng=2).duration_s
        assert a == pytest.approx(b)

    def test_negative_noise_rejected(self, x86):
        with pytest.raises(ValueError):
            SparkSQLSimulator(x86, noise=-0.1)

    def test_execution_slots_capped_by_cluster(self, sim):
        config = sim.space.make(**{"executor.instances": 112, "executor.cores": 16})
        assert sim.execution_slots(config) <= sim.cluster.total_cores


class TestScalingLaws:
    def test_time_grows_with_datasize(self, sim, join_app):
        config = sim.space.default()
        t100 = sim.run(join_app, config, 100.0).duration_s
        t500 = sim.run(join_app, config, 500.0).duration_s
        assert t500 > 2 * t100

    def test_gc_grows_superlinearly_with_datasize(self, sim, join_app):
        # Figure 19: under a fixed config GC time grows faster than data.
        config = sim.space.make(**{"executor.memory": 16, "executor.cores": 4,
                                   "memory.offHeap.enabled": False,
                                   "sql.shuffle.partitions": 400})
        gc100 = sim.run(join_app, config, 100.0).gc_s
        gc500 = sim.run(join_app, config, 500.0).gc_s
        assert gc500 > 5 * max(gc100, 1e-9)

    def test_more_slots_means_faster(self, sim, join_app):
        few = sim.space.make(**{"executor.instances": 9, "executor.cores": 1})
        many = sim.space.make(**{"executor.instances": 70, "executor.cores": 2})
        assert (
            sim.run(join_app, many, 100.0).duration_s
            < sim.run(join_app, few, 100.0).duration_s
        )


class TestConfigSensitivityMechanisms:
    def test_scan_query_insensitive(self, sim, scan_app, rng):
        # Section 5.11: map-only selection queries barely react to config.
        times = [
            sim.run(scan_app, sim.space.sample(rng), 100.0).duration_s for _ in range(12)
        ]
        cv = float(np.std(times) / np.mean(times))
        assert cv < 0.5

    def test_join_more_sensitive_than_scan(self, sim, join_app, scan_app, rng):
        join_times, scan_times = [], []
        for _ in range(12):
            config = sim.space.sample(rng)
            join_times.append(sim.run(join_app, config, 300.0).duration_s)
            scan_times.append(sim.run(scan_app, config, 300.0).duration_s)
        cv_join = float(np.std(join_times) / np.mean(join_times))
        cv_scan = float(np.std(scan_times) / np.mean(scan_times))
        assert cv_join > cv_scan

    def test_shuffle_partitions_relieve_memory(self, sim, join_app):
        base = {"executor.memory": 8, "executor.cores": 8, "memory.offHeap.enabled": False}
        few = sim.space.make(**base, **{"sql.shuffle.partitions": 100})
        many = sim.space.make(**base, **{"sql.shuffle.partitions": 1000})
        assert (
            sim.run(join_app, many, 300.0).duration_s
            < sim.run(join_app, few, 300.0).duration_s
        )

    def test_compression_helps_shuffle_heavy_queries(self, sim, join_app):
        on = sim.space.make(**{"shuffle.compress": True})
        off = sim.space.make(**{"shuffle.compress": False})
        assert sim.run(join_app, on, 300.0).duration_s < sim.run(join_app, off, 300.0).duration_s

    def test_broadcast_join_short_circuits_shuffle(self, sim):
        stage = Stage(
            kind=StageKind.SHUFFLE_JOIN,
            input_fraction=0.2,
            shuffle_fraction=0.2,
            small_side_mb=4.0,  # 4 MB: broadcastable within threshold range
        )
        app = single_stage_app(stage)
        low = sim.space.make(**{"sql.autoBroadcastJoinThreshold": 1024})  # 1 MB
        high = sim.space.make(**{"sql.autoBroadcastJoinThreshold": 8192})  # 8 MB
        t_shuffled = sim.run(app, low, 200.0)
        t_broadcast = sim.run(app, high, 200.0)
        assert t_broadcast.duration_s < t_shuffled.duration_s
        assert t_broadcast.queries[0].stages[0].broadcast
        assert not t_shuffled.queries[0].stages[0].broadcast

    def test_codegen_max_fields_penalty(self, sim):
        stage = Stage(kind=StageKind.SCAN, input_fraction=0.3, cpu_weight=1.0, fields=150)
        app = single_stage_app(stage, category="selection")
        narrow = sim.space.make(**{"sql.codegen.maxFields": 50})  # codegen off
        wide = sim.space.make(**{"sql.codegen.maxFields": 200})  # codegen on
        assert sim.run(app, wide, 100.0).duration_s < sim.run(app, narrow, 100.0).duration_s

    def test_default_deviation_penalty_u_shape(self, sim, join_app):
        # Secondary knobs have interior sweet spots at their defaults.
        at_default = sim.space.make(**{"sql.inMemoryColumnarStorage.batchSize": 10000})
        low = sim.space.make(**{"sql.inMemoryColumnarStorage.batchSize": 5000})
        high = sim.space.make(**{"sql.inMemoryColumnarStorage.batchSize": 20000})
        t_def = sim.run(join_app, at_default, 100.0).duration_s
        assert t_def < sim.run(join_app, low, 100.0).duration_s
        assert t_def < sim.run(join_app, high, 100.0).duration_s

    def test_skew_slows_reduce_side(self, sim):
        def app_with_skew(skew):
            stage = Stage(
                kind=StageKind.SHUFFLE_JOIN, input_fraction=0.2, shuffle_fraction=0.2, skew=skew
            )
            return single_stage_app(stage)

        flat = sim.run(app_with_skew(0.0), sim.space.default(), 200.0).duration_s
        skewed = sim.run(app_with_skew(0.6), sim.space.default(), 200.0).duration_s
        assert skewed > flat


class TestMetricsDetail:
    def test_stage_metrics_populated(self, sim, join_app):
        metrics = sim.run(join_app, sim.space.default(), 100.0)
        stage = metrics.queries[0].stages[0]
        assert stage.partitions > 0
        assert stage.waves >= 1
        assert stage.duration_s == pytest.approx(
            stage.compute_s + stage.io_s + stage.shuffle_s + stage.gc_s + stage.overhead_s
        )

    def test_shuffle_bytes_reported(self, sim, join_app):
        metrics = sim.run(join_app, sim.space.default(), 200.0)
        assert metrics.queries[0].shuffle_bytes_gb == pytest.approx(0.35 * 200.0)

    def test_duration_of_subset(self, sim, tpch):
        metrics = sim.run(tpch, sim.space.default(), 100.0)
        two = metrics.duration_of(["Q01", "Q02"])
        assert two == pytest.approx(
            metrics.query_durations["Q01"] + metrics.query_durations["Q02"]
        )
        assert metrics.duration_of(None) == metrics.duration_s
