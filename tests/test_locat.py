"""Tests for the end-to-end LOCAT orchestrator.

Budgets are shrunk so each test runs in a couple of seconds; the
full-scale behaviour is exercised by the benchmarks.
"""

import numpy as np
import pytest

from repro.core import LOCAT
from repro.sparksim import SparkSQLSimulator


def small_locat(simulator, app, **overrides):
    defaults = dict(n_qcsa=12, n_iicp=10, max_iterations=8, min_iterations=4, n_mcmc=0, rng=5)
    defaults.update(overrides)
    return LOCAT(simulator, app, **defaults)


class TestPipeline:
    def test_tune_returns_valid_result(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(200.0)
        assert result.tuner == "LOCAT"
        assert result.best_duration_s > 0
        assert result.overhead_s > 0
        assert result.evaluations >= locat.n_qcsa
        assert sim_x86.space.is_valid(result.best_config)

    def test_beats_default_config(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(300.0)
        default_time = sim_x86.run(join_app, sim_x86.space.default(), 300.0, rng=9).duration_s
        assert result.best_duration_s < default_time

    def test_bootstrap_happens_once(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        first = locat.tune(100.0)
        second = locat.tune(300.0)
        # The adaptation session skips the bootstrap, so it is cheaper in
        # evaluations.
        assert second.evaluations < first.evaluations

    def test_qcsa_reduces_tpch(self, sim_x86, tpch):
        locat = small_locat(sim_x86, tpch)
        locat.bootstrap(200.0)
        assert 1 <= len(locat.csq) < 22

    def test_single_query_app_keeps_its_query(self, sim_x86, scan_app):
        locat = small_locat(sim_x86, scan_app)
        locat.bootstrap(100.0)
        assert locat.csq == ["scan"]

    def test_details_populated(self, sim_x86, join_app):
        result = small_locat(sim_x86, join_app).tune(200.0)
        assert "iicp_selected" in result.details
        assert result.details["n_latent_dims"] >= 1
        assert isinstance(result.details["csq"], list)

    def test_reproducible_with_seed(self, x86, join_app):
        a = small_locat(SparkSQLSimulator(x86), join_app, rng=7).tune(200.0)
        b = small_locat(SparkSQLSimulator(x86), join_app, rng=7).tune(200.0)
        assert a.best_duration_s == pytest.approx(b.best_duration_s)
        assert a.best_config == b.best_config


class TestAblations:
    def test_all_parameter_mode(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, use_iicp=False)
        result = locat.tune(200.0)
        assert result.details["n_latent_dims"] == 38
        assert len(result.details["iicp_selected"]) == 38

    def test_no_qcsa_keeps_all_queries(self, sim_x86, tpch):
        locat = small_locat(sim_x86, tpch, use_qcsa=False)
        locat.bootstrap(100.0)
        assert locat.csq == tpch.query_names

    def test_no_dagp_ignores_other_datasizes(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, use_dagp=False)
        locat.tune(100.0)
        result = locat.tune(400.0)
        assert result.best_duration_s > 0  # still works, just without transfer


class TestAdaptation:
    def test_adaptation_no_worse_than_reuse(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, rng=3)
        r100 = locat.tune(100.0)
        r500 = locat.tune(500.0)
        reused = np.mean([
            sim_x86.run(join_app, r100.best_config, 500.0, rng=i).duration_s for i in range(3)
        ])
        # The carried incumbent guarantees LOCAT's adapted config is at
        # least competitive with reusing the 100 GB config (noise margin).
        assert r500.best_duration_s <= reused * 1.15

    def test_observations_accumulate(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.tune(100.0)
        n_after_first = len(locat._observations)
        locat.tune(300.0)
        assert len(locat._observations) > n_after_first


class TestPrediction:
    def test_predict_before_bootstrap_is_none(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        config = sim_x86.space.default()
        assert locat.predict_log_duration(config, 100.0) is None

    def test_predict_matches_observed_scale(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(100.0)
        pred = locat.predict_log_duration(result.best_config, 100.0)
        assert pred is not None
        mean, std = pred
        assert std >= 0
        # The posterior median of the best config's RQA duration lands in
        # the same ballpark as its observed RQA durations.
        observed = [
            dur for config, ds, dur in locat.observation_history
            if ds == 100.0 and config == result.best_config
        ]
        assert observed
        assert np.exp(mean) == pytest.approx(min(observed), rel=0.5)

    def test_predictor_extends_incrementally(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.tune(100.0)
        config = sim_x86.space.default()
        locat.predict_log_duration(config, 100.0)
        predictor = locat._predictor
        n = predictor.n_observations
        # New observations extend the cached model instead of refitting.
        trial = locat.objective.run_subset(config, 100.0, locat.csq)
        from repro.core.locat import _Observation
        locat._observations.append(_Observation(config, 100.0, trial.duration_s))
        locat.predict_log_duration(config, 100.0)
        assert locat._predictor is predictor
        assert predictor.n_observations == n + 1

    def test_predictions_transfer_across_datasizes(self, sim_x86, join_app):
        """The DAGP predicts at sizes never tuned — the capability the
        nearest-run heuristic approximated with linear scaling."""
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(100.0)
        small = locat.predict_log_duration(result.best_config, 100.0)
        large = locat.predict_log_duration(result.best_config, 400.0)
        assert large is not None
        assert large[0] > small[0]  # more data, longer expected duration


class TestPartialSessions:
    def test_adapt_without_bootstrap_falls_back_to_tune(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.adapt(100.0)
        assert result.details["partial"] is False  # it ran the full session
        assert locat.is_bootstrapped

    def test_adapt_is_cheaper_than_a_cold_session(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        cold = locat.tune(100.0)
        partial = locat.adapt(100.0)
        assert partial.details["partial"] is True
        assert partial.evaluations < cold.evaluations
        assert partial.best_duration_s > 0
        assert sim_x86.space.is_valid(partial.best_config)

    def test_adapt_budget_override_and_validation(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.tune(100.0)
        tight = locat.adapt(100.0, max_iterations=2)
        # 2 BO evaluations + the resource-parameter polish sweep + the
        # candidate/validation runs: well under half a cold session.
        assert tight.evaluations <= 20
        with pytest.raises(ValueError):
            small_locat(sim_x86, join_app, n_adapt_iterations=0)

    def test_adapt_re_measures_the_incumbent(self, sim_x86, join_app):
        """A partial session at an already-seen datasize must give the
        previous incumbent a fresh measurement, so the session can never
        deploy something worse than what is already running (as measured
        in the current environment)."""
        locat = small_locat(sim_x86, join_app)
        cold = locat.tune(100.0)
        n_before = len(locat._observations)
        locat.adapt(100.0)
        fresh = locat._observations[n_before:]
        stale_best = min(
            (o for o in locat._observations[:n_before] if o.datasize_gb == 100.0),
            key=lambda o: o.rqa_duration_s,
        )
        assert any(o.config == stale_best.config for o in fresh), (
            "the pre-session incumbent must be re-measured in-session"
        )
        del cold

    def test_monitoring_predictor_demotes_pre_drift_rows(self, x86, join_app):
        """After a drift retune, the online predictor must apply the same
        stale-history quarantine as the session surrogate: pre-boundary
        rows enter at fidelity 1, fresh rows at fidelity 0 — otherwise
        expectations at neighbouring datasizes blend stale-environment
        durations at full weight and re-alarm spuriously."""
        from repro.sparksim.scenarios import DriftingSimulator, RunStep

        simulator = DriftingSimulator(x86)
        locat = small_locat(simulator, join_app)
        locat.tune(100.0)
        simulator.set_step(
            RunStep(index=0, datasize_gb=100.0, disk_factor=0.4, core_factor=0.6,
                    drifted=True)
        )
        locat.adapt(100.0)
        boundary = locat._stale_before
        assert 0 < boundary < len(locat._observations)
        config = locat._observations[-1].config
        assert locat.predict_log_duration(config, 100.0) is not None
        fidelities = locat._predictor._fidelities
        assert all(f == 1.0 for f in fidelities[:boundary])
        assert all(f == 0.0 for f in fidelities[boundary:])

    def test_adapt_quarantines_stale_incumbents(self, x86, join_app):
        """After an environment shift, a partial session must deploy on
        *fresh* measurements: the healthy-era trials are faster than
        anything the degraded cluster can do, and re-anchoring on them
        would pin the deployment to a world that no longer exists."""
        from repro.sparksim.scenarios import DriftingSimulator, RunStep

        simulator = DriftingSimulator(x86)
        locat = small_locat(simulator, join_app)
        healthy = locat.tune(100.0)
        simulator.set_step(
            RunStep(index=0, datasize_gb=100.0, disk_factor=0.4, core_factor=0.6,
                    drifted=True)
        )
        adapted = locat.adapt(100.0)
        # The reported duration reflects the degraded environment, not a
        # stale healthy-era trial.
        assert adapted.best_duration_s > healthy.best_duration_s * 1.2


class TestDefaultReset:
    def test_reset_only_touches_unselected_non_resource(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.bootstrap(100.0)
        config = sim_x86.space.sample(np.random.default_rng(0))
        reset = locat._reset_unimportant_to_defaults(config)
        defaults = sim_x86.space.default()
        selected = set(locat.iicp_result.selected)
        for name in sim_x86.space.names:
            if name in selected or name in LOCAT.RESOURCE_PARAMETERS:
                continue
            assert reset[name] == defaults[name], name
