"""Tests for the end-to-end LOCAT orchestrator.

Budgets are shrunk so each test runs in a couple of seconds; the
full-scale behaviour is exercised by the benchmarks.
"""

import numpy as np
import pytest

from repro.core import LOCAT
from repro.sparksim import SparkSQLSimulator


def small_locat(simulator, app, **overrides):
    defaults = dict(n_qcsa=12, n_iicp=10, max_iterations=8, min_iterations=4, n_mcmc=0, rng=5)
    defaults.update(overrides)
    return LOCAT(simulator, app, **defaults)


class TestPipeline:
    def test_tune_returns_valid_result(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(200.0)
        assert result.tuner == "LOCAT"
        assert result.best_duration_s > 0
        assert result.overhead_s > 0
        assert result.evaluations >= locat.n_qcsa
        assert sim_x86.space.is_valid(result.best_config)

    def test_beats_default_config(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        result = locat.tune(300.0)
        default_time = sim_x86.run(join_app, sim_x86.space.default(), 300.0, rng=9).duration_s
        assert result.best_duration_s < default_time

    def test_bootstrap_happens_once(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        first = locat.tune(100.0)
        second = locat.tune(300.0)
        # The adaptation session skips the bootstrap, so it is cheaper in
        # evaluations.
        assert second.evaluations < first.evaluations

    def test_qcsa_reduces_tpch(self, sim_x86, tpch):
        locat = small_locat(sim_x86, tpch)
        locat.bootstrap(200.0)
        assert 1 <= len(locat.csq) < 22

    def test_single_query_app_keeps_its_query(self, sim_x86, scan_app):
        locat = small_locat(sim_x86, scan_app)
        locat.bootstrap(100.0)
        assert locat.csq == ["scan"]

    def test_details_populated(self, sim_x86, join_app):
        result = small_locat(sim_x86, join_app).tune(200.0)
        assert "iicp_selected" in result.details
        assert result.details["n_latent_dims"] >= 1
        assert isinstance(result.details["csq"], list)

    def test_reproducible_with_seed(self, x86, join_app):
        a = small_locat(SparkSQLSimulator(x86), join_app, rng=7).tune(200.0)
        b = small_locat(SparkSQLSimulator(x86), join_app, rng=7).tune(200.0)
        assert a.best_duration_s == pytest.approx(b.best_duration_s)
        assert a.best_config == b.best_config


class TestAblations:
    def test_all_parameter_mode(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, use_iicp=False)
        result = locat.tune(200.0)
        assert result.details["n_latent_dims"] == 38
        assert len(result.details["iicp_selected"]) == 38

    def test_no_qcsa_keeps_all_queries(self, sim_x86, tpch):
        locat = small_locat(sim_x86, tpch, use_qcsa=False)
        locat.bootstrap(100.0)
        assert locat.csq == tpch.query_names

    def test_no_dagp_ignores_other_datasizes(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, use_dagp=False)
        locat.tune(100.0)
        result = locat.tune(400.0)
        assert result.best_duration_s > 0  # still works, just without transfer


class TestAdaptation:
    def test_adaptation_no_worse_than_reuse(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app, rng=3)
        r100 = locat.tune(100.0)
        r500 = locat.tune(500.0)
        reused = np.mean([
            sim_x86.run(join_app, r100.best_config, 500.0, rng=i).duration_s for i in range(3)
        ])
        # The carried incumbent guarantees LOCAT's adapted config is at
        # least competitive with reusing the 100 GB config (noise margin).
        assert r500.best_duration_s <= reused * 1.15

    def test_observations_accumulate(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.tune(100.0)
        n_after_first = len(locat._observations)
        locat.tune(300.0)
        assert len(locat._observations) > n_after_first


class TestDefaultReset:
    def test_reset_only_touches_unselected_non_resource(self, sim_x86, join_app):
        locat = small_locat(sim_x86, join_app)
        locat.bootstrap(100.0)
        config = sim_x86.space.sample(np.random.default_rng(0))
        reset = locat._reset_unimportant_to_defaults(config)
        defaults = sim_x86.space.default()
        selected = set(locat.iicp_result.selected)
        for name in sim_x86.space.names:
            if name in selected or name in LOCAT.RESOURCE_PARAMETERS:
                continue
            assert reset[name] == defaults[name], name
