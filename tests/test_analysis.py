"""Tests for the ``repro check`` static-analysis subsystem."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, default_rules, run_check
from repro.analysis.baseline import fingerprint
from repro.analysis.engine import AnalysisEngine
from repro.analysis.rules.falsyzero import FalsyZeroRule
from repro.analysis.rules.floateq import FloatEqRule
from repro.analysis.rules.hashiter import HashIterationRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.persist import ValidateBeforePersistRule
from repro.analysis.rules.rng import RngDisciplineRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_source(tmp_path, source, rules, name="mod.py"):
    """Write ``source`` under ``tmp_path`` and run ``rules`` over it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    result = run_check([str(path)], rules=rules, baseline=Baseline.empty(), root=tmp_path)
    return result.new


class TestRngDiscipline:
    def test_flags_stdlib_random_import(self, tmp_path):
        findings = check_source(
            tmp_path, "import random\nx = random.random()\n", [RngDisciplineRule()]
        )
        assert [f.rule for f in findings] == ["rng-discipline"]

    def test_flags_from_random_import(self, tmp_path):
        findings = check_source(
            tmp_path, "from random import choice\n", [RngDisciplineRule()]
        )
        assert len(findings) == 1

    def test_flags_naked_default_rng(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(7)
            """,
            [RngDisciplineRule()],
        )
        assert len(findings) == 1
        assert "ensure_rng" in findings[0].message

    def test_ensure_rng_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            from repro.stats.sampling import ensure_rng
            rng = ensure_rng(7)
            x = rng.integers(10)
            """,
            [RngDisciplineRule()],
        )
        assert findings == []

    def test_flags_colliding_seed_salts_across_modules(self, tmp_path):
        rule = RngDisciplineRule()
        (tmp_path / "a.py").write_text("A_SEED_SALT = 0x1234\n")
        (tmp_path / "b.py").write_text("B_SEED_SALT = 0x1234\n")
        result = run_check([str(tmp_path)], rules=[rule], root=tmp_path)
        assert len(result.new) == 2
        assert all("salt" in f.message.lower() for f in result.new)

    def test_distinct_salts_are_clean(self, tmp_path):
        rule = RngDisciplineRule()
        (tmp_path / "a.py").write_text("A_SEED_SALT = 0x1234\n")
        (tmp_path / "b.py").write_text("B_SEED_SALT = 0x4321\n")
        result = run_check([str(tmp_path)], rules=[rule], root=tmp_path)
        assert result.new == []

    def test_repo_salts_are_disjoint(self):
        from repro.core.promotion import SHADOW_SEED_SALT
        from repro.loadgen.driver import LOADGEN_SEED_SALT
        from repro.replay.trace import REPLAY_SEED_SALT

        salts = [SHADOW_SEED_SALT, REPLAY_SEED_SALT, LOADGEN_SEED_SALT]
        assert len(set(salts)) == len(salts)


class TestHashIteration:
    def test_flags_for_over_set_literal(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            for x in {1, 2, 3}:
                print(x)
            """,
            [HashIterationRule()],
        )
        assert [f.rule for f in findings] == ["hash-iteration"]

    def test_flags_set_bound_name_and_keys(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            s = set()
            out = [x for x in s]
            d = {}
            for k in d.keys():
                print(k)
            """,
            [HashIterationRule()],
        )
        assert len(findings) == 2

    def test_sorted_wrapping_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            s = frozenset((1, 2))
            for x in sorted(s):
                print(x)
            out = sorted({3, 4})
            d = {}
            keys = sorted(d.keys())
            """,
            [HashIterationRule()],
        )
        assert findings == []

    def test_test_files_are_exempt(self, tmp_path):
        findings = check_source(
            tmp_path,
            "for x in {1, 2}:\n    print(x)\n",
            [HashIterationRule()],
            name="test_mod.py",
        )
        assert findings == []


class TestFalsyZero:
    def test_flags_or_default_on_optional_numeric_param(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(duration_s: float | None = None, fallback: float = 1.0):
                return duration_s or fallback
            """,
            [FalsyZeroRule()],
        )
        assert [f.rule for f in findings] == ["falsy-zero"]

    def test_flags_optional_subscript_annotation(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            from typing import Optional

            def f(n: Optional[int]):
                return n or 5
            """,
            [FalsyZeroRule()],
        )
        assert len(findings) == 1

    def test_is_none_check_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(duration_s: float | None = None):
                return 1.0 if duration_s is None else duration_s
            """,
            [FalsyZeroRule()],
        )
        assert findings == []

    def test_flags_get_or_numeric_default(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(d):
                return d.get("count") or 0
            """,
            [FalsyZeroRule()],
        )
        assert len(findings) == 1

    def test_two_arg_get_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(d):
                return d.get("count", 0)
            """,
            [FalsyZeroRule()],
        )
        assert findings == []

    def test_non_numeric_or_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(name: str | None = None):
                return name or "anonymous"
            """,
            [FalsyZeroRule()],
        )
        assert findings == []


class TestFloatEq:
    def test_flags_float_literal_comparison(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(x):
                return x == 1.5
            """,
            [FloatEqRule()],
        )
        assert [f.rule for f in findings] == ["float-eq"]

    def test_flags_float_annotated_name(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def f(a: float, b: float):
                return a != b
            """,
            [FloatEqRule()],
        )
        assert len(findings) == 1

    def test_int_comparison_and_isclose_are_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import math

            def f(a: float, b: float, n: int):
                return n == 3 and math.isclose(a, b)
            """,
            [FloatEqRule()],
        )
        assert findings == []

    def test_lambda_bodies_are_checked(self, tmp_path):
        findings = check_source(
            tmp_path,
            "key = lambda x: x == 0.5\n",
            [FloatEqRule()],
        )
        assert len(findings) == 1


class TestValidateBeforePersist:
    RULES = [ValidateBeforePersistRule()]

    def test_flags_write_before_validation(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def register(self, app_id, meta):
                self.store.register_app(app_id, meta)
                _validate_tuner(meta["tuner"])
            """,
            self.RULES,
            name="service/registry.py",
        )
        assert [f.rule for f in findings] == ["validate-before-persist"]

    def test_write_after_validation_is_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def register(self, app_id, meta):
                _validate_tuner(meta["tuner"])
                self.store.register_app(app_id, meta)
            """,
            self.RULES,
            name="service/registry.py",
        )
        assert findings == []

    def test_only_applies_to_service_paths(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            def register(self, app_id, meta):
                self.store.register_app(app_id, meta)
                _validate_tuner(meta["tuner"])
            """,
            self.RULES,
            name="core/other.py",
        )
        assert findings == []

    def test_repo_registry_register_validates_first(self):
        result = run_check(
            [str(REPO_ROOT / "src" / "repro" / "service" / "registry.py")],
            rules=[ValidateBeforePersistRule()],
            root=REPO_ROOT,
        )
        assert result.new == []


RACE_FIXTURE = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock

    def record(self):
        # Seeded race: unsynchronized read-modify-write of guarded state.
        self.hits += 1

    def snapshot(self):
        with self._lock:
            return self.hits
"""


class TestLockDiscipline:
    RULES = [LockDisciplineRule()]

    def test_flags_seeded_race_fixture(self, tmp_path):
        findings = check_source(tmp_path, RACE_FIXTURE, self.RULES)
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert "hits" in findings[0].message
        assert "record" in findings[0].message

    def test_locked_access_and_locked_suffix_are_clean(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def record(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self.hits += 1
            """,
            self.RULES,
        )
        assert findings == []

    def test_condition_alias_guard(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading


            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self.items = []  # guarded-by: _lock, _cond

                def put(self, item):
                    with self._cond:
                        self.items.append(item)
                        self._cond.notify()
            """,
            self.RULES,
        )
        assert findings == []

    def test_subscripted_guard_table(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading


            class Shards:
                def __init__(self, n):
                    self._locks = [threading.Lock() for _ in range(n)]
                    self.counts = [0] * n  # guarded-by: _locks

                def bump(self, shard):
                    with self._locks[shard]:
                        self.counts[shard] += 1
            """,
            self.RULES,
        )
        assert findings == []

    def test_closure_guarded_variable(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            import threading


            def run(jobs):
                lock = threading.Lock()
                cursor = 0  # guarded-by: lock

                def good():
                    nonlocal cursor
                    with lock:
                        cursor += 1

                def bad():
                    nonlocal cursor
                    cursor += 1

                return good, bad
            """,
            self.RULES,
        )
        assert len(findings) == 1
        assert "bad" in findings[0].message

    def test_outer_with_does_not_protect_closure(self, tmp_path):
        # A `with` in the declaring function is NOT held when the
        # closure later runs on another thread.
        findings = check_source(
            tmp_path,
            """
            import threading


            def run():
                lock = threading.Lock()
                cursor = 0  # guarded-by: lock

                with lock:
                    def worker():
                        nonlocal cursor
                        cursor += 1

                return worker
            """,
            self.RULES,
        )
        assert len(findings) == 1


class TestSuppressions:
    def test_same_line_allow(self, tmp_path):
        findings = check_source(
            tmp_path,
            "x = 1.0 == 1.0  # repro: allow[float-eq]\n",
            [FloatEqRule()],
        )
        assert findings == []

    def test_standalone_comment_covers_next_line(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            # repro: allow[float-eq]
            x = 1.0 == 1.0
            """,
            [FloatEqRule()],
        )
        assert findings == []

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        findings = check_source(
            tmp_path,
            "x = 1.0 == 1.0  # repro: allow[hash-iteration]\n",
            [FloatEqRule()],
        )
        assert len(findings) == 1

    def test_code_line_above_does_not_suppress(self, tmp_path):
        findings = check_source(
            tmp_path,
            """
            y = 2  # repro: allow[float-eq]
            x = 1.0 == 1.0
            """,
            [FloatEqRule()],
        )
        assert len(findings) == 1


class TestBaseline:
    def _one_finding(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return run_check(
            [str(path)], rules=[FloatEqRule()], baseline=Baseline.empty(), root=tmp_path
        ).new

    def test_fingerprint_survives_line_drift(self, tmp_path):
        original = self._one_finding(tmp_path, "x = 1.0 == 1.0\n")
        drifted = self._one_finding(tmp_path, "import math\n\n\nx = 1.0 == 1.0\n")
        assert len(original) == len(drifted) == 1
        assert original[0].fingerprint == drifted[0].fingerprint
        assert original[0].line != drifted[0].line

    def test_grandfathered_findings_do_not_fail(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1.0 == 1.0\n")
        baseline_path = tmp_path / "analysis-baseline.json"
        first = run_check([str(path)], rules=[FloatEqRule()], root=tmp_path)
        Baseline.empty().write(first.new, baseline_path)

        baseline = Baseline.load(baseline_path)
        second = run_check([str(path)], rules=[FloatEqRule()], baseline=baseline)
        assert second.new == []
        assert len(second.grandfathered) == 1
        assert second.exit_code == 0

    def test_duplicated_violation_exceeds_baseline_budget(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1.0 == 1.0\n")
        baseline_path = tmp_path / "analysis-baseline.json"
        first = run_check([str(path)], rules=[FloatEqRule()], root=tmp_path)
        Baseline.empty().write(first.new, baseline_path)

        # The same violating line now appears twice: one is
        # grandfathered, the copy must fail the check.
        path.write_text("x = 1.0 == 1.0\ny = 2\nx = 1.0 == 1.0\n")
        baseline = Baseline.load(baseline_path)
        second = run_check([str(path)], rules=[FloatEqRule()], baseline=baseline)
        assert len(second.grandfathered) == 1
        assert len(second.new) == 1
        assert second.exit_code == 1

    def test_fixed_finding_reports_stale_entry(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1.0 == 1.0\n")
        baseline_path = tmp_path / "analysis-baseline.json"
        first = run_check([str(path)], rules=[FloatEqRule()], root=tmp_path)
        Baseline.empty().write(first.new, baseline_path)

        path.write_text("import math\nx = math.isclose(1.0, 1.0)\n")
        baseline = Baseline.load(baseline_path)
        second = run_check([str(path)], rules=[FloatEqRule()], baseline=baseline)
        assert second.new == []
        assert len(second.stale_baseline) == 1
        assert second.exit_code == 0

    def test_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "analysis-baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(bad)

    def test_fingerprint_is_content_based(self):
        a = fingerprint("float-eq", "src/mod.py", "x = 1.0 == 1.0")
        b = fingerprint("float-eq", "src/mod.py", "   x = 1.0 == 1.0   ")
        c = fingerprint("float-eq", "src/mod.py", "y = 2.0 == 2.0")
        assert a == b  # whitespace-insensitive
        assert a != c


class TestEngine:
    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnalysisEngine([FloatEqRule(), FloatEqRule()])

    def test_syntax_error_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = run_check([str(path)], rules=[FloatEqRule()], root=tmp_path)
        assert [f.rule for f in result.new] == ["syntax-error"]

    def test_findings_are_not_duplicated_across_scopes(self, tmp_path):
        # Nested functions must not be revisited once per enclosing
        # scope (the naive ast.walk pitfall).
        findings = check_source(
            tmp_path,
            """
            def outer():
                def inner():
                    return 1.0 == 1.0
                return inner
            """,
            [FloatEqRule()],
        )
        assert len(findings) == 1

    def test_default_rules_cover_the_catalog(self):
        ids = {rule.rule_id for rule in default_rules()}
        assert ids == {
            "rng-discipline",
            "hash-iteration",
            "falsy-zero",
            "float-eq",
            "validate-before-persist",
            "lock-discipline",
        }


class TestCLI:
    def _run(self, *argv, cwd=REPO_ROOT):
        env_src = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )

    def test_self_check_is_clean_modulo_committed_baseline(self):
        proc = self._run("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_json_schema_is_stable(self):
        proc = self._run("src/repro", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(proc.stdout)
        assert set(report) == {
            "version",
            "files",
            "findings",
            "grandfathered",
            "stale_baseline",
            "exit_code",
        }
        assert report["version"] == 1
        assert report["exit_code"] == 0
        for entry in report["grandfathered"]:
            assert set(entry) == {
                "rule",
                "path",
                "line",
                "col",
                "message",
                "fingerprint",
            }

    def test_new_finding_fails_with_exit_1(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        proc = self._run(str(bad), "--no-baseline")
        assert proc.returncode == 1
        assert "rng-discipline" in proc.stdout

    def test_usage_error_exits_2(self, tmp_path):
        proc = self._run("src/repro", "--baseline", str(tmp_path / "missing.json"))
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in default_rules():
            assert rule.rule_id in proc.stdout
