"""Tests for repro.sparksim.configspace — the Table 2 parameter space."""

import numpy as np
import pytest

from repro.sparksim.cluster import arm_cluster, x86_cluster
from repro.sparksim.configspace import (
    PARAMETERS,
    ConfigSpace,
    Configuration,
    normalized_distance,
)


class TestParameterTable:
    def test_has_38_parameters(self):
        assert len(PARAMETERS) == 38

    def test_numeric_boolean_split_matches_table2(self):
        numeric = [p for p in PARAMETERS if p.kind != "bool"]
        booleans = [p for p in PARAMETERS if p.kind == "bool"]
        assert len(numeric) == 27
        assert len(booleans) == 11

    def test_six_starred_resource_parameters(self):
        starred = [p.name for p in PARAMETERS if p.resource]
        assert set(starred) == {
            "driver.cores",
            "driver.memory",
            "executor.cores",
            "executor.memory",
            "executor.memoryOverhead",
            "memory.offHeap.size",
        }

    @pytest.mark.parametrize(
        "name, default, range_a, range_b",
        [
            ("sql.shuffle.partitions", 200, (100, 1000), (100, 1000)),
            ("executor.instances", 2, (48, 384), (9, 112)),
            ("executor.cores", 1, (1, 8), (1, 16)),
            ("executor.memory", 4, (4, 32), (4, 48)),
            ("sql.autoBroadcastJoinThreshold", 1024, (1024, 8192), (1024, 8192)),
            ("memory.fraction", 0.6, (0.5, 0.9), (0.5, 0.9)),
        ],
    )
    def test_key_rows_match_table2(self, name, default, range_a, range_b):
        param = next(p for p in PARAMETERS if p.name == name)
        assert param.default == default
        assert param.range_a == range_a
        assert param.range_b == range_b

    def test_bounds_select_by_cluster(self):
        param = next(p for p in PARAMETERS if p.name == "executor.instances")
        assert param.bounds("arm") == (48, 384)
        assert param.bounds("x86") == (9, 112)

    def test_boolean_bounds_are_unit(self):
        param = next(p for p in PARAMETERS if p.kind == "bool")
        assert param.bounds("arm") == (0.0, 1.0)


class TestConfiguration:
    def test_default_is_complete(self, space_x86):
        config = space_x86.default()
        assert len(config) == 38
        assert set(config) == {p.name for p in PARAMETERS}

    def test_defaults_clip_into_range(self, space_x86):
        config = space_x86.default()
        # Table-2 default executor.instances is 2, below Range B's minimum 9.
        assert config["executor.instances"] == 9

    def test_replace_creates_new(self, space_x86):
        config = space_x86.default()
        other = config.replace(**{"executor.memory": 16})
        assert other["executor.memory"] == 16
        assert config["executor.memory"] != 16 or other is not config

    def test_replace_unknown_parameter(self, space_x86):
        with pytest.raises(ValueError, match="unknown parameter"):
            space_x86.default().replace(**{"nonsense.knob": 1})

    def test_equality_and_hash(self, space_x86):
        a = space_x86.default()
        b = space_x86.default()
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.replace(**{"executor.memory": 20})

    def test_int_coercion(self, space_x86):
        config = space_x86.make(**{"executor.memory": 16.7})
        assert config["executor.memory"] == 17
        assert isinstance(config["executor.memory"], int)

    def test_missing_parameters_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            Configuration({"executor.memory": 4})


class TestEncodeDecode:
    def test_roundtrip_default(self, space_x86):
        config = space_x86.default()
        assert space_x86.decode(space_x86.encode(config)) == config

    def test_roundtrip_random(self, space_x86, rng):
        for _ in range(10):
            config = space_x86.sample(rng)
            assert space_x86.decode(space_x86.encode(config)) == config

    def test_encode_in_unit_cube(self, space_x86, rng):
        point = space_x86.encode(space_x86.sample(rng))
        assert point.shape == (38,)
        assert np.all(point >= 0) and np.all(point <= 1)

    def test_decode_corner_points(self, space_x86):
        low = space_x86.decode(np.zeros(38))
        high = space_x86.decode(np.ones(38))
        assert low["sql.shuffle.partitions"] == 100
        assert high["sql.shuffle.partitions"] == 1000
        assert low["shuffle.compress"] is False
        assert high["shuffle.compress"] is True

    def test_decode_wrong_shape(self, space_x86):
        with pytest.raises(ValueError):
            space_x86.decode(np.zeros(5))

    def test_subset_roundtrip(self, space_x86, rng):
        names = ["executor.memory", "sql.shuffle.partitions", "shuffle.compress"]
        config = space_x86.sample(rng)
        point = space_x86.encode_subset(config, names)
        rebuilt = space_x86.decode_subset(point, names, base=config)
        for name in names:
            assert rebuilt[name] == config[name]

    def test_subset_fills_base(self, space_x86):
        rebuilt = space_x86.decode_subset(np.array([1.0]), ["sql.shuffle.partitions"])
        assert rebuilt["sql.shuffle.partitions"] == 1000
        assert rebuilt["executor.memory"] == space_x86.default()["executor.memory"]


class TestRepairAndValidation:
    def test_sampled_configs_are_valid(self, space_x86, rng):
        for _ in range(25):
            assert space_x86.is_valid(space_x86.sample(rng))

    def test_memory_sum_constraint(self, space_x86):
        # 48 GB heap + 48 GB overhead + 48 GB off-heap >> 56 GB container.
        config = space_x86.make(**{
            "executor.memory": 48,
            "executor.memoryOverhead": 49152,
            "memory.offHeap.size": 49152,
        })
        total = (
            config["executor.memory"]
            + config["executor.memoryOverhead"] / 1024
            + config["memory.offHeap.size"] / 1024
        )
        assert total <= 56 + 1e-6

    def test_repair_sheds_offheap_before_heap(self, space_x86):
        config = space_x86.make(**{
            "executor.memory": 48,
            "executor.memoryOverhead": 0,
            "memory.offHeap.size": 49152,
        })
        assert config["executor.memory"] == 48  # heap kept
        assert config["memory.offHeap.size"] / 1024 <= 8 + 1e-6

    def test_cluster_core_totals(self, space_x86):
        config = space_x86.make(**{"executor.instances": 112, "executor.cores": 16})
        assert config["executor.instances"] * config["executor.cores"] <= 140

    def test_violations_lists_problems(self, x86):
        space = ConfigSpace.for_cluster(x86)
        raw = space.default().replace(**{"executor.memory": 999})
        problems = space.violations(raw)
        assert any("executor.memory" in p for p in problems)

    def test_arm_uses_range_a(self, space_arm, rng):
        config = space_arm.sample(rng)
        assert 48 <= config["executor.instances"] <= 384
        assert 1 <= config["executor.cores"] <= 8


class TestDistance:
    def test_zero_for_identical(self, space_x86):
        config = space_x86.default()
        assert normalized_distance(space_x86, config, config) == pytest.approx(0.0)

    def test_bounded_by_one(self, space_x86):
        low = space_x86.decode(np.zeros(38))
        high = space_x86.decode(np.ones(38))
        assert 0 < normalized_distance(space_x86, low, high) <= 1.0
