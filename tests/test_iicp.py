"""Tests for IICP: CPS (Spearman selection) and CPE (KPCA extraction)."""

import numpy as np
import pytest

from repro.bo.lhs import latin_hypercube
from repro.core.iicp import IICP, run_cpe, run_cps


@pytest.fixture()
def lhs_samples(sim_x86, join_app):
    """30 LHS configurations with durations on HiBench Join at 300 GB."""
    gen = np.random.default_rng(5)
    configs, durations = [], []
    for point in latin_hypercube(30, sim_x86.space.dim, gen):
        config = sim_x86.space.decode(point)
        configs.append(config)
        durations.append(sim_x86.run(join_app, config, 300.0, rng=gen).duration_s)
    return configs, np.array(durations)


class TestCPS:
    def test_selects_subset_in_table_order(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        assert 0 < len(cps.selected) < 38
        order = {n: i for i, n in enumerate(sim_x86.space.names)}
        indices = [order[n] for n in cps.selected]
        assert indices == sorted(indices)

    def test_scc_covers_all_parameters(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        assert set(cps.scc) == set(sim_x86.space.names)
        assert all(-1.0 <= v <= 1.0 for v in cps.scc.values())

    def test_threshold_filters(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations, threshold=0.2)
        for name in cps.selected:
            assert abs(cps.scc[name]) >= 0.2 or len(cps.selected) == 5

    def test_min_selected_guard(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations, threshold=0.999, min_selected=5)
        assert len(cps.selected) == 5

    def test_important_params_found_for_join(self, sim_x86, lhs_samples):
        # Memory/parallelism parameters dominate HiBench Join (Table 3).
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        top10 = set(cps.top(10))
        key = {"sql.shuffle.partitions", "executor.memory", "executor.cores"}
        assert len(key & top10) >= 2

    def test_ranked_sorted_by_strength(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        strengths = [abs(cps.scc[n]) for n in cps.ranked]
        assert strengths == sorted(strengths, reverse=True)

    def test_too_few_samples_rejected(self, sim_x86):
        with pytest.raises(ValueError):
            run_cps(sim_x86.space, [sim_x86.space.default()] * 2, [1.0, 2.0])


class TestCPE:
    def test_extraction_reduces_dimension(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        cpe = run_cpe(sim_x86.space, configs, cps, n_components=8)
        assert cpe.n_components == 8
        assert cpe.kernel == "gaussian"

    def test_explained_variance_mode(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        cps = run_cps(sim_x86.space, configs, durations)
        cpe = run_cpe(sim_x86.space, configs, cps, explained_variance=0.7)
        assert 1 <= cpe.n_components < len(cps.selected)


class TestIICPResult:
    @pytest.fixture()
    def iicp_result(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        return IICP(n_samples=20).run(sim_x86.space, configs, durations)

    def test_encode_decode_shapes(self, iicp_result, sim_x86, rng):
        config = sim_x86.space.sample(rng)
        latent = iicp_result.encode(config)
        assert latent.shape == (iicp_result.n_components,)
        rebuilt = iicp_result.decode(latent)
        assert sim_x86.space.is_valid(rebuilt)

    def test_training_config_roundtrips_selected_params(self, iicp_result, lhs_samples):
        # A config in the KPCA training set must decode back to itself on
        # the selected parameters (the base covers the rest).
        config = lhs_samples[0][0]
        rebuilt = iicp_result.decode(iicp_result.encode(config))
        for name in iicp_result.selected:
            assert rebuilt[name] == config[name], name

    def test_unselected_come_from_base(self, iicp_result, lhs_samples):
        config = lhs_samples[0][5]
        rebuilt = iicp_result.decode(iicp_result.encode(config))
        base = iicp_result.base_config
        unselected = set(iicp_result.space.names) - set(iicp_result.selected)
        resource_coupled = {"executor.memory", "executor.memoryOverhead",
                            "memory.offHeap.size", "executor.instances"}
        for name in unselected - resource_coupled:  # repair may adjust these
            assert rebuilt[name] == base[name], name

    def test_latent_bounds_contain_training_images(self, iicp_result, lhs_samples):
        low, high = iicp_result.latent_bounds()
        for config in lhs_samples[0][:20]:
            z = iicp_result.encode(config)
            assert np.all(z >= low - 1e-9) and np.all(z <= high + 1e-9)

    def test_uses_only_first_n_samples(self, sim_x86, lhs_samples):
        configs, durations = lhs_samples
        a = IICP(n_samples=20).run(sim_x86.space, configs, durations)
        b = IICP(n_samples=20).run(sim_x86.space, configs[:20], durations[:20])
        assert a.selected == b.selected
