"""Seeded fuzzing of :class:`HistoryStore` run-table durability.

The replay contract under damage (see ``HistoryStore.observations``):

* a **truncated** file — any prefix of a valid run table — replays
  cleanly to exactly the complete newline-terminated lines it still
  holds (the torn tail was never durable);
* any other single-byte damage either leaves a table that replays to
  every undamaged record, or raises :class:`CorruptRunTableError` —
  the store must never *silently* shorten history.

Every fuzz case derives from an explicit seed, so a failure message
names the exact (seed, position) pair to replay under a debugger.
"""

import numpy as np
import pytest

from repro.service import CorruptRunTableError, HistoryStore, ObservationRecord
from repro.service.store import SOURCE_TUNING
from repro.sparksim.serialize import config_to_dict

N_RECORDS = 10

N_TRUNCATIONS = 60
N_FLIPS = 120


def build_table(tmp_path, space):
    """A valid run table whose records are pairwise one-flip-distinct.

    Record equality ignores timestamps, so the durations are repdigits
    (111.5, 222.5, ...): no single byte flip can turn one record into
    another, which keeps the "undamaged records survive" assertion
    honest.
    """
    store = HistoryStore(tmp_path)
    store.register_app("fuzz", {})
    config = config_to_dict(space.default())
    records = [
        ObservationRecord(
            config, 100.0, float(f"{d}{d}{d}.5"), SOURCE_TUNING,
            timestamp=float(d),
        )
        for d in range(1, N_RECORDS + 1)
    ]
    store.append_many("fuzz", records)
    return store, records, tmp_path / "fuzz" / "runs.jsonl"


def line_spans(data: bytes) -> list[tuple[int, int]]:
    """Byte span of each line, trailing newline included."""
    spans, start = [], 0
    while start < len(data):
        end = data.find(b"\n", start)
        end = len(data) if end < 0 else end + 1
        spans.append((start, end))
        start = end
    return spans


class TestRunTableFuzz:
    def test_random_truncation_replays_exactly_the_durable_prefix(
        self, tmp_path, space_x86
    ):
        store, records, path = build_table(tmp_path, space_x86)
        original = path.read_bytes()
        for seed in range(N_TRUNCATIONS):
            rng = np.random.default_rng((0xF022, seed))
            cut = int(rng.integers(0, len(original) + 1))
            path.write_bytes(original[:cut])
            durable = original[:cut].count(b"\n")
            rows = store.observations("fuzz")
            assert rows == records[:durable], (
                f"seed {seed}: cut at byte {cut} ({durable} durable lines) "
                f"replayed {len(rows)} records"
            )

    def test_append_after_random_truncation_repairs_the_tail(
        self, tmp_path, space_x86
    ):
        """The next append must trim the torn tail, never weld onto it."""
        store, records, path = build_table(tmp_path, space_x86)
        original = path.read_bytes()
        extra = ObservationRecord(
            records[0].config, 100.0, 999.5, SOURCE_TUNING, timestamp=99.0
        )
        for seed in range(12):
            rng = np.random.default_rng((0xF023, seed))
            cut = int(rng.integers(0, len(original) + 1))
            path.write_bytes(original[:cut])
            durable = original[:cut].count(b"\n")
            store.append("fuzz", extra)
            rows = store.observations("fuzz")
            assert rows == records[:durable] + [extra], (
                f"seed {seed}: append after cut at byte {cut} "
                f"replayed {len(rows)} records, expected {durable + 1}"
            )

    def test_random_byte_flip_replays_clean_or_raises(self, tmp_path, space_x86):
        """One flipped byte: every undamaged record survives, in order,
        or the replay raises ``CorruptRunTableError`` — and nothing in
        between (no silent shortening, no bare UnicodeDecodeError)."""
        store, records, path = build_table(tmp_path, space_x86)
        original = path.read_bytes()
        spans = line_spans(original)
        outcomes = {"clean": 0, "corrupt": 0}
        for seed in range(N_FLIPS):
            rng = np.random.default_rng((0xF024, seed))
            pos = int(rng.integers(0, len(original)))
            new = int(rng.integers(0, 256))
            if new == original[pos]:
                new = (new + 1) % 256
            damaged = bytearray(original)
            damaged[pos] = new
            path.write_bytes(bytes(damaged))
            hit = next(i for i, (lo, hi) in enumerate(spans) if lo <= pos < hi)
            undamaged = [r for i, r in enumerate(records) if i != hit]
            try:
                rows = store.observations("fuzz")
            except CorruptRunTableError:
                outcomes["corrupt"] += 1
                continue
            outcomes["clean"] += 1
            survivors = [r for r in rows if r in undamaged]
            assert survivors == undamaged, (
                f"seed {seed}: flip byte {pos} in line {hit} to {new:#04x} "
                f"silently dropped undamaged records "
                f"({len(survivors)}/{len(undamaged)} survived)"
            )
        # The fuzzer must actually exercise both contract branches.
        assert outcomes["clean"] > 0 and outcomes["corrupt"] > 0, outcomes

    def test_flip_then_append_never_poisons_later_records(
        self, tmp_path, space_x86
    ):
        """Records appended after interior damage stay replayable the
        moment the damaged line itself is repaired (restore-from-backup
        semantics): the append must not compound the corruption."""
        store, records, path = build_table(tmp_path, space_x86)
        original = path.read_bytes()
        spans = line_spans(original)
        extra = ObservationRecord(
            records[0].config, 100.0, 999.5, SOURCE_TUNING, timestamp=99.0
        )
        for seed in range(12):
            rng = np.random.default_rng((0xF025, seed))
            # Damage strictly inside an interior line's JSON (never the
            # newline), so the table keeps its shape and the repair is
            # "put the original line back".
            hit = int(rng.integers(0, N_RECORDS - 1))
            lo, hi = spans[hit]
            pos = int(rng.integers(lo, hi - 1))
            damaged = bytearray(original)
            damaged[pos] = (damaged[pos] + 1) % 256
            path.write_bytes(bytes(damaged))
            store.append("fuzz", extra)
            repaired = bytearray(path.read_bytes())
            repaired[lo:hi] = original[lo:hi]
            path.write_bytes(bytes(repaired))
            rows = store.observations("fuzz")
            assert rows == records + [extra], f"seed {seed}: flip at byte {pos}"


class TestDecodeHardening:
    def test_invalid_utf8_raises_corrupt_run_table_error(
        self, tmp_path, space_x86
    ):
        store, records, path = build_table(tmp_path, space_x86)
        data = bytearray(path.read_bytes())
        data[5] = 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptRunTableError, match="not valid UTF-8"):
            store.observations("fuzz")
