"""Tests for linear models."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression


@pytest.fixture()
def linear_data():
    rng = np.random.default_rng(0)
    x = rng.random((60, 3))
    y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5 + 0.01 * rng.normal(size=60)
    return x, y


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_data):
        x, y = linear_data
        model = LinearRegression().fit(x, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.05)
        assert model.coef_[1] == pytest.approx(-1.0, abs=0.05)
        assert model.intercept_ == pytest.approx(0.5, abs=0.05)

    def test_predict_shape(self, linear_data):
        x, y = linear_data
        model = LinearRegression().fit(x, y)
        assert model.predict(x).shape == (60,)

    def test_rank_deficient_ok(self):
        # Duplicate column: lstsq handles the singular design.
        x = np.random.default_rng(1).random((20, 2))
        x = np.hstack([x, x[:, :1]])
        y = x[:, 0] + x[:, 1]
        model = LinearRegression().fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))


class TestRidgeRegression:
    def test_matches_ols_at_zero_alpha(self, linear_data):
        x, y = linear_data
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_shrinkage(self, linear_data):
        x, y = linear_data
        weak = RidgeRegression(alpha=0.01).fit(x, y)
        strong = RidgeRegression(alpha=1000.0).fit(x, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestLogisticRegression:
    def test_fits_monotone_relation(self):
        rng = np.random.default_rng(2)
        x = rng.random((80, 1))
        y = 3.0 * x[:, 0] + 1.0
        model = LogisticRegression(n_iterations=800).fit(x, y)
        pred = model.predict(x)
        # Predictions track the monotone trend even through the sigmoid.
        assert np.corrcoef(pred, y)[0, 1] > 0.9

    def test_predictions_within_target_range(self):
        rng = np.random.default_rng(3)
        x = rng.random((50, 2))
        y = 10.0 + 5.0 * x[:, 0]
        model = LogisticRegression().fit(x, y)
        pred = model.predict(x)
        assert pred.min() >= 10.0 - 1e-6
        assert pred.max() <= 15.0 + 1e-6

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iterations=0)
