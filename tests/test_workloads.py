"""Tests for the TPC-DS / TPC-H / HiBench workload builders."""

import pytest

from repro.sparksim.query import StageKind
from repro.sparksim.workloads import get_application, list_benchmarks
from repro.sparksim.workloads.tpcds import (
    CSQ_SHUFFLE_FRACTIONS,
    SELECTION_QUERIES,
    tpcds_application,
    tpcds_query_names,
)
from repro.sparksim.workloads.tpch import tpch_application


class TestTPCDS:
    def test_104_queries(self, tpcds):
        assert len(tpcds.queries) == 104

    def test_variant_names_present(self, tpcds):
        names = set(tpcds.query_names)
        for base in ("Q14", "Q23", "Q24", "Q39", "Q64"):
            assert f"{base}a" in names and f"{base}b" in names
            assert base not in names

    def test_q72_shuffles_52_percent(self, tpcds):
        # Section 5.11: Q72's shuffles process 52 GB of a 100 GB input.
        q72 = tpcds.query("Q72")
        assert q72.total_shuffle_fraction == pytest.approx(0.52, abs=0.01)

    def test_q08_shuffle_is_tiny(self, tpcds):
        # Section 5.11: Q08 shuffles only ~5 MB at 100 GB.
        q08 = tpcds.query("Q08")
        assert q08.total_shuffle_fraction * 100 * 1024 < 10  # under 10 MB

    def test_selection_queries_are_scans(self, tpcds):
        for name in SELECTION_QUERIES:
            query = tpcds.query(name)
            assert query.category == "selection"
            assert all(s.kind is StageKind.SCAN for s in query.stages)

    def test_csq_queries_shuffle_more_than_others(self, tpcds):
        csq_min = min(
            tpcds.query(n).total_shuffle_fraction for n in CSQ_SHUFFLE_FRACTIONS
        )
        other_max = max(
            q.total_shuffle_fraction
            for q in tpcds.queries
            if q.name not in CSQ_SHUFFLE_FRACTIONS
        )
        assert csq_min > other_max

    def test_deterministic_across_builds(self):
        a = tpcds_application()
        b = tpcds_application()
        assert a.queries == b.queries

    def test_query_name_generation(self):
        names = tpcds_query_names()
        assert len(names) == 104
        assert names[0] == "Q01"
        assert names[-1] == "Q99"


class TestTPCH:
    def test_22_queries(self, tpch):
        assert len(tpch.queries) == 22
        assert tpch.query_names[0] == "Q01"

    def test_deterministic(self):
        assert tpch_application().queries == tpch_application().queries

    def test_has_sensitive_and_light_queries(self, tpch):
        shuffles = [q.total_shuffle_fraction for q in tpch.queries]
        assert max(shuffles) > 0.2
        assert min(shuffles) < 0.05


class TestHiBench:
    def test_single_query_each(self):
        for name in ("join", "scan", "aggregation"):
            app = get_application(name)
            assert len(app.queries) == 1

    def test_scan_is_map_only(self, scan_app):
        query = scan_app.queries[0]
        assert query.category == "selection"
        assert query.total_shuffle_fraction == 0.0

    def test_join_has_large_shuffle(self, join_app):
        assert join_app.queries[0].total_shuffle_fraction >= 0.3


class TestRegistry:
    def test_lists_five_benchmarks(self):
        assert list_benchmarks() == ["tpcds", "tpch", "join", "scan", "aggregation"]

    def test_name_normalization(self):
        assert get_application("TPC-DS").name == "TPC-DS"
        assert get_application("tpc_h").name == "TPC-H"

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_application("ycsb")
