"""Tests for repro.stats.sampling."""

import numpy as np
import pytest

from repro.stats.sampling import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(np.random.default_rng(1), 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_from_parent_seed(self):
        a = [c.random(3).tolist() for c in spawn(np.random.default_rng(9), 2)]
        b = [c.random(3).tolist() for c in spawn(np.random.default_rng(9), 2)]
        assert a == b

    def test_zero_children(self):
        assert spawn(np.random.default_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)
