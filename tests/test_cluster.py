"""Tests for repro.sparksim.cluster."""

import pytest

from repro.sparksim.cluster import ClusterSpec, NodeSpec, arm_cluster, get_cluster, x86_cluster


class TestPresets:
    def test_arm_matches_paper_section_41(self):
        cluster = arm_cluster()
        # 4 KUNPENG servers (1 master + 3 slaves), 4x32 cores and 512 GB each.
        assert cluster.node.cores == 128
        assert cluster.node.memory_gb == 512.0
        assert cluster.worker_count == 3
        assert cluster.total_cores == 384
        assert cluster.total_memory_gb == 1536.0

    def test_x86_matches_paper_section_41(self):
        cluster = x86_cluster()
        # 8 Xeon servers (1 master + 7 slaves), 2x10 cores and 64 GB each.
        assert cluster.node.cores == 20
        assert cluster.node.memory_gb == 64.0
        assert cluster.worker_count == 7
        assert cluster.total_cores == 140
        assert cluster.total_memory_gb == 448.0

    def test_container_fits_range_b_extremes(self):
        # Range B allows 16 executor cores and 48 GB heap; the x86
        # container must accommodate them.
        cluster = x86_cluster()
        assert cluster.container_cores >= 16
        assert cluster.container_memory_gb >= 48

    def test_arm_cores_slower_than_x86(self):
        assert arm_cluster().node.core_speed < x86_cluster().node.core_speed

    def test_get_cluster_roundtrip(self):
        assert get_cluster("arm").name == "arm"
        assert get_cluster("x86").name == "x86"

    def test_get_cluster_unknown(self):
        with pytest.raises(ValueError, match="unknown cluster"):
            get_cluster("power9")


class TestValidation:
    def test_node_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0, memory_gb=64, core_speed=1, disk_mb_per_s=500, network_mb_per_s=1000)

    def test_node_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=8, memory_gb=64, core_speed=-1, disk_mb_per_s=500, network_mb_per_s=1000)

    def test_cluster_rejects_container_bigger_than_node(self):
        node = NodeSpec(cores=8, memory_gb=32, core_speed=1, disk_mb_per_s=500, network_mb_per_s=1000)
        with pytest.raises(ValueError):
            ClusterSpec(name="bad", node=node, worker_count=2, container_cores=16, container_memory_gb=16)

    def test_cluster_rejects_zero_workers(self):
        node = NodeSpec(cores=8, memory_gb=32, core_speed=1, disk_mb_per_s=500, network_mb_per_s=1000)
        with pytest.raises(ValueError):
            ClusterSpec(name="bad", node=node, worker_count=0, container_cores=4, container_memory_gb=16)

    def test_aggregate_bandwidths_scale_with_workers(self):
        cluster = x86_cluster()
        assert cluster.aggregate_disk_mb_per_s == cluster.node.disk_mb_per_s * 7
        assert cluster.aggregate_network_mb_per_s == cluster.node.network_mb_per_s * 7
