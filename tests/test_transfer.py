"""Tests for cross-application transfer warm-starting."""

import numpy as np
import pytest

from repro.core.dagp import DatasizeAwareGP
from repro.core.iicp import CPSResult
from repro.core.locat import LOCAT
from repro.core.tuner import BOTrace
from repro.service import HistoryStore, TuningRegistry, TuningService
from repro.sparksim import SparkSQLSimulator, get_application, list_benchmarks
from repro.sparksim.cluster import get_cluster
from repro.transfer import (
    TransferPlan,
    WorkloadFingerprint,
    build_transfer_plan,
    cps_agreement,
    fingerprint_similarity,
    rank_donors,
    select_donor,
)

#: Small LOCAT settings so tuning sessions stay cheap in tests.  n_qcsa
#: is kept well above the transfer bootstrap so savings are visible.
TINY_TUNER = {"n_qcsa": 16, "n_iicp": 10, "max_iterations": 5, "min_iterations": 2, "n_mcmc": 0}


class TestFingerprint:
    @pytest.mark.parametrize("name", ["tpch", "tpcds", "join", "scan", "aggregation"])
    def test_json_round_trip(self, name):
        fingerprint = WorkloadFingerprint.from_application(
            get_application(name), benchmark=name
        )
        assert WorkloadFingerprint.from_json(fingerprint.to_json()) == fingerprint

    def test_json_round_trip_with_dynamic_part(self):
        fingerprint = WorkloadFingerprint.from_application(get_application("join"))
        fingerprint = fingerprint.with_observations([100.0, 200.0, 300.0], [50.0, 95.0, 160.0])
        assert fingerprint.seconds_per_gb is not None
        rebuilt = WorkloadFingerprint.from_json(fingerprint.to_json())
        assert rebuilt == fingerprint
        assert rebuilt.seconds_per_gb == fingerprint.seconds_per_gb

    def test_survives_json_serialization(self):
        import json

        fingerprint = WorkloadFingerprint.from_application(get_application("tpch"))
        wire = json.loads(json.dumps(fingerprint.to_json()))
        assert WorkloadFingerprint.from_json(wire) == fingerprint

    def test_self_similarity_is_one(self):
        for benchmark in list_benchmarks():
            fingerprint = WorkloadFingerprint.from_application(get_application(benchmark))
            assert fingerprint_similarity(fingerprint, fingerprint) == pytest.approx(1.0)

    def test_similarity_symmetric_and_bounded(self):
        fingerprints = [
            WorkloadFingerprint.from_application(get_application(b))
            for b in list_benchmarks()
        ]
        for a in fingerprints:
            for b in fingerprints:
                similarity = fingerprint_similarity(a, b)
                assert 0.0 <= similarity <= 1.0
                assert similarity == pytest.approx(fingerprint_similarity(b, a))

    def test_similar_workloads_rank_above_dissimilar(self):
        tpch = WorkloadFingerprint.from_application(get_application("tpch"))
        tpcds = WorkloadFingerprint.from_application(get_application("tpcds"))
        scan = WorkloadFingerprint.from_application(get_application("scan"))
        assert fingerprint_similarity(tpch, tpcds) > fingerprint_similarity(tpch, scan)

    def test_category_and_stage_mixes_are_distributions(self):
        fingerprint = WorkloadFingerprint.from_application(get_application("tpcds"))
        assert sum(fingerprint.category_mix.values()) == pytest.approx(1.0)
        assert sum(fingerprint.stage_kind_mix.values()) == pytest.approx(1.0)


class TestCpsAgreement:
    def test_identical_profiles_agree_fully(self):
        cps = CPSResult(
            scc={"a": 0.9, "b": 0.5, "c": 0.1, "d": 0.05}, selected=("a", "b"), threshold=0.2
        )
        assert cps_agreement(cps, cps) == pytest.approx(1.0)

    def test_disjoint_profiles_do_not_agree(self):
        a = CPSResult(
            scc={"a": 0.9, "b": 0.8, "c": 0.1, "d": 0.05}, selected=("a", "b"), threshold=0.2
        )
        b = CPSResult(
            scc={"a": 0.05, "b": 0.1, "c": 0.8, "d": 0.9}, selected=("c", "d"), threshold=0.2
        )
        assert cps_agreement(a, b) < 0.25


class TestDonorSelection:
    def test_empty_store_has_no_donor(self, tmp_path):
        store = HistoryStore(tmp_path)
        target = WorkloadFingerprint.from_application(get_application("join"))
        assert rank_donors(store, target) == []
        assert select_donor(store, target) is None

    def test_unbootstrapped_tenant_is_not_a_donor(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("idle", "join", seed=1, tuner=TINY_TUNER)
        target = WorkloadFingerprint.from_application(get_application("join"))
        # Registered but never tuned: no artifacts, no observations.
        assert select_donor(registry.store, target) is None

    def test_ranking_prefers_the_similar_workload(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("scan-app", "scan", seed=1, tuner=TINY_TUNER)
        registry.observe("scan-app", 100.0)
        registry.register("join-app", "join", seed=1, tuner=TINY_TUNER)
        registry.observe("join-app", 100.0)
        target = WorkloadFingerprint.from_application(get_application("join"))
        ranked = rank_donors(registry.store, target)
        assert [c.app_id for c in ranked][0] == "join-app"
        assert ranked[0].similarity > ranked[1].similarity

    def test_exclude_prevents_self_donation(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("app", "join", seed=1, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        target = WorkloadFingerprint.from_application(get_application("join"))
        assert select_donor(registry.store, target, exclude=("app",)) is None

    def test_plan_caps_observations_and_keeps_the_best(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("app", "join", seed=1, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        target = WorkloadFingerprint.from_application(get_application("join"))
        candidate = select_donor(registry.store, target)
        all_rows = registry.store.observations("app", source="tuning")
        best = min(r.duration_s for r in all_rows)
        for cap in (1, 5):  # cap=1 regression: [-0:] must not keep the tail
            plan = build_transfer_plan(registry.store, candidate, max_observations=cap)
            assert len(plan.observations) <= cap
            assert best in [duration for _, _, duration in plan.observations]
        with pytest.raises(ValueError):
            build_transfer_plan(registry.store, candidate, max_observations=0)


class TestTransferWarmStart:
    def _cold(self, tmp_path, benchmark, seed, datasize):
        registry = TuningRegistry(HistoryStore(tmp_path / "cold"))
        registry.register("target", benchmark, seed=seed, tuner=TINY_TUNER)
        decision = registry.observe("target", datasize)
        return registry, decision

    def test_no_donor_is_bit_for_bit_cold_start(self, tmp_path):
        cold_registry, cold = self._cold(tmp_path, "join", 3, 100.0)
        warm_registry = TuningRegistry(HistoryStore(tmp_path / "warm"))
        warm_registry.register(
            "target", "join", seed=3, tuner=TINY_TUNER, warm_start="transfer"
        )
        session = warm_registry.get("target")
        assert session.locat.transfer_from is None
        assert session.locat.transfer_state == "none"
        warm = warm_registry.observe("target", 100.0)

        cold_history = [t.duration_s for t in cold_registry.get("target").locat.objective.history]
        warm_history = [t.duration_s for t in session.locat.objective.history]
        assert warm_history == cold_history
        assert warm.config == cold.config
        assert warm.result.best_duration_s == cold.result.best_duration_s

    def test_accepted_transfer_saves_evaluations(self, tmp_path):
        cold_registry, cold = self._cold(tmp_path, "join", 3, 100.0)
        registry = TuningRegistry(HistoryStore(tmp_path / "warm"))
        registry.register("donor", "join", seed=3, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        registry.register(
            "target", "join", seed=3, tuner=TINY_TUNER, warm_start="transfer"
        )
        session = registry.get("target")
        assert session.locat.transfer_from.donor_app_id == "donor"
        warm = registry.observe("target", 100.0)

        assert session.locat.transfer_state == "accepted"
        assert warm.result.evaluations < cold.result.evaluations
        # Tiny budgets are noisy; the strict quality bound lives in
        # benchmarks/bench_transfer_warmstart.py with real budgets.
        assert warm.result.best_duration_s <= cold.result.best_duration_s * 1.25
        assert warm.result.details["transfer"] == "accepted"
        assert warm.result.details["transfer_donor"] == "donor"

    def test_donor_rows_never_persist_into_the_target_history(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("donor", "join", seed=3, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        registry.register(
            "target", "join", seed=3, tuner=TINY_TUNER, warm_start="transfer"
        )
        registry.observe("target", 100.0)
        session = registry.get("target")
        assert session.locat._transfer_observations  # the prior exists...
        # ...but neither the exposed history nor the store contains it.
        persisted = registry.store.observations("target", source="tuning")
        assert len(persisted) == len(session.locat.observation_history)

    def test_low_agreement_rejects_and_completes_cold_bootstrap(self, x86):
        simulator = SparkSQLSimulator(get_cluster("x86"))
        app = get_application("join")
        donor = LOCAT(simulator, app, rng=3, **{k: v for k, v in TINY_TUNER.items()})
        donor.tune(100.0)
        plan = TransferPlan(
            donor_app_id="donor",
            donor_benchmark="join",
            similarity=1.0,
            cps=donor.iicp_result.cps,
            fingerprint=WorkloadFingerprint.from_application(app),
            observations=tuple(donor.observation_history),
            min_agreement=1.01,  # unreachable: force rejection
        )
        target = LOCAT(
            simulator, app, rng=3, transfer_from=plan,
            **{k: v for k, v in TINY_TUNER.items()},
        )
        target.bootstrap(100.0)
        assert target.transfer_state == "rejected"
        assert not target._transfer_observations
        # The bootstrap completed to the full cold budget.
        assert target.objective.n_evaluations == TINY_TUNER["n_qcsa"]

    def test_registration_rejects_unknown_warm_start(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        with pytest.raises(ValueError, match="warm_start"):
            registry.register("app", "join", warm_start="lukewarm")

    def test_transfer_provenance_survives_restart(self, tmp_path):
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("donor", "join", seed=3, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        registry.register(
            "target", "join", seed=3, tuner=TINY_TUNER, warm_start="transfer"
        )
        registry.observe("target", 100.0)
        before = registry.get("target")._transfer_status()
        assert before["state"] == "accepted" and before["donor"] == "donor"

        restarted = TuningRegistry(HistoryStore(store_dir))
        session = restarted.get("target")
        assert session.locat.transfer_from is None  # restored from own history
        after = session.status()["transfer"]
        # The status endpoint still reports which donor seeded this tenant.
        assert after["state"] == "accepted"
        assert after["donor"] == "donor"
        assert after["agreement"] == pytest.approx(before["agreement"])

    def test_anchor_runs_even_when_bootstrap_called_separately(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("donor", "join", seed=3, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        registry.register(
            "target", "join", seed=3, tuner=TINY_TUNER, warm_start="transfer"
        )
        locat = registry.get("target").locat
        locat.bootstrap(100.0)
        assert locat.transfer_state == "accepted"
        donor_best = min(
            locat._transfer_observations, key=lambda o: o.rqa_duration_s
        ).config
        locat.tune(100.0)
        # The donor's best configuration was re-measured exactly once on
        # the target, even though bootstrap() and tune() were separate.
        anchors = [o for o in locat._observations if o.config == donor_best]
        assert len(anchors) >= 1
        assert locat._transfer_anchor_measured

    def test_fingerprint_persisted_at_registration(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        registry.register("app", "scan", seed=1, tuner=TINY_TUNER)
        data = registry.store.load_fingerprint("app")
        assert data is not None
        assert WorkloadFingerprint.from_json(data).benchmark == "scan"

    def test_http_registration_carries_warm_start(self, tmp_path):
        from repro.service import TuningClient

        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            status = client.register_app(
                "app", "join", tuner=TINY_TUNER, warm_start="transfer"
            )
            assert status["warm_start"] == "transfer"
            assert status["transfer"]["state"] == "none"  # empty store: no donor
            with pytest.raises(Exception):
                client.register_app("bad", "join", warm_start="lukewarm")


class TestDagpFidelity:
    def _data(self, rng, n=8):
        x = rng.random((n, 3))
        ds = np.full(n, 100.0)
        y = 50.0 + 40.0 * x[:, 0] + 5.0 * rng.random(n)
        return x, ds, y

    def test_zero_fidelities_match_no_fidelities(self):
        rng = np.random.default_rng(5)
        x, ds, y = self._data(rng)
        plain = DatasizeAwareGP(3, n_mcmc=0).fit(x, ds, y)
        zeros = DatasizeAwareGP(3, n_mcmc=0).fit(x, ds, y, fidelities=np.zeros(len(y)))
        query = rng.random((4, 3))
        mean_a, std_a = plain.predict(query, 100.0)
        mean_b, std_b = zeros.predict(query, 100.0)
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(std_a, std_b)

    def test_own_observations_outvote_a_biased_donor(self):
        rng = np.random.default_rng(7)
        x, ds, y = self._data(rng, n=10)
        # Donor rows at the same configurations claim 4x the duration.
        donor_x, donor_ds, donor_y = x.copy(), ds.copy(), y * 4.0
        model = DatasizeAwareGP(3, n_mcmc=0).fit(
            np.vstack([x, donor_x]),
            np.concatenate([ds, donor_ds]),
            np.concatenate([y, donor_y]),
            fidelities=np.concatenate([np.zeros(len(y)), np.ones(len(donor_y))]),
        )
        predicted = model.predict_duration(x, 100.0)
        # Predictions at the target's own points stay near the target's
        # durations, far from the donor's 4x-biased claims.
        assert np.all(predicted < y * 2.0)

    def test_fidelity_validation(self):
        rng = np.random.default_rng(9)
        x, ds, y = self._data(rng)
        model = DatasizeAwareGP(3, n_mcmc=0)
        with pytest.raises(ValueError):
            model.fit(x, ds, y, fidelities=np.ones(len(y) - 1))
        with pytest.raises(ValueError):
            model.fit(x, ds, y, fidelities=-np.ones(len(y)))

    def test_acquisition_queries_at_own_fidelity(self):
        rng = np.random.default_rng(11)
        x, ds, y = self._data(rng)
        model = DatasizeAwareGP(3, n_mcmc=0).fit(
            x, ds, y, fidelities=np.concatenate([np.zeros(4), np.ones(4)])
        )
        ei = model.acquisition(rng.random((6, 3)), 100.0, float(np.min(y)))
        assert ei.shape == (6,)
        assert np.all(np.isfinite(ei)) and np.all(ei >= 0)


class TestBOTraceFidelity:
    def test_best_ignores_donor_rows(self):
        trace = BOTrace(
            points=[np.array([0.1]), np.array([0.9])],
            datasizes=[100.0, 100.0],
            durations=[10.0, 5.0],  # the donor row is "faster"...
            fidelities=[0.0, 1.0],
        )
        point, duration = trace.best(100.0)
        # ...but another application's duration must never become the
        # incumbent.
        assert duration == 10.0
        assert point[0] == 0.1

    def test_best_raises_with_only_donor_rows(self):
        trace = BOTrace(
            points=[np.array([0.5])], datasizes=[100.0], durations=[5.0], fidelities=[1.0]
        )
        with pytest.raises(RuntimeError):
            trace.best()

    def test_traces_without_fidelities_stay_valid(self):
        trace = BOTrace(
            points=[np.array([0.5])], datasizes=[100.0], durations=[5.0]
        )
        _, duration = trace.best(100.0)
        assert duration == 5.0
