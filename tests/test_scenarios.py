"""Tests for the dynamic workload scenarios (:mod:`repro.sparksim.scenarios`)."""

import pytest

from repro.sparksim import SparkSQLSimulator, x86_cluster
from repro.sparksim.scenarios import (
    ScenarioStream,
    abrupt_skew_drift,
    build_scenario,
    cluster_degradation,
    datasize_random_walk,
    degrade_cluster,
    gradual_skew_drift,
    list_scenarios,
    node_loss,
    shift_application_skew,
    stable,
)


class TestGenerators:
    def test_catalog_names_build(self):
        for name in list_scenarios():
            scenario = build_scenario(name, n_steps=8)
            assert scenario.n_steps == 8
            assert [s.index for s in scenario.steps] == list(range(8))

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("meteor_strike")

    def test_stable_has_no_drift(self):
        scenario = stable(n_steps=10)
        assert scenario.onset is None
        assert all(not s.drifted for s in scenario.steps)

    def test_random_walk_is_deterministic_and_bounded(self):
        a = datasize_random_walk(n_steps=40, seed=5, lo_gb=50.0, hi_gb=400.0)
        b = datasize_random_walk(n_steps=40, seed=5, lo_gb=50.0, hi_gb=400.0)
        assert [s.datasize_gb for s in a.steps] == [s.datasize_gb for s in b.steps]
        assert all(50.0 <= s.datasize_gb <= 400.0 for s in a.steps)
        assert a.onset is None  # datasize change is not environment drift
        different = datasize_random_walk(n_steps=40, seed=6)
        assert [s.datasize_gb for s in a.steps] != [
            s.datasize_gb for s in different.steps
        ]

    def test_abrupt_skew_onset(self):
        scenario = abrupt_skew_drift(n_steps=12, onset=5, shift=0.4)
        assert scenario.onset == 5
        assert scenario.steps[4].skew_shift == 0.0
        assert scenario.steps[5].skew_shift == 0.4
        assert all(s.drifted == (s.index >= 5) for s in scenario.steps)

    def test_gradual_skew_ramps(self):
        scenario = gradual_skew_drift(n_steps=20, onset=5, ramp=10, max_shift=0.5)
        shifts = [s.skew_shift for s in scenario.steps]
        assert shifts[4] == 0.0
        assert 0.0 < shifts[6] < shifts[10] < shifts[14]
        assert shifts[-1] == pytest.approx(0.5)

    def test_onset_must_be_inside_the_stream(self):
        for builder in (abrupt_skew_drift, gradual_skew_drift,
                        cluster_degradation, node_loss):
            with pytest.raises(ValueError, match="onset"):
                builder(n_steps=5, onset=5)


class TestEnvironmentApplication:
    def test_degrade_cluster_scales_node_and_workers(self, x86):
        step = cluster_degradation(n_steps=2, onset=1).steps[1]
        degraded = degrade_cluster(x86, step)
        assert degraded.node.disk_mb_per_s == pytest.approx(
            x86.node.disk_mb_per_s * 0.45
        )
        assert degraded.node.core_speed == pytest.approx(x86.node.core_speed * 0.75)
        assert degraded.worker_count == x86.worker_count

    def test_baseline_step_returns_the_same_cluster(self, x86):
        step = stable(n_steps=1).steps[0]
        assert degrade_cluster(x86, step) is x86

    def test_node_loss_keeps_at_least_one_worker(self, x86):
        step = node_loss(n_steps=2, onset=1, lost_workers=99).steps[1]
        assert degrade_cluster(x86, step).worker_count == 1

    def test_skew_shift_clips_to_valid_range(self, join_app):
        shifted = shift_application_skew(join_app, 0.9)
        for query in shifted.queries:
            for stage in query.stages:
                assert 0.0 <= stage.skew <= 1.0
        # Volumes are untouched: only the key distribution changed.
        for before, after in zip(join_app.queries, shifted.queries):
            for s0, s1 in zip(before.stages, after.stages):
                assert s1.input_fraction == s0.input_fraction
                assert s1.shuffle_fraction == s0.shuffle_fraction

    def test_zero_shift_is_identity(self, join_app):
        assert shift_application_skew(join_app, 0.0) is join_app


class TestScenarioStream:
    def test_measurements_are_reproducible(self, x86, join_app):
        scenario = abrupt_skew_drift(n_steps=6, onset=3)
        config = SparkSQLSimulator(x86).space.default()
        a = ScenarioStream(scenario, join_app, x86, seed=3)
        b = ScenarioStream(scenario, join_app, x86, seed=3)
        durations_a = [a.measure(s, config) for s in scenario.steps]
        # Reversed order must not change any measurement.
        durations_b = [b.measure(s, config) for s in reversed(scenario.steps)][::-1]
        assert durations_a == durations_b

    def test_drift_actually_slows_the_workload(self, x86, join_app):
        """The scenarios must produce a measurable slowdown — otherwise
        the drift benchmark would be detecting nothing."""
        config = SparkSQLSimulator(x86).space.default()
        for scenario in (
            abrupt_skew_drift(n_steps=12, onset=6),
            cluster_degradation(n_steps=12, onset=6),
            node_loss(n_steps=12, onset=6),
        ):
            stream = ScenarioStream(scenario, join_app, x86, noise=0.0, seed=1)
            before = stream.measure(scenario.steps[0], config)
            after = stream.measure(scenario.steps[-1], config)
            assert after > before * 1.1, scenario.name

    def test_environments_are_cached(self, x86, join_app):
        scenario = abrupt_skew_drift(n_steps=10, onset=5)
        stream = ScenarioStream(scenario, join_app, x86, seed=0)
        for step in scenario.steps:
            stream.measure(step, SparkSQLSimulator(x86).space.default())
        # Two distinct environments: baseline and the drifted state.
        assert len(stream._environments) == 2
