"""Timing discipline for concurrency tests.

``wait_until`` polls a condition against a deadline instead of sleeping
a wall-clock guess (the classic flake source on loaded CI machines), and
:class:`FakeClock` substitutes a controllable monotonic clock for
components that accept clock/sleep injection (the load-generation
drivers).

A plain module (not ``conftest.py``) so test files can import it by name
without colliding with the benchmarks directory's conftest on sys.path
in a full-repo run.
"""

import threading
import time


def wait_until(predicate, timeout=5.0, interval=0.005, message=None):
    """Poll ``predicate`` until truthy or the deadline passes.

    Returns the predicate's (truthy) value.  Replaces the
    sleep-then-assert pattern: the test proceeds the moment the
    condition holds (fast machines stay fast) and only a genuinely hung
    condition burns the full timeout before failing loudly.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"condition not met within {timeout}s: {predicate}"
            )
        time.sleep(interval)


class FakeClock:
    """A controllable monotonic clock with a blocking ``sleep``.

    Components that accept ``clock``/``sleep`` injection (the loadgen
    drivers) run against this instead of wall time: ``sleep`` blocks the
    calling thread until the test advances the clock far enough, so
    open-loop dispatch schedules become exact and instantaneous rather
    than approximate and slow.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._cond = threading.Condition()
        #: Number of threads currently blocked in :meth:`sleep` — tests
        #: use it to advance only once the driver is actually waiting.
        self.sleepers = 0

    def monotonic(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            deadline = self._now + float(seconds)
            self.sleepers += 1
            try:
                while self._now < deadline:
                    self._cond.wait()
            finally:
                self.sleepers -= 1

    def advance(self, seconds: float) -> None:
        """Move time forward and wake every sleeper whose deadline passed."""
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        with self._cond:
            self._now += float(seconds)
            self._cond.notify_all()
