"""Tests for Spark configuration export."""

import pytest

from repro.core.export import (
    diff_configs,
    to_spark_defaults_conf,
    to_spark_properties,
    to_spark_submit_args,
)
from repro.sparksim import PARAMETERS, Configuration

#: Spark notation suffix for each Table-2 unit.
SUFFIXES = {"MB": "m", "KB": "k", "GB": "g"}

#: Dimensionless-duration parameters rendered with an ``s`` suffix.
SECONDS = {"locality.wait", "scheduler.revive.interval"}


def parse_defaults_conf(conf: str) -> dict[str, str]:
    """spark-defaults.conf text -> {key: rendered value}."""
    parsed = {}
    for line in conf.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.split(None, 1)
        parsed[key] = value.strip()
    return parsed


class TestProperties:
    def test_all_parameters_exported(self, space_x86):
        props = to_spark_properties(space_x86.default())
        assert len(props) == 38
        assert all(k.startswith("spark.") for k in props)

    def test_units_rendered(self, space_x86):
        config = space_x86.make(**{
            "executor.memory": 16,
            "executor.memoryOverhead": 2048,
            "shuffle.file.buffer": 48,
            "locality.wait": 4,
        })
        props = to_spark_properties(config)
        assert props["spark.executor.memory"] == "16g"
        assert props["spark.executor.memoryOverhead"] == "2048m"
        assert props["spark.shuffle.file.buffer"] == "48k"
        assert props["spark.locality.wait"] == "4s"

    def test_booleans_lowercase(self, space_x86):
        props = to_spark_properties(space_x86.make(**{"shuffle.compress": True}))
        assert props["spark.shuffle.compress"] == "true"
        props = to_spark_properties(space_x86.make(**{"shuffle.compress": False}))
        assert props["spark.shuffle.compress"] == "false"

    def test_floats_compact(self, space_x86):
        props = to_spark_properties(space_x86.make(**{"memory.fraction": 0.75}))
        assert props["spark.memory.fraction"] == "0.75"

    def test_dimensionless_ints(self, space_x86):
        props = to_spark_properties(space_x86.make(**{"sql.shuffle.partitions": 800}))
        assert props["spark.sql.shuffle.partitions"] == "800"


class TestRendering:
    def test_defaults_conf_is_parseable(self, space_x86):
        conf = to_spark_defaults_conf(space_x86.default(), header="tuned by test")
        lines = [l for l in conf.splitlines() if l and not l.startswith("#")]
        assert len(lines) == 38
        for line in lines:
            key, value = line.split(None, 1)
            assert key.startswith("spark.")
            assert value.strip()

    def test_header_commented(self, space_x86):
        conf = to_spark_defaults_conf(space_x86.default(), header="line one\nline two")
        assert conf.startswith("# line one\n# line two\n")

    def test_submit_args_pairs(self, space_x86):
        args = to_spark_submit_args(space_x86.default())
        assert len(args) == 2 * 38
        assert args[0] == "--conf"
        assert "=" in args[1]


class TestRoundTrip:
    """Every parameter must survive a trip through spark-defaults.conf."""

    def test_every_parameter_renders_with_correct_suffix_and_casing(self, space_x86, rng):
        config = space_x86.sample(rng)  # a "tuned" configuration
        parsed = parse_defaults_conf(to_spark_defaults_conf(config, header="round trip"))
        assert len(parsed) == len(PARAMETERS) == 38
        for param in PARAMETERS:
            rendered = parsed[f"spark.{param.name}"]
            value = config[param.name]
            if param.kind == "bool":
                assert rendered == ("true" if value else "false"), param.name
            elif param.name in SECONDS:
                assert rendered == f"{int(value)}s", param.name
            elif param.kind == "float":
                assert rendered[-1].isdigit(), param.name  # floats are dimensionless
                assert float(rendered) == pytest.approx(float(value)), param.name
            else:
                suffix = SUFFIXES.get(param.unit, "")
                assert rendered == f"{int(value)}{suffix}", param.name

    def test_parsed_values_rebuild_the_configuration(self, space_x86, rng):
        config = space_x86.sample(rng)
        parsed = parse_defaults_conf(to_spark_defaults_conf(config))
        rebuilt = {}
        for param in PARAMETERS:
            raw = parsed[f"spark.{param.name}"]
            if param.kind == "bool":
                assert raw in ("true", "false"), param.name
                rebuilt[param.name] = raw == "true"
            elif param.kind == "float":
                rebuilt[param.name] = float(raw)
            else:
                rebuilt[param.name] = int(raw.rstrip("smkg"))
        restored = Configuration(rebuilt)
        for param in PARAMETERS:
            if param.kind == "float":
                # %g keeps 6 significant digits — plenty for Spark, not bitwise.
                assert restored[param.name] == pytest.approx(config[param.name], rel=1e-5)
            else:
                assert restored[param.name] == config[param.name], param.name

    def test_defaults_round_trip_too(self, space_x86):
        config = space_x86.default()
        parsed = parse_defaults_conf(to_spark_defaults_conf(config))
        for param in PARAMETERS:
            if param.kind == "bool":
                assert parsed[f"spark.{param.name}"] == ("true" if config[param.name] else "false")


class TestDiff:
    def test_no_changes(self, space_x86):
        config = space_x86.default()
        assert diff_configs(config, config) == {}

    def test_reports_changed_values(self, space_x86):
        base = space_x86.default()
        tuned = space_x86.make(**{"executor.memory": 32, "shuffle.compress": False})
        diff = diff_configs(base, tuned)
        assert diff["spark.executor.memory"] == (f"{base['executor.memory']}g", "32g")
        assert diff["spark.shuffle.compress"] == ("true", "false")
