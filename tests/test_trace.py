"""Tests for the event-log trace export."""

import pytest

from repro.sparksim.trace import (
    application_events,
    parse_event_log,
    summarize_events,
    to_event_log,
)


@pytest.fixture()
def metrics(sim_x86_quiet, tpch):
    return sim_x86_quiet.run(tpch, sim_x86_quiet.space.default(), 100.0)


class TestEvents:
    def test_event_order(self, metrics):
        events = application_events(metrics)
        assert events[0]["Event"] == "ApplicationStart"
        assert events[-1]["Event"] == "ApplicationEnd"
        kinds = [e["Event"] for e in events]
        assert kinds.index("QueryStart") < kinds.index("QueryEnd")

    def test_one_query_block_per_query(self, metrics):
        events = application_events(metrics)
        starts = [e for e in events if e["Event"] == "QueryStart"]
        ends = [e for e in events if e["Event"] == "QueryEnd"]
        assert len(starts) == len(ends) == 22

    def test_stage_events_carry_metrics(self, metrics):
        events = application_events(metrics)
        stage = next(e for e in events if e["Event"] == "StageCompleted")
        assert stage["Number of Tasks"] > 0
        assert stage["Completion Time"] >= stage["Submission Time"]

    def test_timestamps_monotone_per_query(self, metrics):
        events = application_events(metrics, start_time_s=10.0)
        last = None
        for event in events:
            ts = event.get("Timestamp")
            if ts is None:
                continue
            if last is not None:
                assert ts >= last
            last = ts


class TestRoundtrip:
    def test_log_roundtrip(self, metrics):
        text = to_event_log(metrics)
        events = parse_event_log(text)
        assert events == application_events(metrics)

    def test_blank_lines_skipped(self, metrics):
        text = to_event_log(metrics) + "\n\n"
        assert parse_event_log(text)

    def test_bad_json_reported_with_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_event_log('{"Event":"ApplicationStart"}\nnot-json')


class TestSummary:
    def test_summary_matches_metrics(self, metrics):
        summary = summarize_events(application_events(metrics))
        assert summary.application == "TPC-H"
        assert summary.n_queries == 22
        assert summary.duration_s == pytest.approx(metrics.duration_s, abs=0.01)
        assert summary.gc_s == pytest.approx(metrics.gc_s, abs=0.01)
        assert summary.shuffle_gb == pytest.approx(
            sum(q.shuffle_bytes_gb for q in metrics.queries), rel=0.01
        )
        assert summary.failed_queries == len(metrics.failed_queries)

    def test_summary_counts_stage_flags(self, sim_x86_quiet, tpch):
        # A tiny-memory config should spill somewhere at a big datasize.
        config = sim_x86_quiet.space.make(**{
            "executor.memory": 4, "executor.cores": 16,
            "memory.offHeap.enabled": False, "sql.shuffle.partitions": 100,
        })
        metrics = sim_x86_quiet.run(tpch, config, 500.0)
        summary = summarize_events(application_events(metrics))
        assert summary.spilled_stages > 0
