"""Tests for GP covariance kernels."""

import numpy as np
import pytest

from repro.bo.kernels import Matern52Kernel, RBFKernel


@pytest.fixture(params=[RBFKernel, Matern52Kernel])
def kernel(request):
    return request.param(dim=3)


class TestKernelContract:
    def test_diagonal_is_signal_variance(self, kernel):
        x = np.random.default_rng(0).random((5, 3))
        k = kernel(x, x)
        np.testing.assert_allclose(np.diag(k), kernel.signal_variance, rtol=1e-9)
        np.testing.assert_allclose(kernel.diag(x), kernel.signal_variance)

    def test_symmetry(self, kernel):
        x = np.random.default_rng(1).random((6, 3))
        k = kernel(x, x)
        np.testing.assert_allclose(k, k.T, atol=1e-12)

    def test_positive_semidefinite(self, kernel):
        x = np.random.default_rng(2).random((10, 3))
        k = kernel(x, x)
        eigvals = np.linalg.eigvalsh(k)
        assert eigvals.min() > -1e-9

    def test_decays_with_distance(self, kernel):
        origin = np.zeros((1, 3))
        near = np.full((1, 3), 0.1)
        far = np.full((1, 3), 3.0)
        assert kernel(origin, near)[0, 0] > kernel(origin, far)[0, 0]

    def test_theta_roundtrip(self, kernel):
        theta = kernel.get_theta()
        kernel.set_theta(theta + 0.3)
        np.testing.assert_allclose(kernel.get_theta(), theta + 0.3)

    def test_theta_wrong_shape(self, kernel):
        with pytest.raises(ValueError):
            kernel.set_theta(np.zeros(99))

    def test_clone_is_independent(self, kernel):
        clone = kernel.clone()
        clone.set_theta(clone.get_theta() + 1.0)
        assert not np.allclose(clone.get_theta(), kernel.get_theta())

    def test_ard_lengthscales_matter(self, kernel):
        kernel.lengthscales = np.array([0.1, 10.0, 10.0])
        a = np.array([[0.0, 0.0, 0.0]])
        b_dim0 = np.array([[0.5, 0.0, 0.0]])
        b_dim1 = np.array([[0.0, 0.5, 0.0]])
        # Movement along the short-lengthscale dim decorrelates faster.
        assert kernel(a, b_dim0)[0, 0] < kernel(a, b_dim1)[0, 0]

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            RBFKernel(dim=0)
        with pytest.raises(ValueError):
            Matern52Kernel(dim=0)


class TestKernelDifferences:
    def test_matern_heavier_tails_than_rbf(self):
        rbf = RBFKernel(dim=1, lengthscale=1.0)
        matern = Matern52Kernel(dim=1, lengthscale=1.0)
        a = np.array([[0.0]])
        b = np.array([[3.0]])
        assert matern(a, b)[0, 0] > rbf(a, b)[0, 0]
