"""Tests for the online tuning controller."""

import math
from dataclasses import dataclass

import pytest

from repro.core import LOCAT
from repro.core.online import OnlineController, config_key
from repro.core.result import TuningResult
from repro.sparksim import SparkSQLSimulator


def make_locat(cluster, app, seed=7):
    return LOCAT(
        SparkSQLSimulator(cluster), app,
        n_qcsa=10, n_iicp=8, max_iterations=6, min_iterations=3, n_mcmc=0, rng=seed,
    )


@pytest.fixture()
def controller(x86, join_app):
    """Ratio-mode controller: the legacy drift semantics, bit for bit."""
    return OnlineController(
        make_locat(x86, join_app),
        datasize_margin=0.3, drift_factor=1.3, drift_patience=2, detector="ratio",
    )


@pytest.fixture()
def model_controller(x86, join_app):
    """Default (Page-Hinkley over DAGP residuals) controller."""
    return OnlineController(make_locat(x86, join_app), datasize_margin=0.3)


class TestLifecycle:
    def test_first_observation_tunes(self, controller):
        decision = controller.observe(100.0)
        assert decision.retuned
        assert decision.trigger == "initial"
        assert decision.result is not None
        assert controller.is_deployed

    def test_same_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(100.0, duration_s=None)
        assert not decision.retuned
        assert decision.trigger == "none"
        assert decision.config == controller.deployed_config

    def test_nearby_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(120.0)
        assert not decision.retuned  # 20% < 30% margin

    def test_far_datasize_triggers_adaptation(self, controller):
        controller.observe(100.0)
        decision = controller.observe(400.0)
        assert decision.retuned
        assert decision.trigger == "datasize"
        assert "400" in decision.reason

    def test_deployed_config_before_observe(self, controller):
        with pytest.raises(RuntimeError):
            _ = controller.deployed_config

    def test_invalid_datasize(self, controller):
        with pytest.raises(ValueError):
            controller.observe(-5.0)


class TestFalsyDurations:
    """A measured duration of 0.0 is a measurement, not a missing value."""

    def test_initial_decision_keeps_zero_duration(self, controller):
        decision = controller.observe(100.0, duration_s=0.0)
        assert decision.duration_s == 0.0

    def test_steady_state_keeps_zero_duration(self, controller):
        controller.observe(100.0)
        decision = controller.observe(100.0, duration_s=0.0)
        assert not decision.retuned  # a 0-second run is fast, not drifted
        assert decision.duration_s == 0.0

    def test_datasize_retune_keeps_zero_duration(self, controller):
        controller.observe(100.0)
        decision = controller.observe(400.0, duration_s=0.0)
        assert decision.retuned
        assert decision.duration_s == 0.0

    def test_missing_duration_still_maps_to_nan(self, controller):
        controller.observe(100.0)
        decision = controller.observe(100.0)
        assert math.isnan(decision.duration_s)


class TestDriftDetection:
    def test_consistent_slowdown_triggers_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        # Two consecutive runs far above expectation -> drift.
        controller.observe(100.0, duration_s=baseline * 3.0)
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert decision.retuned
        assert decision.trigger == "drift"
        assert "consecutive" in decision.reason

    def test_single_slow_run_tolerated(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned  # patience = 2

    def test_normal_runs_never_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        for _ in range(4):
            decision = controller.observe(100.0, duration_s=baseline)
            assert not decision.retuned


class TestDriftReason:
    def test_drift_reason_names_patience_and_factor(self, controller):
        """Durations drifting above the expectation retune with the
        exact reason string the service exposes over the API."""
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = controller.observe(100.0, duration_s=baseline * 2.0)
        assert not decision.retuned  # one slow run is inside the patience window
        decision = controller.observe(100.0, duration_s=baseline * 2.0)
        assert decision.retuned
        assert decision.reason == "2 consecutive runs over 1.3x the expected duration"

    def test_drift_window_clears_after_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)
        retuned = controller.observe(100.0, duration_s=baseline * 3.0)
        assert retuned.retuned
        assert controller.recent_ratios == []
        # The next slow run starts a fresh window instead of re-triggering.
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned

    def test_fast_run_interrupts_the_streak(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)
        controller.observe(100.0, duration_s=baseline)  # recovery run
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned  # the streak was broken


@dataclass
class _StubObservation:
    config: object
    datasize_gb: float
    rqa_duration_s: float


class _StubLocat:
    """Fixed expectation, free retunes: isolates the decision logic."""

    max_iterations = 25

    def __init__(self, space, rqa_duration_s=50.0, datasize_gb=100.0):
        self.config = space.default()
        self._observations = [
            _StubObservation(self.config, datasize_gb, rqa_duration_s)
        ]
        self.tune_calls = []
        self.adapt_calls = []

    def _result(self, datasize_gb):
        return TuningResult(
            tuner="stub", application="stub", datasize_gb=datasize_gb,
            best_config=self.config, best_duration_s=50.0 * datasize_gb / 100.0,
            overhead_s=0.0, evaluations=0,
        )

    def tune(self, datasize_gb):
        self.tune_calls.append(datasize_gb)
        return self._result(datasize_gb)

    def adapt(self, datasize_gb, max_iterations=None):
        self.adapt_calls.append((datasize_gb, max_iterations))
        return self._result(datasize_gb)

    def predict_log_duration(self, config, datasize_gb):
        return None


class TestRatioModeBitForBit:
    """detector="ratio" reproduces the pre-detector controller's retune
    decisions bit for bit on a pinned run stream."""

    #: Pinned stream of measured durations at 100 GB against the stub's
    #: fixed 50 s expectation: ratios straddle the 1.3 factor, including
    #: exact-boundary values (65.0 is *not* over 1.3x: strict >).
    STREAM = [
        50.0, 66.0, 66.0, 64.0, 66.0, 66.0, 66.0,  # retune at the 3rd full window
        65.0, 66.0, 66.0, 66.0,                     # 65.0 == 1.3x exactly: no drift yet
        200.0, 40.0, 200.0, 200.0, 200.0,           # recovery run breaks the streak
        66.0000001, 66.0, 66.0,
    ]

    @staticmethod
    def legacy_decisions(stream, expected_s, factor, patience):
        """The pre-detector drift rule, verbatim."""
        window: list[float] = []
        decisions = []
        for duration in stream:
            window.append(duration / max(expected_s, 1e-9))
            window = window[-patience:]
            drifted = len(window) >= patience and all(r > factor for r in window)
            if drifted:
                window.clear()
            decisions.append(drifted)
        return decisions

    def test_pinned_stream_decisions_match_legacy(self, space_x86):
        locat = _StubLocat(space_x86)
        controller = OnlineController(
            locat, drift_factor=1.3, drift_patience=3, detector="ratio"
        )
        controller.observe(100.0)  # deploy
        observed = [
            controller.observe(100.0, duration_s=d).retuned for d in self.STREAM
        ]
        expected = self.legacy_decisions(self.STREAM, 50.0, 1.3, 3)
        assert observed == expected
        assert any(observed), "the pinned stream must exercise at least one retune"

    def test_drift_retunes_are_partial_sessions(self, space_x86):
        locat = _StubLocat(space_x86)
        controller = OnlineController(
            locat, drift_factor=1.3, drift_patience=2, detector="ratio"
        )
        controller.observe(100.0)
        controller.observe(100.0, duration_s=200.0)
        decision = controller.observe(100.0, duration_s=200.0)
        assert decision.retuned
        assert locat.adapt_calls == [(100.0, None)]  # drift -> partial session
        assert locat.tune_calls == [100.0]           # only the initial deploy

    def test_partial_retunes_off_keeps_the_quarantined_session(self, space_x86):
        """partial_retunes=False widens the budget but still runs the
        drift-quarantined adapt session — a full tune would re-anchor
        the incumbent (and the calibration) on stale pre-drift trials
        and loop forever."""
        locat = _StubLocat(space_x86)
        controller = OnlineController(
            locat, drift_factor=1.3, drift_patience=1, detector="ratio",
            partial_retunes=False,
        )
        controller.observe(100.0)
        assert controller.observe(100.0, duration_s=200.0).retuned
        assert locat.adapt_calls == [(100.0, 25)]  # full budget, adapt path
        assert locat.tune_calls == [100.0]


class TestModelDetectorFallback:
    def test_restored_calibration_without_surrogate_still_detects(self, space_x86):
        """A persisted log_offset plus a LOCAT whose surrogate cannot
        predict (e.g. a minimal restored history) must fall back to the
        nearest-run expectation — not leave drift detection silently
        dead for the deployment's lifetime."""
        locat = _StubLocat(space_x86)  # predict_log_duration -> None
        controller = OnlineController(locat, detector="ph")
        controller.restore_state(
            locat.config, [100.0], log_offset=0.05  # calibration survived
        )
        alarmed = False
        for _ in range(6):
            if controller.observe(100.0, duration_s=50.0 * 4.0).retuned:
                alarmed = True
                break
        assert alarmed, "drift must fire through the nearest-run fallback"


class TestModelDetector:
    def test_deploy_calibrates_the_model(self, model_controller):
        model_controller.observe(100.0)
        assert model_controller.log_offset is not None
        status = model_controller.drift_status()
        assert status["detector"] == "ph"
        assert status["calibrated"]

    def test_sustained_slowdown_triggers_partial_retune(self, model_controller):
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        for _ in range(3):
            model_controller.observe(100.0, duration_s=baseline)
        decision = None
        for _ in range(6):
            decision = model_controller.observe(100.0, duration_s=baseline * 2.0)
            if decision.retuned:
                break
        assert decision is not None and decision.retuned
        assert decision.trigger == "drift"
        assert decision.result.details["partial"] is True

    def test_single_spike_tolerated(self, model_controller):
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = model_controller.observe(100.0, duration_s=baseline * 1.6)
        assert not decision.retuned
        # A recovery run keeps the statistic from accumulating.
        for _ in range(4):
            decision = model_controller.observe(100.0, duration_s=baseline)
            assert not decision.retuned

    def test_mild_degradation_below_ratio_factor_still_detected(self, model_controller):
        """A 20% slowdown never crosses the ratio rule's 1.3 factor, but
        the sequential detector integrates it up."""
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        retuned = False
        for _ in range(25):
            if model_controller.observe(100.0, duration_s=baseline * 1.2).retuned:
                retuned = True
                break
        assert retuned

    def test_invalid_detector_rejected(self, x86, join_app):
        with pytest.raises(ValueError, match="detector"):
            OnlineController(make_locat(x86, join_app), detector="oracle")


class TestConfigKeyMatching:
    def test_key_survives_float_round_trip_artifacts(self, space_x86):
        config = space_x86.default()
        perturbed = config.replace(
            **{"memory.fraction": config["memory.fraction"] + 1e-12}
        )
        assert config != perturbed  # exact equality is brittle...
        assert config_key(config) == config_key(perturbed)  # ...the key is not

    def test_drift_survives_a_rehydrated_config(self, space_x86):
        """A deployed config that no longer compares equal to the
        LOCAT-restored observations must still find its expectation."""
        locat = _StubLocat(space_x86)
        controller = OnlineController(
            locat, drift_factor=1.3, drift_patience=2, detector="ratio"
        )
        drifted_config = locat.config.replace(
            **{"memory.fraction": locat.config["memory.fraction"] + 1e-12}
        )
        controller.restore_state(drifted_config, [100.0])
        assert controller.observe(100.0, duration_s=200.0).retuned is False
        decision = controller.observe(100.0, duration_s=200.0)
        assert decision.retuned, "drift detection must survive the restart"


class TestStateRestore:
    def test_restore_state_round_trip(self, controller):
        first = controller.observe(100.0)
        fresh = OnlineController(
            controller.locat, datasize_margin=0.3, drift_factor=1.3,
            drift_patience=2, detector="ratio",
        )
        assert not fresh.is_deployed
        fresh.restore_state(
            controller.deployed_config,
            controller.tuned_datasizes,
            controller.recent_ratios,
        )
        assert fresh.is_deployed
        assert fresh.deployed_config == first.config
        assert fresh.tuned_datasizes == [100.0]
        decision = fresh.observe(105.0)
        assert not decision.retuned  # nearby datasize reuses, as before the restart

    def test_restored_drift_window_completes_the_pattern(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)  # half the window
        fresh = OnlineController(
            controller.locat, datasize_margin=0.3, drift_factor=1.3,
            drift_patience=2, detector="ratio",
        )
        fresh.restore_state(
            controller.deployed_config,
            controller.tuned_datasizes,
            controller.recent_ratios,
        )
        decision = fresh.observe(100.0, duration_s=baseline * 3.0)
        assert decision.retuned
        assert "consecutive" in decision.reason

    def test_legacy_restore_cannot_absorb_in_progress_drift(self, model_controller):
        """A restart often *follows* trouble: restoring a legacy store
        (no persisted log_offset) while the environment is already 2x
        slower must not calibrate the slowdown into the baseline — the
        capped anchor keeps the drift visible and the detector fires."""
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        legacy = OnlineController(model_controller.locat, datasize_margin=0.3)
        legacy.restore_state(
            model_controller.deployed_config,
            model_controller.tuned_datasizes,
            # no detector_state, no log_offset: a pre-detector store
        )
        alarmed = False
        for _ in range(10):
            if legacy.observe(100.0, duration_s=baseline * 2.5).retuned:
                alarmed = True
                break
        assert alarmed, "in-progress drift must survive a legacy restore"

    def test_legacy_restore_survives_a_garbage_low_first_report(self, model_controller):
        """The legacy calibration anchor is clamped below too: a 0.0 s
        first report must not calibrate the model to expect nanosecond
        runs (which would guarantee a spurious alarm right after)."""
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        legacy = OnlineController(model_controller.locat, datasize_margin=0.3)
        legacy.restore_state(
            model_controller.deployed_config, model_controller.tuned_datasizes
        )
        legacy.observe(100.0, duration_s=0.0)  # garbage calibration run
        for _ in range(8):
            decision = legacy.observe(100.0, duration_s=baseline)
            assert not decision.retuned, decision.reason

    def test_detector_state_round_trip(self, model_controller):
        first = model_controller.observe(100.0)
        baseline = first.result.best_duration_s
        for _ in range(3):
            model_controller.observe(100.0, duration_s=baseline * 1.2)
        state = model_controller.detector_state()
        offset = model_controller.log_offset
        assert state["n"] == 3 and offset is not None

        fresh = OnlineController(model_controller.locat, datasize_margin=0.3)
        fresh.restore_state(
            model_controller.deployed_config,
            model_controller.tuned_datasizes,
            detector_state=state,
            log_offset=offset,
        )
        assert fresh.detector_state() == state
        assert fresh.log_offset == offset
        assert fresh.drift_status()["calibrated"]

    def test_restore_state_requires_a_datasize(self, controller):
        controller.observe(100.0)
        with pytest.raises(ValueError):
            controller.restore_state(controller.deployed_config, [])

    def test_empty_properties_before_deploy(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=0)
        fresh = OnlineController(locat)
        assert fresh.tuned_datasizes == []
        assert fresh.recent_ratios == []
        assert fresh.log_offset is None


class TestValidation:
    def test_constructor_guards(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=0)
        with pytest.raises(ValueError):
            OnlineController(locat, datasize_margin=0.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_factor=1.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_patience=0)
