"""Tests for the online tuning controller."""

import pytest

from repro.core import LOCAT
from repro.core.online import OnlineController
from repro.sparksim import SparkSQLSimulator


@pytest.fixture()
def controller(x86, join_app):
    locat = LOCAT(
        SparkSQLSimulator(x86), join_app,
        n_qcsa=10, n_iicp=8, max_iterations=6, min_iterations=3, n_mcmc=0, rng=7,
    )
    return OnlineController(locat, datasize_margin=0.3, drift_factor=1.3, drift_patience=2)


class TestLifecycle:
    def test_first_observation_tunes(self, controller):
        decision = controller.observe(100.0)
        assert decision.retuned
        assert decision.result is not None
        assert controller.is_deployed

    def test_same_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(100.0, duration_s=None)
        assert not decision.retuned
        assert decision.config == controller.deployed_config

    def test_nearby_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(120.0)
        assert not decision.retuned  # 20% < 30% margin

    def test_far_datasize_triggers_adaptation(self, controller):
        controller.observe(100.0)
        decision = controller.observe(400.0)
        assert decision.retuned
        assert "400" in decision.reason

    def test_deployed_config_before_observe(self, controller):
        with pytest.raises(RuntimeError):
            _ = controller.deployed_config

    def test_invalid_datasize(self, controller):
        with pytest.raises(ValueError):
            controller.observe(-5.0)


class TestDriftDetection:
    def test_consistent_slowdown_triggers_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        # Two consecutive runs far above expectation -> drift.
        controller.observe(100.0, duration_s=baseline * 3.0)
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert decision.retuned
        assert "consecutive" in decision.reason

    def test_single_slow_run_tolerated(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned  # patience = 2

    def test_normal_runs_never_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        for _ in range(4):
            decision = controller.observe(100.0, duration_s=baseline)
            assert not decision.retuned


class TestValidation:
    def test_constructor_guards(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=0)
        with pytest.raises(ValueError):
            OnlineController(locat, datasize_margin=0.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_factor=1.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_patience=0)
