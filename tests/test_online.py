"""Tests for the online tuning controller."""

import pytest

from repro.core import LOCAT
from repro.core.online import OnlineController
from repro.sparksim import SparkSQLSimulator


@pytest.fixture()
def controller(x86, join_app):
    locat = LOCAT(
        SparkSQLSimulator(x86), join_app,
        n_qcsa=10, n_iicp=8, max_iterations=6, min_iterations=3, n_mcmc=0, rng=7,
    )
    return OnlineController(locat, datasize_margin=0.3, drift_factor=1.3, drift_patience=2)


class TestLifecycle:
    def test_first_observation_tunes(self, controller):
        decision = controller.observe(100.0)
        assert decision.retuned
        assert decision.result is not None
        assert controller.is_deployed

    def test_same_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(100.0, duration_s=None)
        assert not decision.retuned
        assert decision.config == controller.deployed_config

    def test_nearby_datasize_reuses(self, controller):
        controller.observe(100.0)
        decision = controller.observe(120.0)
        assert not decision.retuned  # 20% < 30% margin

    def test_far_datasize_triggers_adaptation(self, controller):
        controller.observe(100.0)
        decision = controller.observe(400.0)
        assert decision.retuned
        assert "400" in decision.reason

    def test_deployed_config_before_observe(self, controller):
        with pytest.raises(RuntimeError):
            _ = controller.deployed_config

    def test_invalid_datasize(self, controller):
        with pytest.raises(ValueError):
            controller.observe(-5.0)


class TestDriftDetection:
    def test_consistent_slowdown_triggers_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        # Two consecutive runs far above expectation -> drift.
        controller.observe(100.0, duration_s=baseline * 3.0)
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert decision.retuned
        assert "consecutive" in decision.reason

    def test_single_slow_run_tolerated(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned  # patience = 2

    def test_normal_runs_never_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        for _ in range(4):
            decision = controller.observe(100.0, duration_s=baseline)
            assert not decision.retuned


class TestDriftReason:
    def test_drift_reason_names_patience_and_factor(self, controller):
        """Durations drifting above the DAGP expectation retune with the
        exact reason string the service exposes over the API."""
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        decision = controller.observe(100.0, duration_s=baseline * 2.0)
        assert not decision.retuned  # one slow run is inside the patience window
        decision = controller.observe(100.0, duration_s=baseline * 2.0)
        assert decision.retuned
        assert decision.reason == "2 consecutive runs over 1.3x the expected duration"

    def test_drift_window_clears_after_retune(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)
        retuned = controller.observe(100.0, duration_s=baseline * 3.0)
        assert retuned.retuned
        assert controller.recent_ratios == []
        # The next slow run starts a fresh window instead of re-triggering.
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned

    def test_fast_run_interrupts_the_streak(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)
        controller.observe(100.0, duration_s=baseline)  # recovery run
        decision = controller.observe(100.0, duration_s=baseline * 3.0)
        assert not decision.retuned  # the streak was broken


class TestStateRestore:
    def test_restore_state_round_trip(self, controller):
        first = controller.observe(100.0)
        fresh = OnlineController(
            controller.locat, datasize_margin=0.3, drift_factor=1.3, drift_patience=2
        )
        assert not fresh.is_deployed
        fresh.restore_state(
            controller.deployed_config,
            controller.tuned_datasizes,
            controller.recent_ratios,
        )
        assert fresh.is_deployed
        assert fresh.deployed_config == first.config
        assert fresh.tuned_datasizes == [100.0]
        decision = fresh.observe(105.0)
        assert not decision.retuned  # nearby datasize reuses, as before the restart

    def test_restored_drift_window_completes_the_pattern(self, controller):
        first = controller.observe(100.0)
        baseline = first.result.best_duration_s
        controller.observe(100.0, duration_s=baseline * 3.0)  # half the window
        fresh = OnlineController(
            controller.locat, datasize_margin=0.3, drift_factor=1.3, drift_patience=2
        )
        fresh.restore_state(
            controller.deployed_config,
            controller.tuned_datasizes,
            controller.recent_ratios,
        )
        decision = fresh.observe(100.0, duration_s=baseline * 3.0)
        assert decision.retuned
        assert "consecutive" in decision.reason

    def test_restore_state_requires_a_datasize(self, controller):
        controller.observe(100.0)
        with pytest.raises(ValueError):
            controller.restore_state(controller.deployed_config, [])

    def test_empty_properties_before_deploy(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=0)
        fresh = OnlineController(locat)
        assert fresh.tuned_datasizes == []
        assert fresh.recent_ratios == []


class TestValidation:
    def test_constructor_guards(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=0)
        with pytest.raises(ValueError):
            OnlineController(locat, datasize_margin=0.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_factor=1.0)
        with pytest.raises(ValueError):
            OnlineController(locat, drift_patience=0)
