"""Tests for the sequential drift detectors (:mod:`repro.core.drift`)."""

import json
import math

import numpy as np
import pytest

from repro.core.drift import (
    CusumDetector,
    DriftDetector,
    DurationPrediction,
    PageHinkleyDetector,
    RatioDriftDetector,
    make_detector,
)


def prediction(expected_s: float, log_std: float = 0.1) -> DurationPrediction:
    return DurationPrediction(
        expected_s=expected_s,
        log_mean=math.log(expected_s),
        log_std=log_std,
    )


class TestDurationPrediction:
    def test_standardized_residual(self):
        p = prediction(100.0, log_std=0.1)
        assert p.standardized_residual(100.0) == pytest.approx(0.0)
        assert p.standardized_residual(100.0 * math.e**0.2) == pytest.approx(2.0)
        assert p.standardized_residual(100.0 / math.e**0.1) == pytest.approx(-1.0)


class TestRatioDetector:
    def test_matches_the_legacy_window_rule_on_random_streams(self):
        """Bit-for-bit: the detector's decisions equal the pre-detector
        controller's inline window logic for arbitrary streams."""
        rng = np.random.default_rng(42)
        for _ in range(20):
            factor = float(rng.uniform(1.05, 2.0))
            patience = int(rng.integers(1, 5))
            expected = float(rng.uniform(10.0, 500.0))
            durations = expected * rng.uniform(0.5, 3.0, size=60)

            detector = RatioDriftDetector(factor=factor, patience=patience)
            window: list[float] = []
            for duration in durations:
                # The legacy rule, verbatim (including the 1e-9 guard).
                window.append(float(duration) / max(expected, 1e-9))
                window = window[-patience:]
                legacy = len(window) >= patience and all(r > factor for r in window)
                got = detector.update(float(duration), prediction(expected))
                assert got == legacy
                if legacy:
                    window.clear()
                    detector.reset()

    def test_reason_matches_the_legacy_string(self):
        detector = RatioDriftDetector(factor=1.3, patience=2)
        assert detector.reason() == "2 consecutive runs over 1.3x the expected duration"

    def test_validation(self):
        with pytest.raises(ValueError):
            RatioDriftDetector(factor=1.0)
        with pytest.raises(ValueError):
            RatioDriftDetector(patience=0)


class TestPageHinkley:
    def test_no_alarm_on_centered_noise(self):
        """Run-to-run jitter at realistic scale (~5% of the duration,
        i.e. half the floored log-std) never accumulates to an alarm."""
        detector = PageHinkleyDetector()
        rng = np.random.default_rng(7)
        for z in rng.normal(0.0, 1.0, size=500):
            assert not detector.update(100.0 * math.exp(0.05 * z), prediction(100.0))

    def test_abrupt_shift_detected_quickly(self):
        detector = PageHinkleyDetector()
        for _ in range(10):
            detector.update(100.0, prediction(100.0))
        steps = 0
        alarmed = False
        for _ in range(5):
            steps += 1
            if detector.update(180.0, prediction(100.0)):
                alarmed = True
                break
        assert alarmed and steps <= 2

    def test_constant_offset_is_absorbed_by_the_baseline(self):
        """A systematic calibration bias must not integrate to an alarm."""
        detector = PageHinkleyDetector()
        for _ in range(200):
            assert not detector.update(108.0, prediction(100.0))

    def test_first_run_drift_stands_out_against_the_prior(self):
        """The zero-anchored prior keeps an immediately-drifted stream
        from becoming its own baseline."""
        detector = PageHinkleyDetector()
        alarmed = False
        for _ in range(4):
            if detector.update(300.0, prediction(100.0)):
                alarmed = True
                break
        assert alarmed

    def test_absurd_fast_run_cannot_force_a_false_alarm(self):
        """A single nonsense measurement (0.0 s, or ms-instead-of-s)
        must not swing the baseline so far that the next *normal* run
        alarms — the residual is clamped (asymmetrically: the fast side
        carries no drift evidence) before accumulation.  The bogus run
        arriving *first* in the window is the hardest case: the baseline
        has nothing to dilute it with."""
        for bogus in (0.0, 1e-6):
            for warmup in (0, 1, 5):
                detector = PageHinkleyDetector()
                for _ in range(warmup):
                    detector.update(100.0, prediction(100.0))
                detector.update(bogus, prediction(100.0))
                for _ in range(15):
                    assert not detector.update(100.0, prediction(100.0)), (
                        bogus, warmup
                    )

    def test_clip_does_not_slow_genuine_drift(self):
        detector = PageHinkleyDetector()
        for _ in range(5):
            detector.update(100.0, prediction(100.0))
        # A 3x slowdown (z clipped at 8) still alarms immediately.
        assert detector.update(300.0, prediction(100.0))

    def test_state_round_trips_through_json(self):
        detector = PageHinkleyDetector()
        for d in (100.0, 130.0, 125.0):
            detector.update(d, prediction(100.0))
        state = json.loads(json.dumps(detector.state()))
        restored = PageHinkleyDetector()
        restored.restore(state)
        assert restored.state() == detector.state()
        assert restored.statistic == detector.statistic
        # Both continue identically after the round trip.
        for d in (140.0, 140.0, 140.0):
            assert detector.update(d, prediction(100.0)) == restored.update(
                d, prediction(100.0)
            )

    def test_reset_clears_everything(self):
        detector = PageHinkleyDetector()
        detector.update(180.0, prediction(100.0))
        detector.reset()
        assert detector.state() == {
            "n": 0, "total": 0.0, "cumulative": 0.0, "minimum": 0.0,
        }


class TestCusum:
    def test_no_alarm_on_centered_noise(self):
        detector = CusumDetector()
        rng = np.random.default_rng(11)
        for z in rng.normal(0.0, 1.0, size=500):
            assert not detector.update(100.0 * math.exp(0.05 * z), prediction(100.0))

    def test_sustained_shift_detected(self):
        detector = CusumDetector()
        for _ in range(10):
            detector.update(100.0, prediction(100.0))
        alarmed = False
        for _ in range(6):
            if detector.update(140.0, prediction(100.0)):
                alarmed = True
                break
        assert alarmed

    def test_score_resets_on_recovery(self):
        detector = CusumDetector()
        for _ in range(10):
            detector.update(100.0, prediction(100.0))
        detector.update(150.0, prediction(100.0))
        assert detector.score > 0
        for _ in range(6):
            detector.update(100.0, prediction(100.0))
        assert detector.score == 0.0

    def test_state_round_trips_through_json(self):
        detector = CusumDetector()
        for d in (100.0, 130.0, 125.0):
            detector.update(d, prediction(100.0))
        restored = CusumDetector()
        restored.restore(json.loads(json.dumps(detector.state())))
        assert restored.state() == detector.state()


class TestFactoryAndProtocol:
    @pytest.mark.parametrize("name,cls", [
        ("ratio", RatioDriftDetector),
        ("ph", PageHinkleyDetector),
        ("cusum", CusumDetector),
    ])
    def test_make_detector(self, name, cls):
        detector = make_detector(name, drift_factor=1.5, drift_patience=4)
        assert isinstance(detector, cls)
        assert isinstance(detector, DriftDetector)  # runtime protocol check
        assert detector.name == name
        # Every detector serves a JSON-safe status and state.
        json.dumps(detector.status())
        json.dumps(detector.state())

    def test_ratio_factory_forwards_parameters(self):
        detector = make_detector("ratio", drift_factor=1.5, drift_patience=4)
        assert detector.factor == 1.5 and detector.patience == 4

    def test_unknown_detector(self):
        with pytest.raises(ValueError, match="unknown drift detector"):
            make_detector("oracle")
