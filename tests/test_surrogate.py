"""Surrogate-engine tests: exact increments, vectorized EI, pinned runs.

Three layers of guarantees:

* **Algebraic equivalence** — ``extend()`` (GP, ModelStack, DAGP)
  matches a from-scratch ``fit()`` on the concatenated data to tight
  tolerance, and the vectorized multi-model acquisition matches the
  historic per-clone Python loop exactly.
* **Engine behavior** — LML memoization, warm-started chains, the
  fidelity-toggle hyper-parameter carry-over, and the MCMC refresh
  cadence of the incremental path.
* **Pinned seeded trajectories** — a ``BOLoop.minimize`` run and a full
  ``LOCAT.tune`` session captured on the pre-engine implementation must
  reproduce bit for bit on the refactored default (``surrogate_mode=
  "full"``) path: the engine's internal restructuring (memoized
  non-mutating LML, stacked models, clean Cholesky factors) must not
  change a single float or RNG draw.
"""

import numpy as np
import pytest

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.bo.mcmc import slice_sample_chain, slice_sample_hyperparameters
from repro.core import LOCAT
from repro.core.dagp import DatasizeAwareGP
from repro.core.tuner import BOLoop
from repro.sparksim import SparkSQLSimulator, get_application
from repro.sparksim.cluster import get_cluster
from repro.surrogate import LMLCache, ModelStack, Surrogate, cholesky_append


def quadratic(point, datasize):
    """Minimum 10*ds at point = 0.3 (per dimension)."""
    return float(10.0 * (datasize / 100.0) * (1.0 + np.sum((point - 0.3) ** 2)))


def make_gp(n=25, dim=3, seed=0, kernel_cls=Matern52Kernel, noise=1e-3):
    rng = np.random.default_rng(seed)
    x = rng.random((n, dim))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] + 0.1 * rng.normal(size=n)
    gp = GaussianProcess(kernel_cls(dim=dim, lengthscale=0.4), noise_variance=noise)
    return gp, x, y


class TestCholeskyAppend:
    def test_matches_full_factorization(self):
        rng = np.random.default_rng(1)
        a = rng.random((12, 4))
        gp, x, y = make_gp(n=12, dim=4, seed=1)
        k_full = gp.kernel(a, a)
        k_full[np.diag_indices_from(k_full)] += 0.01
        from scipy.linalg import cholesky

        reference = cholesky(k_full, lower=True)
        for split in (1, 5, 11):
            lower = cholesky(k_full[:split, :split], lower=True)
            grown = cholesky_append(
                lower, k_full[:split, split:], k_full[split:, split:]
            )
            np.testing.assert_allclose(grown, reference, rtol=1e-10, atol=1e-12)

    def test_shape_validation(self):
        lower = np.eye(3)
        with pytest.raises(ValueError):
            cholesky_append(lower, np.zeros((2, 1)), np.ones((1, 1)))
        with pytest.raises(ValueError):
            cholesky_append(lower, np.zeros((3, 2)), np.ones((1, 1)))

    def test_non_positive_definite_raises(self):
        lower = np.eye(2)
        # New point identical to an old one with zero noise: singular.
        k_cross = np.array([[1.0], [0.0]])
        k_new = np.array([[1.0]])
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_append(lower, k_cross, k_new)


class TestLMLCache:
    def test_hit_returns_identical_float(self):
        cache = LMLCache()
        theta = np.array([0.1, -0.2, 0.3])
        assert cache.get(theta) is None
        cache.put(theta, -12.345678901234567)
        assert cache.get(theta) == -12.345678901234567
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_and_cap(self):
        cache = LMLCache(maxsize=2)
        for i in range(3):
            cache.put(np.array([float(i)]), float(i))
        assert len(cache) <= 2
        cache.clear()
        assert len(cache) == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LMLCache(maxsize=0)


class TestGPExtend:
    @pytest.mark.parametrize("kernel_cls", [Matern52Kernel, RBFKernel])
    def test_extend_matches_fit(self, kernel_cls):
        gp, x, y = make_gp(n=30, dim=3, seed=2, kernel_cls=kernel_cls)
        gp.fit(x[:22], y[:22]).extend(x[22:], y[22:])
        ref, _, _ = make_gp(n=30, dim=3, seed=2, kernel_cls=kernel_cls)
        ref.fit(x, y)
        xs = np.random.default_rng(3).random((9, 3))
        mean_a, std_a = gp.predict(xs)
        mean_b, std_b = ref.predict(xs)
        np.testing.assert_allclose(mean_a, mean_b, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(std_a, std_b, rtol=1e-7, atol=1e-10)
        assert gp.log_marginal_likelihood() == pytest.approx(
            ref.log_marginal_likelihood(), rel=1e-9
        )

    def test_extend_restandardizes_targets(self):
        gp, x, y = make_gp(n=20, dim=3, seed=4)
        gp.fit(x[:10], y[:10]).extend(x[10:], y[10:] + 50.0)
        assert gp.target_mean == pytest.approx(
            float(np.mean(np.concatenate([y[:10], y[10:] + 50.0])))
        )

    def test_extend_with_extra_noise_matches_fit(self):
        gp, x, y = make_gp(n=24, dim=3, seed=5)
        extra = np.linspace(0.0, 0.4, 24)
        gp.fit(x[:18], y[:18], extra_noise=extra[:18])
        gp.extend(x[18:], y[18:], extra_noise=extra[18:])
        ref, _, _ = make_gp(n=24, dim=3, seed=5)
        ref.fit(x, y, extra_noise=extra)
        xs = np.random.default_rng(6).random((5, 3))
        np.testing.assert_allclose(gp.predict(xs)[0], ref.predict(xs)[0], rtol=1e-9)
        np.testing.assert_allclose(gp.predict(xs)[1], ref.predict(xs)[1], rtol=1e-7)

    def test_extend_unfitted_delegates_to_fit(self):
        gp, x, y = make_gp(n=10, dim=3, seed=7)
        gp.extend(x, y)
        assert gp.is_fitted and gp.n_samples == 10

    def test_extend_validates_inputs(self):
        gp, x, y = make_gp(n=10, dim=3, seed=8)
        gp.fit(x, y)
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 2)), np.zeros(2))  # wrong dim
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 3)), np.array([1.0, np.nan]))

    def test_shallow_copy_is_isolated(self):
        gp, x, y = make_gp(n=15, dim=3, seed=9)
        gp.fit(x[:10], y[:10])
        before = gp.n_samples
        copy = gp.shallow_copy()
        copy.extend(x[10:], y[10:])
        assert gp.n_samples == before
        assert copy.n_samples == 15
        # The original's posterior is untouched.
        xs = x[:3]
        ref, _, _ = make_gp(n=15, dim=3, seed=9)
        ref.fit(x[:10], y[:10])
        np.testing.assert_array_equal(gp.predict(xs)[0], ref.predict(xs)[0])

    def test_memoized_lml_matches_mutating_path(self):
        gp, x, y = make_gp(n=18, dim=3, seed=10)
        gp.fit(x, y)
        theta = gp.get_theta() + 0.4
        memoized = gp.log_marginal_likelihood(theta)
        # Reference: the historic mutate-and-restore computation.
        clone = gp.clone_with_theta(theta)
        assert memoized == clone.log_marginal_likelihood()
        # Second evaluation is a cache hit returning the identical float.
        assert gp.log_marginal_likelihood(theta) == memoized
        assert gp._lml_cache.hits >= 1


class TestModelStack:
    @pytest.fixture()
    def fitted(self):
        gp, x, y = make_gp(n=35, dim=4, seed=11)
        gp.fit(x, y)
        rng = np.random.default_rng(12)
        thetas = [gp.get_theta() + rng.normal(0, 0.3, gp.n_hyperparameters) for _ in range(5)]
        return gp, thetas

    def test_batched_ei_matches_per_model_loop_exactly(self, fitted):
        gp, thetas = fitted
        stack = ModelStack.from_gp(gp, thetas)
        xs = np.random.default_rng(13).random((40, 4))
        best = float(np.min(gp.standardized_targets) * gp.target_std + gp.target_mean)
        batched = stack.acquisition(xs, best)
        # Historic reference: fitted clones, Python loop, running sum.
        from repro.bo.acquisition import expected_improvement

        total = np.zeros(len(xs))
        for theta in thetas:
            clone = gp.clone_with_theta(theta)
            mean, std = clone.predict(xs)
            total += expected_improvement(mean, std, best)
        np.testing.assert_array_equal(batched, total / len(thetas))

    def test_predict_matches_clones_exactly(self, fitted):
        gp, thetas = fitted
        stack = ModelStack.from_gp(gp, thetas)
        xs = np.random.default_rng(14).random((11, 4))
        means, stds = stack.predict(xs)
        for i, theta in enumerate(thetas):
            clone = gp.clone_with_theta(theta)
            mean, std = clone.predict(xs)
            np.testing.assert_array_equal(means[i], mean)
            np.testing.assert_array_equal(stds[i], std)

    def test_extend_matches_rebuild(self, fitted):
        gp, thetas = fitted
        stack = ModelStack.from_gp(gp, thetas)
        x_new = np.random.default_rng(15).random((3, 4))
        y_new = np.sin(3 * x_new[:, 0]) + 0.5 * x_new[:, 1]
        gp.extend(x_new, y_new)
        stack.extend(x_new, gp.standardized_targets, gp.target_mean, gp.target_std)
        rebuilt = ModelStack.from_gp(gp, thetas)
        xs = np.random.default_rng(16).random((7, 4))
        m_inc, s_inc = stack.predict(xs)
        m_ref, s_ref = rebuilt.predict(xs)
        np.testing.assert_allclose(m_inc, m_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(s_inc, s_ref, rtol=1e-6, atol=1e-9)

    def test_fast_mode_matches_exact_mode(self, fitted):
        gp, thetas = fitted
        exact = ModelStack.from_gp(gp, thetas)
        fast = ModelStack.from_gp(gp, thetas, fast=True)
        assert fast.fast and not exact.fast
        xs = np.random.default_rng(30).random((25, 4))
        m_e, s_e = exact.predict(xs)
        m_f, s_f = fast.predict(xs)
        np.testing.assert_allclose(m_f, m_e, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(s_f, s_e, rtol=1e-6, atol=1e-9)

    def test_fast_mode_extend_matches_rebuild(self, fitted):
        gp, thetas = fitted
        fast = ModelStack.from_gp(gp, thetas, fast=True)
        x_new = np.random.default_rng(31).random((4, 4))
        y_new = np.sin(3 * x_new[:, 0]) + 0.5 * x_new[:, 1]
        gp.extend(x_new, y_new)
        fast.extend(x_new, gp.standardized_targets, gp.target_mean, gp.target_std)
        rebuilt = ModelStack.from_gp(gp, thetas, fast=True)
        xs = np.random.default_rng(32).random((9, 4))
        m_inc, s_inc = fast.predict(xs)
        m_ref, s_ref = rebuilt.predict(xs)
        np.testing.assert_allclose(m_inc, m_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(s_inc, s_ref, rtol=1e-5, atol=1e-8)

    def test_requires_fitted_gp_and_samples(self):
        gp, _, _ = make_gp()
        with pytest.raises(RuntimeError):
            ModelStack.from_gp(gp, [np.zeros(5)])
        gp2, x, y = make_gp(n=8, dim=3, seed=17)
        gp2.fit(x, y)
        with pytest.raises(ValueError):
            ModelStack.from_gp(gp2, [])


class TestSliceChain:
    @pytest.fixture()
    def fitted_gp(self):
        gp, x, y = make_gp(n=20, dim=2, seed=18)
        return gp.fit(x, y)

    def test_deterministic_under_seed(self, fitted_gp):
        a, state_a = slice_sample_chain(fitted_gp, n_samples=4, burn_in=5, rng=0)
        b, state_b = slice_sample_chain(fitted_gp, n_samples=4, burn_in=5, rng=0)
        np.testing.assert_array_equal(np.stack(a), np.stack(b))
        np.testing.assert_array_equal(state_a, state_b)

    def test_warm_start_resumes_from_state(self, fitted_gp):
        _, state = slice_sample_chain(fitted_gp, n_samples=3, burn_in=8, rng=1)
        warm, _ = slice_sample_chain(
            fitted_gp, n_samples=3, burn_in=0, rng=2, initial_theta=state
        )
        cold, _ = slice_sample_chain(fitted_gp, n_samples=3, burn_in=0, rng=2)
        # Same draws, different starting states => different chains.
        assert not np.allclose(np.stack(warm), np.stack(cold))

    def test_samples_are_fresh_states_not_duplicates(self, fitted_gp):
        samples, _ = slice_sample_chain(fitted_gp, n_samples=6, burn_in=4, rng=3)
        assert len(samples) == 6
        for i in range(len(samples)):
            for j in range(i + 1, len(samples)):
                assert samples[i] is not samples[j]

    def test_invalid_thin_and_burn_in(self, fitted_gp):
        with pytest.raises(ValueError):
            slice_sample_chain(fitted_gp, n_samples=2, thin=0)
        with pytest.raises(ValueError):
            slice_sample_chain(fitted_gp, n_samples=2, burn_in=-1)

    def test_initial_theta_shape_checked(self, fitted_gp):
        with pytest.raises(ValueError):
            slice_sample_chain(fitted_gp, n_samples=2, initial_theta=np.zeros(2))

    def test_gp_state_untouched(self, fitted_gp):
        before = fitted_gp.get_theta().copy()
        slice_sample_hyperparameters(fitted_gp, n_samples=3, burn_in=3, rng=4)
        np.testing.assert_array_equal(fitted_gp.get_theta(), before)


def synthetic_observations(seed=20, n=30):
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    datasizes = rng.choice([100.0, 300.0, 500.0], size=n)
    durations = 100.0 * (1 + 4 * (points[:, 0] - 0.7) ** 2) * datasizes / 100.0
    return points, datasizes, durations


class TestDAGPEngine:
    def test_extend_matches_fit_point_estimate(self):
        points, datasizes, durations = synthetic_observations()
        inc = DatasizeAwareGP(config_dim=2, n_mcmc=0)
        inc.fit(points[:22], datasizes[:22], durations[:22])
        inc.extend(points[22:], datasizes[22:], durations[22:])
        ref = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(points, datasizes, durations)
        xs = np.random.default_rng(21).random((10, 2))
        m_inc, s_inc = inc.predict(xs, 300.0)
        m_ref, s_ref = ref.predict(xs, 300.0)
        np.testing.assert_allclose(m_inc, m_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(s_inc, s_ref, rtol=1e-7, atol=1e-10)
        best = float(durations.min())
        np.testing.assert_allclose(
            inc.acquisition(xs, 300.0, best), ref.acquisition(xs, 300.0, best),
            rtol=1e-7, atol=1e-12,
        )

    def test_extend_with_mcmc_keeps_acquisition_sane(self):
        points, datasizes, durations = synthetic_observations(seed=22)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=4)
        model.fit(points[:20], datasizes[:20], durations[:20], rng=0)
        model.extend(points[20:], datasizes[20:], durations[20:], rng=0)
        xs = np.random.default_rng(23).random((12, 2))
        ei = model.acquisition(xs, 300.0, float(durations.min()))
        assert ei.shape == (12,)
        assert np.all(np.isfinite(ei)) and np.all(ei >= -1e-12)
        assert model.n_observations == 30

    def test_mcmc_refresh_cadence(self):
        points, datasizes, durations = synthetic_observations(seed=24, n=40)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=3, mcmc_refresh_every=3)
        model.fit(points[:30], datasizes[:30], durations[:30], rng=1)
        assert not model._stack.fast  # fit builds the exact (bit-for-bit) stack
        # The first extend refreshes the chain and converts the stack to
        # the fast precision-matrix form...
        model.extend(points[30:31], datasizes[30:31], durations[30:31], rng=1)
        assert model._stack.fast
        thetas_after_refresh = [t.copy() for t in model._theta_samples]
        # ...the next two extends reuse the samples (rank-1 stack updates
        # only), and the third advances the chain again.
        for i in (31, 32):
            model.extend(points[i : i + 1], datasizes[i : i + 1], durations[i : i + 1], rng=1)
            assert all(
                np.array_equal(a, b)
                for a, b in zip(thetas_after_refresh, model._theta_samples)
            )
        model.extend(points[33:34], datasizes[33:34], durations[33:34], rng=1)
        assert not all(
            np.array_equal(a, b)
            for a, b in zip(thetas_after_refresh, model._theta_samples)
        )

    def test_fidelity_toggle_carries_hyperparameters(self):
        """Satellite fix: toggling the fidelity column on/off must not
        reset the learned kernel hyper-parameters to the constructor
        defaults on the shared (config + datasize) dimensions."""
        points, datasizes, durations = synthetic_observations(seed=25)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=0)
        model.fit(points, datasizes, durations)
        learned = np.array([0.11, 0.22, 0.33])  # config x2 + datasize
        model.gp.kernel.lengthscales = learned.copy()
        model.gp.kernel.signal_variance = 2.5
        fidelities = np.zeros(30)
        fidelities[:5] = 1.0
        model.fit(points, datasizes, durations, fidelities=fidelities)
        assert model._with_fidelity
        assert model.gp.kernel.dim == 4
        np.testing.assert_array_equal(model.gp.kernel.lengthscales[:3], learned)
        assert model.gp.kernel.lengthscales[3] == pytest.approx(0.5)  # fresh axis
        assert model.gp.kernel.signal_variance == pytest.approx(2.5)
        # ...and toggling back off drops the fidelity axis but keeps the rest.
        model.gp.kernel.lengthscales[:] = [0.4, 0.5, 0.6, 0.7]
        model.fit(points, datasizes, durations)
        assert not model._with_fidelity
        assert model.gp.kernel.dim == 3
        np.testing.assert_allclose(model.gp.kernel.lengthscales, [0.4, 0.5, 0.6])

    def test_extend_fidelity_toggle_falls_back_to_fit(self):
        points, datasizes, durations = synthetic_observations(seed=26)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=0)
        model.fit(points[:25], datasizes[:25], durations[:25])
        model.extend(
            points[25:], datasizes[25:], durations[25:], fidelities=np.ones(5)
        )
        assert model._with_fidelity
        assert model.n_observations == 30
        ref = DatasizeAwareGP(config_dim=2, n_mcmc=0).fit(
            points, datasizes, durations,
            fidelities=np.concatenate([np.zeros(25), np.ones(5)]),
        )
        xs = np.random.default_rng(27).random((6, 2))
        np.testing.assert_allclose(
            model.predict(xs, 300.0)[0], ref.predict(xs, 300.0)[0], rtol=1e-9
        )

    def test_point_estimate_copy_is_isolated(self):
        points, datasizes, durations = synthetic_observations(seed=28)
        model = DatasizeAwareGP(config_dim=2, n_mcmc=4)
        model.fit(points, datasizes, durations, rng=2)
        copy = model.point_estimate_copy()
        copy.extend(points[:2], datasizes[:2], np.array([40.0, 41.0]))
        assert copy.n_observations == 32
        assert model.n_observations == 30
        assert copy.n_mcmc == 0 and copy._stack is None
        # Original's MCMC machinery still intact.
        assert len(model._theta_samples) == 4

    def test_surrogate_protocol(self):
        gp, x, y = make_gp()
        dagp = DatasizeAwareGP(config_dim=2)
        assert isinstance(gp, Surrogate)
        assert isinstance(dagp, Surrogate)


class TestIncrementalBOLoop:
    def test_converges_on_quadratic(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=5, max_iterations=20,
                      n_mcmc=4, surrogate_mode="incremental", rng=0)
        trace = loop.minimize(quadratic, 100.0)
        _, duration = trace.best(100.0)
        assert duration < 12.0  # optimum is 10

    def test_budget_respected(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=8, max_iterations=8,
                      n_mcmc=2, ei_threshold=0.0, surrogate_mode="incremental", rng=1)
        trace = loop.minimize(quadratic, 100.0)
        assert trace.n_evaluations == 8

    def test_matches_full_mode_without_mcmc(self):
        """With n_mcmc=0 no RNG is consumed by surrogate fits, so the
        incremental engine walks the same candidate stream as full mode;
        exact rank-1 extends keep the trajectories numerically together."""
        full = BOLoop(dim=2, n_init=3, min_iterations=6, max_iterations=6,
                      n_mcmc=0, ei_threshold=0.0, rng=5).minimize(quadratic, 100.0)
        inc = BOLoop(dim=2, n_init=3, min_iterations=6, max_iterations=6,
                     n_mcmc=0, ei_threshold=0.0, surrogate_mode="incremental",
                     rng=5).minimize(quadratic, 100.0)
        assert full.n_evaluations == inc.n_evaluations
        np.testing.assert_allclose(
            np.stack(full.points), np.stack(inc.points), atol=1e-6
        )

    def test_batch_proposals_distinct_with_incremental_liar(self):
        def evaluate_batch(batch_points, ds):
            return np.array([quadratic(p, ds) for p in np.atleast_2d(batch_points)])

        loop = BOLoop(dim=2, n_init=4, min_iterations=4, max_iterations=12,
                      n_mcmc=0, ei_threshold=0.0, batch_size=4,
                      surrogate_mode="incremental", rng=11)
        trace = loop.minimize(quadratic, 100.0, evaluate_batch=evaluate_batch)
        batch = np.stack(trace.points[4:8])
        for i in range(len(batch)):
            for j in range(i + 1, len(batch)):
                assert not np.allclose(batch[i], batch[j])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BOLoop(dim=2, surrogate_mode="turbo")
        with pytest.raises(ValueError):
            LOCAT(None, None, surrogate_mode="turbo")


#: Captured on the pre-engine implementation (commit 5d66fec) with the
#: exact setups below; the refactored default path must reproduce every
#: float.  See the module docstring.
PINNED_BO_LOOP = {
    "points": [
        [0.8789872291071514, 0.27109007973342414],
        [0.08992890458795677, 0.9709185257592405],
        [0.3469911746453982, 0.5355452585890599],
        [0.25091643552845216, 0.31151560633472575],
        [0.19715618099979665, 0.3343155489827936],
        [0.2036607719917038, 0.36020374520570797],
        [0.1549735369837825, 0.0],
    ],
    "durations": [
        13.36061994958997,
        14.942615333345683,
        10.576897393383414,
        10.02541805490489,
        10.11754408008537,
        10.129057377900283,
        11.110326749749944,
    ],
    "ei_values": [
        0.028568623337807214,
        0.030155632702855678,
        0.025178093818222103,
        0.03848069226144816,
        0.031048646061602504,
    ],
    "stopped_by_ei": True,
}

PINNED_LOCAT_DURATIONS = [
    105.2736750449609,
    75.66955769421257,
    216.0672438303209,
    100.92531795465439,
    345.1488918823474,
    1990.9731010956084,
    159.67871009187397,
    108.7860403319758,
    77.33574829594397,
    81.66670697270212,
    77.3732367087909,
    131.44638052573654,
    139.66618335997867,
    77.73612740695178,
    83.78190088706536,
    83.47289125817453,
    78.93363874277898,
]

PINNED_LOCAT_BEST = 75.66955769421257


class TestPinnedTrajectories:
    def test_bo_loop_trajectory_bit_for_bit(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=5, max_iterations=9,
                      n_mcmc=4, rng=0)
        trace = loop.minimize(quadratic, 100.0)
        assert trace.stopped_by_ei == PINNED_BO_LOOP["stopped_by_ei"]
        assert [list(map(float, p)) for p in trace.points] == PINNED_BO_LOOP["points"]
        assert [float(d) for d in trace.durations] == PINNED_BO_LOOP["durations"]
        assert [float(e) for e in trace.ei_values] == PINNED_BO_LOOP["ei_values"]

    def test_locat_session_bit_for_bit(self):
        simulator = SparkSQLSimulator(get_cluster("x86"))
        locat = LOCAT(
            simulator,
            get_application("join"),
            n_qcsa=8,
            n_iicp=8,
            max_iterations=6,
            min_iterations=3,
            n_mcmc=2,
            use_polish=False,
            rng=7,
        )
        result = locat.tune(150.0)
        durations = [float(t.duration_s) for t in locat.objective.history]
        assert durations == PINNED_LOCAT_DURATIONS
        assert float(result.best_duration_s) == PINNED_LOCAT_BEST
