"""Tests for KNN regression and kernel SVR."""

import numpy as np
import pytest

from repro.ml.knn import KNNRegressor
from repro.ml.svr import KernelSVR


class TestKNN:
    def test_exact_match_returns_training_value(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNNRegressor(n_neighbors=2).fit(x, y)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(20.0)

    def test_uniform_weights_average(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNNRegressor(n_neighbors=2, weights="uniform").fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(5.0)

    def test_distance_weights_favor_closer(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNNRegressor(n_neighbors=2, weights="distance").fit(x, y)
        assert model.predict(np.array([[0.1]]))[0] < 5.0

    def test_k_capped_at_n(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        model = KNNRegressor(n_neighbors=10, weights="uniform").fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(2.0)

    def test_smooth_function_approximation(self):
        rng = np.random.default_rng(0)
        x = rng.random((200, 1))
        y = np.sin(4 * x[:, 0])
        model = KNNRegressor(n_neighbors=5).fit(x, y)
        xs = rng.random((50, 1))
        err = float(np.mean((model.predict(xs) - np.sin(4 * xs[:, 0])) ** 2))
        assert err < 0.01

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNNRegressor(n_neighbors=0)
        with pytest.raises(ValueError):
            KNNRegressor(weights="cosmic")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.zeros((1, 1)))


class TestKernelSVR:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(120, 1))
        y = np.sin(3 * x[:, 0])
        model = KernelSVR(c=50.0, epsilon=0.02, n_iterations=600).fit(x, y)
        pred = model.predict(x)
        assert float(np.mean((pred - y) ** 2)) < 0.05

    def test_epsilon_tube_tolerates_noise(self):
        rng = np.random.default_rng(2)
        x = rng.random((60, 1))
        y = 2.0 * x[:, 0] + rng.normal(0, 0.02, 60)
        model = KernelSVR(epsilon=0.2).fit(x, y)
        # A wide tube yields a flat-ish but finite fit.
        assert np.all(np.isfinite(model.predict(x)))

    def test_support_fraction_defined_after_fit(self):
        rng = np.random.default_rng(3)
        x = rng.random((30, 2))
        y = x[:, 0]
        model = KernelSVR().fit(x, y)
        assert 0.0 <= model.support_fraction <= 1.0

    def test_target_destandardization(self):
        rng = np.random.default_rng(4)
        x = rng.random((50, 1))
        y = 500.0 + 100.0 * x[:, 0]
        model = KernelSVR(c=50.0).fit(x, y)
        pred = model.predict(x)
        assert pred.mean() == pytest.approx(y.mean(), rel=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KernelSVR(c=0)
        with pytest.raises(ValueError):
            KernelSVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            KernelSVR(n_iterations=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelSVR().predict(np.zeros((1, 1)))
