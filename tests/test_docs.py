"""Documentation checks: internal links resolve, code snippets are valid.

Markdown rots silently — a renamed file or a deleted heading breaks
links without failing anything, and code blocks drift from the APIs
they demonstrate.  These tests keep README.md and docs/*.md honest:

* every relative link target must exist (and a ``#fragment`` pointing
  into a markdown file must match one of its headings, GitHub-slugged);
* every ```` ```python ```` block must at least compile;
* every ``python -m repro <command>`` line in a ```` ```bash ```` block
  must name a real CLI subcommand.

CI runs this file as its docs job; it is also part of the tier-1 suite
(it costs milliseconds).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: str(p),
)

#: [text](target) — target captured up to the closing parenthesis.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks with an info string: ```lang\n ... ```
_FENCE_RE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _links(markdown: str):
    # Strip fenced code blocks first: link syntax inside code is not a link.
    return _LINK_RE.findall(re.sub(r"```.*?```", "", markdown, flags=re.DOTALL))


def _doc_params():
    return [pytest.param(path, id=str(path.relative_to(REPO_ROOT))) for path in DOC_FILES]


@pytest.mark.parametrize("doc", _doc_params())
def test_docs_exist_and_are_nonempty(doc):
    assert doc.exists(), f"{doc} is referenced by the docs suite but missing"
    assert doc.read_text().strip(), f"{doc} is empty"


@pytest.mark.parametrize("doc", _doc_params())
def test_internal_links_resolve(doc):
    markdown = doc.read_text()
    broken = []
    for target in _links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked (no network in CI)
        path_part, _, fragment = target.partition("#")
        resolved = doc if not path_part else (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(f"{target}: no such file {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            slugs = [_github_slug(h) for h in _HEADING_RE.findall(resolved.read_text())]
            if fragment not in slugs:
                broken.append(f"{target}: no heading for anchor #{fragment} in {resolved.name}")
    assert not broken, f"broken links in {doc.name}:\n" + "\n".join(broken)


@pytest.mark.parametrize("doc", _doc_params())
def test_python_snippets_compile(doc):
    for language, source in _FENCE_RE.findall(doc.read_text()):
        if language != "python":
            continue
        try:
            compile(source, f"<{doc.name} python block>", "exec")
        except SyntaxError as exc:  # pragma: no cover - the assertion message
            pytest.fail(f"python block in {doc.name} does not compile: {exc}\n{source}")


def _cli_subcommands() -> set[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - our own parser, test-only
        if hasattr(action, "choices") and action.choices:
            return set(action.choices)
    raise AssertionError("could not introspect CLI subcommands")


@pytest.mark.parametrize("doc", _doc_params())
def test_bash_snippets_name_real_cli_commands(doc):
    commands = _cli_subcommands()
    bad = []
    for language, source in _FENCE_RE.findall(doc.read_text()):
        if language != "bash":
            continue
        for line in source.splitlines():
            match = re.search(r"python -m repro\s+(\S+)", line)
            if not match:
                continue
            token = match.group(1)
            if token.startswith("-"):
                continue  # a flag like --help, not a subcommand
            if token not in commands:
                bad.append(f"{token!r} in: {line.strip()}")
    assert not bad, f"unknown repro subcommands referenced in {doc.name}: {bad}"


def test_readme_links_the_docs_tree():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/history-store.md", "docs/benchmarks.md"):
        assert page in readme, f"README must link {page}"


def test_benchmark_index_covers_every_benchmark():
    """docs/benchmarks.md must mention every bench_*.py file (and no ghosts)."""
    index = (REPO_ROOT / "docs" / "benchmarks.md").read_text()
    on_disk = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
    listed = set(re.findall(r"(bench_\w+\.py)", index))
    missing = sorted(on_disk - listed)
    ghosts = sorted(listed - on_disk)
    assert not missing, f"benchmarks missing from docs/benchmarks.md: {missing}"
    assert not ghosts, f"docs/benchmarks.md lists nonexistent benchmarks: {ghosts}"
