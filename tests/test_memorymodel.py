"""Tests for the executor memory / GC / OOM model."""

import pytest

from repro.sparksim.configspace import ConfigSpace
from repro.sparksim.memorymodel import (
    OOM_PRESSURE,
    evaluate_task_memory,
    task_memory_budget,
)


@pytest.fixture()
def space():
    return ConfigSpace("x86")


class TestBudget:
    def test_more_heap_more_budget(self, space):
        small = task_memory_budget(space.make(**{"executor.memory": 4}))
        large = task_memory_budget(space.make(**{"executor.memory": 32}))
        assert large.heap_gb > small.heap_gb

    def test_more_cores_less_budget_per_task(self, space):
        one = task_memory_budget(space.make(**{"executor.cores": 1}))
        eight = task_memory_budget(space.make(**{"executor.cores": 8}))
        assert eight.heap_gb < one.heap_gb

    def test_memory_fraction_scales_budget(self, space):
        lo = task_memory_budget(space.make(**{"memory.fraction": 0.5}))
        hi = task_memory_budget(space.make(**{"memory.fraction": 0.9}))
        assert hi.heap_gb > lo.heap_gb

    def test_storage_fraction_shrinks_execution(self, space):
        lo = task_memory_budget(space.make(**{"memory.storageFraction": 0.5}))
        hi = task_memory_budget(space.make(**{"memory.storageFraction": 0.9}))
        assert hi.heap_gb < lo.heap_gb

    def test_offheap_only_when_enabled(self, space):
        off = task_memory_budget(
            space.make(**{"memory.offHeap.enabled": False, "memory.offHeap.size": 8192})
        )
        on = task_memory_budget(
            space.make(**{"memory.offHeap.enabled": True, "memory.offHeap.size": 8192})
        )
        assert off.offheap_gb == 0.0
        assert on.offheap_gb > 0.0
        assert on.total_gb > off.total_gb


class TestOutcome:
    def test_small_working_set_is_calm(self, space):
        config = space.make(**{"executor.memory": 32, "executor.cores": 1})
        outcome = evaluate_task_memory(0.1, config)
        assert outcome.gc_fraction < 0.1
        assert outcome.spill_gb == 0.0
        assert not outcome.oom

    def test_gc_grows_with_pressure(self, space):
        config = space.make(**{"executor.memory": 4, "executor.cores": 8})
        calm = evaluate_task_memory(0.05, config)
        stressed = evaluate_task_memory(2.0, config)
        assert stressed.gc_fraction > calm.gc_fraction

    def test_oom_at_extreme_pressure(self, space):
        config = space.make(**{"executor.memory": 4, "executor.cores": 16,
                               "memory.offHeap.enabled": False})
        outcome = evaluate_task_memory(50.0, config)
        assert outcome.heap_pressure > OOM_PRESSURE
        assert outcome.oom

    def test_offheap_relieves_pressure(self, space):
        base = {"executor.memory": 8, "executor.cores": 4}
        without = evaluate_task_memory(
            3.0, space.make(**base, **{"memory.offHeap.enabled": False})
        )
        with_off = evaluate_task_memory(
            3.0,
            space.make(**base, **{"memory.offHeap.enabled": True, "memory.offHeap.size": 16384}),
        )
        assert with_off.heap_pressure < without.heap_pressure
        assert with_off.gc_fraction <= without.gc_fraction

    def test_spill_when_over_budget(self, space):
        config = space.make(**{"executor.memory": 4, "executor.cores": 8,
                               "memory.offHeap.enabled": False})
        outcome = evaluate_task_memory(4.0, config)
        assert outcome.spill_gb > 0

    def test_negative_working_set_rejected(self, space):
        with pytest.raises(ValueError):
            evaluate_task_memory(-1.0, space.default())

    def test_gc_fraction_capped(self, space):
        config = space.make(**{"executor.memory": 4, "executor.cores": 16,
                               "memory.offHeap.enabled": False})
        outcome = evaluate_task_memory(100.0, config)
        assert outcome.gc_fraction <= 5.0
