"""Shared fixtures: simulators, applications, and sample configurations.

Timing helpers for concurrency tests (``wait_until``, ``FakeClock``)
live in :mod:`timing_helpers` — a plain module so tests can import it
without tripping over the benchmarks conftest on sys.path.
"""

import numpy as np
import pytest

from repro.sparksim import (
    SparkSQLSimulator,
    arm_cluster,
    get_application,
    x86_cluster,
)
from repro.sparksim.configspace import ConfigSpace


@pytest.fixture(scope="session")
def arm():
    return arm_cluster()


@pytest.fixture(scope="session")
def x86():
    return x86_cluster()


@pytest.fixture()
def sim_x86(x86):
    return SparkSQLSimulator(x86)


@pytest.fixture()
def sim_arm(arm):
    return SparkSQLSimulator(arm)


@pytest.fixture()
def sim_x86_quiet(x86):
    """Noise-free simulator for deterministic assertions."""
    return SparkSQLSimulator(x86, noise=0.0)


@pytest.fixture(scope="session")
def tpcds():
    return get_application("tpcds")


@pytest.fixture(scope="session")
def tpch():
    return get_application("tpch")


@pytest.fixture(scope="session")
def join_app():
    return get_application("join")


@pytest.fixture(scope="session")
def scan_app():
    return get_application("scan")


@pytest.fixture()
def space_x86(x86):
    return ConfigSpace.for_cluster(x86)


@pytest.fixture()
def space_arm(arm):
    return ConfigSpace.for_cluster(arm)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
