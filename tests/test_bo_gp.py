"""Tests for Gaussian process regression."""

import numpy as np
import pytest

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel, RBFKernel


def make_gp(dim=1, noise=1e-6):
    return GaussianProcess(RBFKernel(dim=dim, lengthscale=0.3), noise_variance=noise)


class TestFitPredict:
    def test_interpolates_training_points(self):
        x = np.linspace(0, 1, 8)[:, None]
        y = np.sin(4 * x).ravel()
        gp = make_gp().fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.4], [0.5], [0.6]])
        y = np.array([1.0, 1.1, 0.9])
        gp = make_gp().fit(x, y)
        _, std_near = gp.predict(np.array([[0.5]]))
        _, std_far = gp.predict(np.array([[5.0]]))
        assert std_far[0] > std_near[0]

    def test_reverts_to_mean_far_away(self):
        x = np.array([[0.0], [0.1]])
        y = np.array([5.0, 7.0])
        gp = make_gp().fit(x, y)
        mean = gp.predict(np.array([[100.0]]), return_std=False)
        assert mean[0] == pytest.approx(6.0, abs=0.2)  # training mean

    def test_standardization_invariance(self):
        # Predictions scale/shift with the targets.
        x = np.linspace(0, 1, 10)[:, None]
        y = np.sin(5 * x).ravel()
        gp1 = make_gp().fit(x, y)
        gp2 = make_gp().fit(x, 1000.0 + 50.0 * y)
        xs = np.array([[0.33]])
        m1 = gp1.predict(xs, return_std=False)[0]
        m2 = gp2.predict(xs, return_std=False)[0]
        assert m2 == pytest.approx(1000.0 + 50.0 * m1, rel=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            make_gp().predict(np.zeros((1, 1)))

    def test_shape_validation(self):
        gp = make_gp(dim=2)
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))

    def test_nonfinite_rejected(self):
        gp = make_gp()
        with pytest.raises(ValueError):
            gp.fit(np.array([[0.0], [np.nan]]), np.array([1.0, 2.0]))

    def test_constant_targets_handled(self):
        x = np.linspace(0, 1, 5)[:, None]
        gp = make_gp().fit(x, np.full(5, 3.0))
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)


class TestHyperparameters:
    def test_lml_prefers_true_lengthscale(self):
        rng = np.random.default_rng(4)
        x = rng.random((40, 1))
        y = np.sin(6 * x).ravel()
        gp = GaussianProcess(RBFKernel(dim=1, lengthscale=0.25), noise_variance=1e-4)
        gp.fit(x, y)
        good = gp.log_marginal_likelihood()
        theta_bad = gp.get_theta().copy()
        theta_bad[1] = np.log(20.0)  # absurdly long lengthscale
        bad = gp.log_marginal_likelihood(theta_bad)
        assert good > bad

    def test_lml_evaluation_restores_state(self):
        x = np.linspace(0, 1, 6)[:, None]
        gp = make_gp().fit(x, np.sin(x).ravel())
        before = gp.get_theta().copy()
        gp.log_marginal_likelihood(before + 1.0)
        np.testing.assert_allclose(gp.get_theta(), before)

    def test_set_theta_refits(self):
        x = np.linspace(0, 1, 6)[:, None]
        y = np.sin(5 * x).ravel()
        gp = make_gp().fit(x, y)
        m_before = gp.predict(np.array([[0.5]]), return_std=False)[0]
        theta = gp.get_theta()
        theta[1] = np.log(5.0)
        gp.set_theta(theta)
        m_after = gp.predict(np.array([[0.5]]), return_std=False)[0]
        assert m_before != pytest.approx(m_after)

    def test_clone_with_theta_independent(self):
        x = np.linspace(0, 1, 6)[:, None]
        y = np.cos(3 * x).ravel()
        gp = make_gp().fit(x, y)
        clone = gp.clone_with_theta(gp.get_theta() + 0.5)
        assert clone.is_fitted
        assert not np.allclose(clone.get_theta(), gp.get_theta())

    def test_works_with_matern(self):
        x = np.linspace(0, 1, 12)[:, None]
        y = np.sin(6 * x).ravel()
        gp = GaussianProcess(Matern52Kernel(dim=1, lengthscale=0.3), noise_variance=1e-5)
        gp.fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=0.05)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(RBFKernel(dim=1), noise_variance=0.0)
