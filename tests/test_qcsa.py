"""Tests for Query Configuration Sensitivity Analysis."""

import numpy as np
import pytest

from repro.core.objective import SparkSQLObjective
from repro.core.qcsa import QCSA, analyze_samples, classify_queries


class TestClassification:
    def test_three_band_split(self):
        cvs = {"a": 0.1, "b": 0.2, "c": 2.0, "d": 3.1}
        result = classify_queries(cvs)
        # width = (3.1 - 0.1)/3 = 1.0; threshold = 1.1.
        assert result.threshold == pytest.approx(1.1)
        assert set(result.ciq) == {"a", "b"}
        assert set(result.csq) == {"c", "d"}

    def test_single_query_always_csq(self):
        result = classify_queries({"only": 0.01})
        assert result.csq == ("only",)
        assert result.ciq == ()

    def test_identical_cvs_keep_everything(self):
        result = classify_queries({"a": 0.5, "b": 0.5, "c": 0.5})
        assert len(result.csq) == 3

    def test_order_preserved(self):
        cvs = {"q3": 2.0, "q1": 2.5, "q2": 0.1}
        result = classify_queries(cvs)
        assert result.csq == ("q3", "q1")

    def test_reduction_ratio(self):
        result = classify_queries({"a": 0.0, "b": 0.0, "c": 0.0, "d": 3.0})
        assert result.reduction_ratio == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_queries({})


class TestAnalyzeSamples:
    def test_cv_computation(self):
        samples = {"flat": [10.0, 10.0, 10.0], "wild": [1.0, 10.0, 100.0]}
        result = analyze_samples(samples)
        assert result.cvs["flat"] == pytest.approx(0.0)
        assert result.cvs["wild"] > 1.0
        assert "wild" in result.csq and "flat" in result.ciq
        assert result.n_samples == 3

    def test_ragged_samples_rejected(self):
        with pytest.raises(ValueError):
            analyze_samples({"a": [1.0, 2.0], "b": [1.0]})

    def test_single_run_rejected(self):
        with pytest.raises(ValueError):
            analyze_samples({"a": [1.0]})


class TestQCSADriver:
    def test_collect_shape(self, sim_x86, tpch):
        objective = SparkSQLObjective(sim_x86, tpch, rng=0)
        samples = QCSA(n_samples=4).collect(objective, 100.0, rng=0)
        assert set(samples) == set(tpch.query_names)
        assert all(len(v) == 4 for v in samples.values())
        assert objective.n_evaluations == 4

    def test_run_produces_split(self, sim_x86, tpch):
        objective = SparkSQLObjective(sim_x86, tpch, rng=1)
        result = QCSA(n_samples=6).run(objective, 200.0, rng=1)
        assert len(result.csq) + len(result.ciq) == 22
        assert len(result.csq) >= 1

    def test_sensitive_tpch_queries_rank_high(self, sim_x86, tpch):
        # Q09 (the biggest shuffler) should have a higher CV than Q01.
        objective = SparkSQLObjective(sim_x86, tpch, rng=2)
        samples = QCSA(n_samples=12).collect(objective, 300.0, rng=2)
        result = analyze_samples(samples)
        assert result.cvs["Q09"] > result.cvs["Q01"]

    def test_minimum_samples_enforced(self):
        with pytest.raises(ValueError):
            QCSA(n_samples=1)
