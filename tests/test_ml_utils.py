"""Tests for preprocessing, metrics, and validation utilities."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.validation import KFold, train_test_split


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        x = np.random.default_rng(0).random((50, 3)) * 10 + 5
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        x = np.random.default_rng(1).random((20, 2))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))


class TestMinMaxScaler:
    def test_range_is_unit(self):
        x = np.random.default_rng(2).random((30, 2)) * 100
        scaled = MinMaxScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self):
        x = np.random.default_rng(3).random((15, 3))
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)


class TestMetrics:
    def test_mse_perfect(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_mse_value(self):
        assert mean_squared_error([0, 0], [1, 3]) == pytest.approx(5.0)

    def test_mae_value(self):
        assert mean_absolute_error([0, 0], [1, -3]) == pytest.approx(2.0)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestSplits:
    def test_train_test_sizes(self):
        x = np.arange(40, dtype=float)[:, None]
        y = np.arange(40, dtype=float)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, rng=0)
        assert len(x_te) == 10 and len(x_tr) == 30
        assert len(y_te) == 10 and len(y_tr) == 30

    def test_split_is_partition(self):
        x = np.arange(20, dtype=float)[:, None]
        y = np.arange(20, dtype=float)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, rng=1)
        assert sorted(np.concatenate([y_tr, y_te]).tolist()) == y.tolist()

    def test_reproducible(self):
        x = np.arange(12, dtype=float)[:, None]
        y = np.arange(12, dtype=float)
        a = train_test_split(x, y, rng=5)[3]
        b = train_test_split(x, y, rng=5)[3]
        np.testing.assert_array_equal(a, b)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.0)

    def test_kfold_covers_everything(self):
        folds = list(KFold(n_splits=4, rng=0).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_kfold_train_test_disjoint(self):
        for train, test in KFold(n_splits=3, rng=1).split(15):
            assert not set(train) & set(test)

    def test_kfold_too_many_splits(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_kfold_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
