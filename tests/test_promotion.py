"""Tests for shadow evaluation and A/B-gated candidate promotion."""

import json
import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.online import OnlineController, config_key
from repro.core.promotion import (
    DECISION_EXTEND,
    DECISION_PROMOTE,
    DECISION_REJECT,
    PROMOTION_MODES,
    PromotionGate,
    ShadowPair,
    ShadowState,
    winner_record,
)
from repro.core.result import TuningResult
from repro.service.registry import TuningRegistry
from repro.service.store import HistoryStore
from repro.stats.abtest import (
    MIN_PAIRS_FOR_SIGNIFICANCE,
    ABTestResult,
    compare_paired,
    paired_bootstrap,
)


# ----------------------------------------------------------------------
# Paired bootstrap
# ----------------------------------------------------------------------
class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        result = paired_bootstrap([0.2, 0.25, 0.22, 0.19, 0.21], alpha=0.05)
        assert result.significant
        assert result.winner == "challenger"
        assert result.ci_low > 0.0
        assert result.p_challenger_better == 1.0
        assert result.mean_speedup > 1.0

    def test_clear_loser_favours_baseline(self):
        result = paired_bootstrap([-0.2, -0.25, -0.22, -0.19], alpha=0.05)
        assert result.significant
        assert result.winner == "baseline"
        assert result.ci_high < 0.0

    def test_pure_noise_is_not_significant(self):
        rng = np.random.default_rng(3)
        deltas = rng.normal(0.0, 0.1, size=12)
        result = paired_bootstrap(deltas, alpha=0.05)
        assert not result.significant
        assert result.winner == "none"
        assert result.ci_low < 0.0 < result.ci_high

    def test_too_few_pairs_never_significant(self):
        # Two huge consistent wins still cannot clear the pair floor.
        result = paired_bootstrap([0.5] * (MIN_PAIRS_FOR_SIGNIFICANCE - 1))
        assert not result.significant
        assert result.winner == "none"

    def test_deterministic_for_seed(self):
        deltas = [0.1, -0.05, 0.2, 0.0, 0.07]
        a = paired_bootstrap(deltas, seed=(1, 2, 3))
        b = paired_bootstrap(deltas, seed=(1, 2, 3))
        assert a == b
        c = paired_bootstrap(deltas, seed=(1, 2, 4))
        assert (c.ci_low, c.ci_high) != (a.ci_low, a.ci_high)

    def test_json_round_trip(self):
        result = paired_bootstrap([0.2, 0.3, 0.25, 0.28])
        assert ABTestResult.from_json(result.to_json()) == result

    def test_input_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([])
        with pytest.raises(ValueError):
            paired_bootstrap([0.1], alpha=0.0)
        with pytest.raises(ValueError):
            paired_bootstrap([0.1], alpha=1.0)
        with pytest.raises(ValueError):
            paired_bootstrap([0.1], n_boot=0)

    def test_compare_paired_log_deltas(self):
        # Challenger uniformly 20% faster: delta = log(1/0.8) each pair.
        baseline = [10.0, 20.0, 30.0, 40.0]
        challenger = [8.0, 16.0, 24.0, 32.0]
        result = compare_paired(baseline, challenger)
        assert result.mean_delta == pytest.approx(math.log(1.25))
        # Identical per-pair deltas: the CI degenerates to a point above
        # zero — four unanimous wins are significant.
        assert result.significant and result.winner == "challenger"
        assert result.mean_speedup == pytest.approx(1.25)

    def test_compare_paired_validation(self):
        with pytest.raises(ValueError):
            compare_paired([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            compare_paired([], [])
        with pytest.raises(ValueError):
            compare_paired([1.0, 0.0], [1.0, 1.0])


# ----------------------------------------------------------------------
# Promotion gate
# ----------------------------------------------------------------------
def make_shadow(space, challenger_speedup, n_pairs, noise=0.0, seed=0):
    """A synthetic shadow: incumbent at ~50s, challenger scaled by 1/speedup."""
    incumbent = space.default()
    challenger = space.sample(0)
    rng = np.random.default_rng(seed)
    shadow = ShadowState(
        run_id="shadow-test-0001",
        trigger="drift",
        reason="synthetic",
        incumbent=incumbent,
        challenger=challenger,
        origin_datasize_gb=100.0,
        challenger_duration_s=50.0,
        seed=1,
    )
    for _ in range(n_pairs):
        base = 50.0 * float(np.exp(rng.normal(0.0, noise)))
        shadow.pairs.append(
            ShadowPair(
                datasize_gb=100.0,
                incumbent_s=base,
                challenger_s=base / challenger_speedup,
            )
        )
    return shadow


class TestPromotionGate:
    def test_extends_while_below_min_runs(self, space_x86):
        gate = PromotionGate(min_runs=6)
        shadow = make_shadow(space_x86, 1.0, n_pairs=0)
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_EXTEND
        assert test is None
        # Mixed-sign pairs below the minimum: keep extending.
        shadow = make_shadow(space_x86, 1.0, n_pairs=0)
        for challenger_s in (49.0, 51.0, 48.5, 51.5):
            shadow.pairs.append(
                ShadowPair(datasize_gb=100.0, incumbent_s=50.0,
                           challenger_s=challenger_s)
            )
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_EXTEND
        assert "4/6" in reason

    def test_early_stop_promotes_on_clear_dominance(self, space_x86):
        gate = PromotionGate(min_runs=8)
        shadow = make_shadow(space_x86, 1.5, n_pairs=3, noise=0.05, seed=2)
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_PROMOTE
        assert test.significant and test.winner == "challenger"
        assert "early stop" in reason

    def test_early_stop_rejects_on_clear_dominance(self, space_x86):
        gate = PromotionGate(min_runs=8)
        shadow = make_shadow(space_x86, 1 / 1.5, n_pairs=3, noise=0.05, seed=2)
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_REJECT
        assert test.winner == "baseline"

    def test_promotes_at_min_runs_when_significant(self, space_x86):
        gate = PromotionGate(min_runs=6)
        shadow = make_shadow(space_x86, 1.2, n_pairs=6, noise=0.1, seed=3)
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_PROMOTE
        assert test.ci_low > 0.0

    def test_rejects_at_budget_without_significance(self, space_x86):
        gate = PromotionGate(min_runs=2, max_runs=4)
        shadow = make_shadow(space_x86, 1.0, n_pairs=4, noise=0.3, seed=7)
        decision, test, reason = gate.evaluate(shadow)
        assert decision == DECISION_REJECT
        assert "budget" in reason

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            PromotionGate(min_runs=0)
        with pytest.raises(ValueError):
            PromotionGate(alpha=1.5)
        with pytest.raises(ValueError):
            PromotionGate(min_runs=6, max_runs=3)

    def test_evaluate_is_deterministic(self, space_x86):
        gate = PromotionGate(min_runs=4)
        shadow = make_shadow(space_x86, 1.1, n_pairs=5, noise=0.2, seed=9)
        assert gate.evaluate(shadow) == gate.evaluate(shadow)

    def test_shadow_state_json_round_trip(self, space_x86):
        shadow = make_shadow(space_x86, 1.2, n_pairs=3, noise=0.1, seed=4)
        restored = ShadowState.from_json(json.loads(json.dumps(shadow.to_json())))
        assert restored.run_id == shadow.run_id
        assert restored.incumbent == shadow.incumbent
        assert restored.challenger == shadow.challenger
        assert restored.pairs == shadow.pairs
        assert restored.seed == shadow.seed
        # The verdict machinery sees an identical shadow.
        gate = PromotionGate(min_runs=3)
        assert gate.evaluate(restored) == gate.evaluate(shadow)

    def test_winner_record_carries_provenance(self, space_x86):
        gate = PromotionGate(min_runs=3)
        shadow = make_shadow(space_x86, 1.4, n_pairs=4, noise=0.05, seed=2)
        decision, test, reason = gate.evaluate(shadow)
        record = winner_record(shadow, decision, test, reason)
        assert record["run_id"] == shadow.run_id
        assert record["decision"] == decision
        assert record["n_pairs"] == 4
        assert record["baseline"]["config"] == shadow.incumbent.as_dict()
        assert record["challenger"]["config"] == shadow.challenger.as_dict()
        assert record["ab"]["ci_low"] < record["ab"]["ci_high"]
        assert record["ab"]["alpha"] == 0.05
        assert len(record["pairs"]) == 4
        json.dumps(record)  # JSON-safe end to end


# ----------------------------------------------------------------------
# Controller integration (stubbed LOCAT: free retunes, pure gate logic)
# ----------------------------------------------------------------------
@dataclass
class _StubObservation:
    config: object
    datasize_gb: float
    rqa_duration_s: float


class _StubLocat:
    """Fixed expectation, free retunes, distinct challenger config."""

    max_iterations = 25

    def __init__(self, space, rqa_duration_s=50.0, datasize_gb=100.0):
        self.space = space
        self.config = space.default()
        self.challenger = space.sample(0)
        self._observations = [
            _StubObservation(self.config, datasize_gb, rqa_duration_s)
        ]
        self.tune_calls = []
        self.adapt_calls = []

    def _result(self, datasize_gb, config):
        return TuningResult(
            tuner="stub", application="stub", datasize_gb=datasize_gb,
            best_config=config, best_duration_s=50.0 * datasize_gb / 100.0,
            overhead_s=0.0, evaluations=0,
        )

    def tune(self, datasize_gb):
        self.tune_calls.append(datasize_gb)
        # The initial tune deploys the default; later tunes propose the
        # distinct challenger, so datasize retunes exercise the gate.
        config = self.config if not self.tune_calls[:-1] else self.challenger
        return self._result(datasize_gb, config)

    def adapt(self, datasize_gb, max_iterations=None):
        self.adapt_calls.append((datasize_gb, max_iterations))
        return self._result(datasize_gb, self.challenger)

    def predict_log_duration(self, config, datasize_gb):
        return None


def make_shadow_controller(space, challenger_factor, **kwargs):
    """Ratio-detector controller whose shadow measure is deterministic:
    the incumbent takes 50s/100GB, the challenger ``challenger_factor``
    times that (``<1`` means faster)."""
    locat = _StubLocat(space)

    def measure(config, datasize_gb, rng):
        base = 50.0 * datasize_gb / 100.0
        if config_key(config) == config_key(locat.challenger):
            return base * challenger_factor
        return base

    kwargs.setdefault("shadow_runs", 3)
    controller = OnlineController(
        locat, drift_factor=1.3, drift_patience=2, detector="ratio",
        promotion="shadow_ab", shadow_measure=measure, **kwargs,
    )
    return controller, locat


def force_drift(controller, base=50.0):
    """Two slow runs at 100 GB trip the patience-2 ratio detector."""
    controller.observe(100.0)  # initial deploy
    controller.observe(100.0, duration_s=base * 3.0)
    return controller.observe(100.0, duration_s=base * 3.0)


class TestControllerShadow:
    def test_promotion_mode_validation(self, space_x86):
        with pytest.raises(ValueError):
            OnlineController(_StubLocat(space_x86), promotion="sometimes")
        with pytest.raises(ValueError):
            OnlineController(_StubLocat(space_x86), shadow_runs=0)
        with pytest.raises(ValueError):
            OnlineController(_StubLocat(space_x86), ab_alpha=2.0)
        assert "immediate" in PROMOTION_MODES and "shadow_ab" in PROMOTION_MODES

    def test_drift_retune_opens_shadow_not_deploy(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 0.5)
        incumbent = controller.deployed_config if controller.is_deployed else None
        decision = force_drift(controller)
        assert decision.retuned
        assert decision.trigger == "drift"
        assert "shadow" in decision.reason
        assert decision.promotion["phase"] == "shadow_started"
        assert controller.shadow_active
        # The challenger is NOT deployed: production keeps the incumbent.
        assert config_key(controller.deployed_config) == config_key(locat.config)
        assert locat.adapt_calls  # the retune itself did run

    def test_faster_challenger_promoted(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 0.5)
        force_drift(controller)
        decisions = []
        for _ in range(10):
            decisions.append(controller.observe(100.0, duration_s=50.0))
            if not controller.shadow_active:
                break
        final = decisions[-1]
        assert final.promotion["phase"] == "promoted"
        assert final.retuned and final.trigger == "drift"
        assert config_key(controller.deployed_config) == config_key(locat.challenger)
        assert controller.promotion_status()["promoted"] == 1
        # Clear dominance stops early: 3 pairs, not the full budget.
        assert final.promotion["n_pairs"] == 3
        [event] = controller.promotion_events
        assert event["decision"] == DECISION_PROMOTE
        assert event["ab"]["significant"]

    def test_slower_challenger_rejected(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 2.0)
        force_drift(controller)
        while controller.shadow_active:
            decision = controller.observe(100.0, duration_s=50.0)
        assert decision.promotion["phase"] == "rejected"
        assert not decision.retuned
        assert config_key(controller.deployed_config) == config_key(locat.config)
        assert controller.promotion_status()["rejected"] == 1
        [event] = controller.promotion_events
        assert event["decision"] == DECISION_REJECT
        assert event["ab"]["winner"] == "baseline"

    def test_indistinguishable_challenger_rejected_at_budget(self, space_x86):
        controller, _ = make_shadow_controller(space_x86, 1.0, shadow_runs=2)
        force_drift(controller)
        n = 0
        while controller.shadow_active:
            decision = controller.observe(100.0, duration_s=50.0)
            n += 1
        assert decision.promotion["phase"] == "rejected"
        assert n == controller._gate.max_runs
        assert "budget" in decision.reason

    def test_datasize_retune_is_gated_too(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 0.5)
        controller.observe(100.0)
        decision = controller.observe(400.0)
        assert decision.trigger == "datasize"
        assert decision.promotion["phase"] == "shadow_started"
        assert controller.shadow_active
        assert config_key(controller.deployed_config) == config_key(locat.config)

    def test_retunes_suppressed_during_shadow(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 1.0, shadow_runs=4)
        force_drift(controller)
        tunes_before = len(locat.tune_calls) + len(locat.adapt_calls)
        # A datasize jump mid-shadow advances the shadow instead of
        # racing a second candidate for the deployment slot.
        decision = controller.observe(400.0, duration_s=50.0)
        assert decision.promotion["phase"] == "shadow"
        assert len(locat.tune_calls) + len(locat.adapt_calls) == tunes_before
        # The pair was measured at the observed datasize.
        assert controller._shadow.pairs[-1].datasize_gb == 400.0

    def test_reconfirming_retune_redeploys_immediately(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 1.0)
        locat.challenger = locat.config  # adapt returns the incumbent
        decision = force_drift(controller)
        assert decision.retuned
        assert decision.promotion == {"phase": "reconfirmed"}
        assert not controller.shadow_active
        assert controller.promotion_events == []

    def test_immediate_mode_stream_identical_to_default(self, space_x86):
        """promotion="immediate" (and its absence) leave every decision
        of a pinned stream bit-for-bit unchanged."""
        stream = [50.0, 66.0, 66.0, 64.0, 200.0, 200.0, 50.0, 66.0]

        def run(**kwargs):
            controller = OnlineController(
                _StubLocat(space_x86), drift_factor=1.3, drift_patience=2,
                detector="ratio", **kwargs,
            )
            controller.observe(100.0)
            return [controller.observe(100.0, duration_s=d) for d in stream]

        default = run()
        explicit = run(promotion="immediate")
        for a, b in zip(default, explicit):
            assert (a.retuned, a.reason, a.trigger, a.promotion) == (
                b.retuned, b.reason, b.trigger, b.promotion
            )
            assert config_key(a.config) == config_key(b.config)
            assert a.promotion is None

    def test_promotion_state_round_trip_mid_shadow(self, space_x86):
        controller, locat = make_shadow_controller(space_x86, 0.5, shadow_runs=5)
        force_drift(controller)
        controller.observe(100.0, duration_s=50.0)  # one pair measured
        snapshot = json.loads(json.dumps(controller.promotion_state()))
        assert snapshot["shadow"]["pairs"]

        resumed, locat2 = make_shadow_controller(space_x86, 0.5, shadow_runs=5)
        resumed.observe(100.0)  # deploy so state exists
        resumed.restore_promotion(snapshot)
        assert resumed.shadow_active
        assert len(resumed._shadow.pairs) == 1
        # The resumed shadow finishes with the same verdict and pairs.
        while resumed.shadow_active:
            decision = resumed.observe(100.0, duration_s=50.0)
        assert decision.promotion["phase"] == "promoted"
        assert config_key(resumed.deployed_config) == config_key(locat2.challenger)

    def test_restore_promotion_in_immediate_mode_drops_shadow(self, space_x86):
        controller, _ = make_shadow_controller(space_x86, 0.5)
        force_drift(controller)
        snapshot = controller.promotion_state()

        immediate = OnlineController(
            _StubLocat(space_x86), detector="ratio", promotion="immediate"
        )
        immediate.observe(100.0)
        immediate.restore_promotion(snapshot)
        # The unvetted challenger must not deploy; the shadow is dropped.
        assert not immediate.shadow_active
        assert config_key(immediate.deployed_config) == config_key(
            immediate.locat.config
        )

    def test_status_shape(self, space_x86):
        controller, _ = make_shadow_controller(space_x86, 0.5)
        status = controller.promotion_status()
        assert status == {
            "mode": "shadow_ab", "shadow_active": False, "shadow": None,
            "promoted": 0, "rejected": 0, "last_decision": None,
        }
        force_drift(controller)
        status = controller.promotion_status()
        assert status["shadow_active"]
        assert status["shadow"]["run_id"] == "shadow-drift-0001"
        assert status["shadow"]["n_pairs"] == 0


# ----------------------------------------------------------------------
# Service integration: tenant keys, winners.json, restart survival
# ----------------------------------------------------------------------
TINY_TUNER = {
    "n_qcsa": 10, "n_iicp": 8, "max_iterations": 6,
    "min_iterations": 3, "n_mcmc": 0,
}

SHADOW_CONTROLLER = {
    "detector": "ratio", "drift_factor": 1.3, "drift_patience": 2,
    "promotion": "shadow_ab", "shadow_runs": 2, "ab_alpha": 0.05,
}


class TestServicePromotion:
    def test_tenant_keys_validated_before_store_write(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path), rehydrate=False)
        cases = [
            {"promotion": "sometimes"},
            {"promotion": 1},
            {"shadow_runs": 0},
            {"shadow_runs": True},
            {"shadow_runs": "6"},
            {"ab_alpha": 0.0},
            {"ab_alpha": 1.0},
            {"ab_alpha": True},
            {"ab_alpha": "0.05"},
        ]
        for controller in cases:
            with pytest.raises(ValueError):
                registry.register("app", benchmark="join", controller=controller)
            # Nothing persisted: the id is still free, and a service
            # restart cannot trip over a poisoned registration.
            assert not registry.store.has_app("app")
        registry.register(
            "app", benchmark="join",
            controller={"promotion": "shadow_ab", "shadow_runs": 4,
                        "ab_alpha": 0.1},
        )
        assert registry.store.has_app("app")

    def test_registry_default_promotion_applies(self, tmp_path):
        registry = TuningRegistry(
            HistoryStore(tmp_path), rehydrate=False, default_promotion="shadow_ab"
        )
        session = registry.register("app", benchmark="join", tuner=TINY_TUNER)
        assert session.controller.promotion == "shadow_ab"
        # Tenant choice wins over the service default.
        explicit = registry.register(
            "app2", benchmark="join", tuner=TINY_TUNER,
            controller={"promotion": "immediate"},
        )
        assert explicit.controller.promotion == "immediate"

    def test_default_promotion_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TuningRegistry(
                HistoryStore(tmp_path), rehydrate=False, default_promotion="nope"
            )

    def test_status_includes_promotion_block(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path), rehydrate=False)
        session = registry.register("app", benchmark="join", tuner=TINY_TUNER)
        status = session.status()
        assert status["promotion"]["mode"] == "immediate"
        assert status["promotion"]["shadow_active"] is False

    def test_shadow_survives_restart_and_writes_winners(self, tmp_path):
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(store, rehydrate=False)
        registry.register(
            "app", benchmark="join", seed=7, tuner=TINY_TUNER,
            controller=SHADOW_CONTROLLER,
        )
        first = registry.observe("app", 100.0)
        base = first.result.best_duration_s
        registry.observe("app", 100.0, duration_s=base * 3.0)
        opened = registry.observe("app", 100.0, duration_s=base * 3.0)
        assert opened.promotion["phase"] == "shadow_started"
        in_flight = registry.observe("app", 100.0, duration_s=base)
        assert in_flight.promotion["phase"] == "shadow"

        # Restart mid-shadow: the in-flight shadow rehydrates intact.
        restarted = TuningRegistry(store, rehydrate=True)
        session = restarted.get("app")
        assert session.controller.shadow_active
        assert len(session.controller._shadow.pairs) == 1
        assert session.controller._shadow.run_id == opened.promotion["run_id"]
        incumbent = session.controller.deployed_config

        # Drive the resumed shadow to its verdict.
        decision = restarted.observe("app", 100.0, duration_s=base)
        while decision.promotion and decision.promotion["phase"] == "shadow":
            decision = restarted.observe("app", 100.0, duration_s=base)
        assert decision.promotion["phase"] in ("promoted", "rejected")

        winners = store.load_winners("app")
        assert len(winners) == 1
        record = winners[0]
        assert record["decision"] in (DECISION_PROMOTE, DECISION_REJECT)
        assert record["run_id"] == opened.promotion["run_id"]
        assert record["ab"] is not None and "ci_low" in record["ab"]
        assert record["decided_at"] > 0

        # The record and counters survive yet another restart.
        final = TuningRegistry(store, rehydrate=True)
        assert store.load_winners("app") == winners
        status = final.get("app").status()["promotion"]
        assert status["promoted"] + status["rejected"] == 1
        assert status["last_decision"]["run_id"] == record["run_id"]
        if decision.promotion["phase"] == "rejected":
            assert config_key(final.get("app").controller.deployed_config) == (
                config_key(incumbent)
            )

    def test_immediate_tenant_deployed_json_unchanged(self, tmp_path):
        """Immediate-mode tenants with no promotion history keep the
        historic deployed.json schema (no promotion block)."""
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(store, rehydrate=False)
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        deployment = store.load_deployment("app")
        assert deployment is not None
        assert "promotion" not in deployment
