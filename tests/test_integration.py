"""Integration tests: whole-pipeline behaviours the paper depends on."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import LOCAT, SparkSQLObjective
from repro.core.qcsa import QCSA, analyze_samples
from repro.sparksim import SparkSQLSimulator, get_application
from repro.stats import coefficient_of_variation


@pytest.mark.slow
class TestQCSAOnTPCDS:
    def test_csq_split_matches_paper_structure(self, sim_arm, tpcds):
        objective = SparkSQLObjective(sim_arm, tpcds, rng=42)
        samples = QCSA(n_samples=30).collect(objective, 300.0, rng=42)
        result = analyze_samples(samples)
        paper_csq = {
            "Q72", "Q29", "Q14b", "Q43", "Q41", "Q99", "Q57", "Q33", "Q14a",
            "Q69", "Q40", "Q64a", "Q50", "Q21", "Q70", "Q95", "Q54", "Q23a",
            "Q23b", "Q15", "Q58", "Q62", "Q20",
        }
        overlap = len(set(result.csq) & paper_csq)
        # Paper: exactly these 23; we require a strong match.
        assert 18 <= len(result.csq) <= 30
        assert overlap >= 18
        # Selection queries must all be CIQ.
        for name in ("Q09", "Q16", "Q28", "Q96"):
            assert name in result.ciq

    def test_rqa_is_cheaper(self, sim_arm, tpcds, rng):
        objective = SparkSQLObjective(sim_arm, tpcds, rng=7)
        samples = QCSA(n_samples=10).collect(objective, 100.0, rng=7)
        result = analyze_samples(samples)
        config = sim_arm.space.sample(rng)
        full = sim_arm.run(tpcds, config, 100.0, rng=1).duration_s
        reduced = sim_arm.run(tpcds.subset(list(result.csq)), config, 100.0, rng=1).duration_s
        assert reduced < full


@pytest.mark.slow
class TestLOCATvsRandom:
    def test_locat_matches_random_quality_at_lower_overhead(self, x86, tpch):
        # LOCAT's claim is comparable tuned quality at far lower
        # optimization cost (QCSA makes its samples cheaper, IICP makes
        # them count for more).
        locat = LOCAT(SparkSQLSimulator(x86), tpch, rng=3, max_iterations=15)
        locat_result = locat.tune(300.0)
        budget = locat_result.evaluations
        random = RandomSearch(SparkSQLSimulator(x86), tpch, rng=3, n_samples=budget)
        random_result = random.tune(300.0)
        assert locat_result.best_duration_s <= random_result.best_duration_s * 1.3
        assert locat_result.overhead_s < random_result.overhead_s

    def test_adaptation_cheaper_than_retuning(self, x86, join_app):
        online = LOCAT(SparkSQLSimulator(x86), join_app, rng=5, max_iterations=12)
        first = online.tune(100.0)
        adapted = online.tune(300.0)
        fresh = LOCAT(SparkSQLSimulator(x86), join_app, rng=5, max_iterations=12)
        retuned = fresh.tune(300.0)
        assert adapted.evaluations < retuned.evaluations


@pytest.mark.slow
class TestSensitivityEmergence:
    def test_cv_tracks_shuffle_volume(self, sim_arm, tpcds):
        from repro.stats.correlation import spearman

        objective = SparkSQLObjective(sim_arm, tpcds, rng=9)
        samples = QCSA(n_samples=15).collect(objective, 300.0, rng=9)
        cvs = {name: coefficient_of_variation(t) for name, t in samples.items()}
        shuffles = {q.name: q.total_shuffle_fraction for q in tpcds.queries}
        names = list(cvs)
        rho = spearman([shuffles[n] for n in names], [cvs[n] for n in names])
        assert rho > 0.4  # section 5.11: sensitivity follows shuffle volume


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        assert hasattr(repro, "__version__")
        from repro import LOCAT as exported  # noqa: F401

    def test_example_scripts_importable(self):
        # The examples only use the public API; importing them must work.
        import importlib.util
        import pathlib

        examples = pathlib.Path(__file__).parent.parent / "examples"
        for script in examples.glob("*.py"):
            spec = importlib.util.spec_from_file_location(script.stem, script)
            module = importlib.util.module_from_spec(spec)
            # Import (without running main()).
            spec.loader.exec_module(module)
            assert hasattr(module, "main")
