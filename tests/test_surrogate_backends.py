"""Tests for the scalable surrogate backends behind the Surrogate protocol.

Four layers of guarantees:

* **Algebraic equivalence** — ``cholesky_downdate`` matches a
  from-scratch factorization of the reduced matrix and round-trips
  ``cholesky_append``; ``GaussianProcess.remove_rows`` matches a fresh
  refit on the surviving rows; a ``WindowedGP`` that slid its window
  matches a fresh GP fit on the active rows; ``SparseGP.extend`` across
  an inducing-point re-selection matches a from-scratch fit.
* **Policy** — the exact/windowed/sparse switchover points are pinned,
  and ``DatasizeAwareGP(backend="auto")`` transitions exactly there.
* **Bit-for-bit default** — ``surrogate_backend="exact"`` reproduces
  the unconfigured seeded BO trajectory float for float.
* **Service semantics** — ``tuner.surrogate_backend`` is validated
  before the store write (HTTP 400, no poisoned meta), persists per
  tenant, and survives rehydration; the service default is applied but
  never persisted.
"""

import numpy as np
import pytest
from scipy.linalg import cholesky

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel
from repro.core.dagp import DatasizeAwareGP
from repro.core.tuner import BOLoop
from repro.service import HistoryStore, ServiceError, TuningClient, TuningRegistry, TuningService
from repro.surrogate import (
    SURROGATE_BACKENDS,
    BackendPolicy,
    LMLCache,
    SparseGP,
    WindowedGP,
    cholesky_append,
    cholesky_downdate,
    validate_backend,
)

#: Small LOCAT settings so tuning sessions stay cheap in tests.
TINY_TUNER = {"n_qcsa": 10, "n_iicp": 8, "max_iterations": 6, "min_iterations": 3, "n_mcmc": 0}


def quadratic(point, datasize):
    """Minimum 10*ds at point = 0.3 (per dimension)."""
    return float(10.0 * (datasize / 100.0) * (1.0 + np.sum((point - 0.3) ** 2)))


def make_data(n=25, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, dim))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] + 0.1 * rng.normal(size=n)
    return x, y


def make_kernel(dim=3):
    return Matern52Kernel(dim=dim, lengthscale=0.4)


def spd_matrix(n=10, seed=0):
    x, _ = make_data(n=n, dim=4, seed=seed)
    k = make_kernel(dim=4)(x, x)
    k[np.diag_indices_from(k)] += 0.05
    return k


class TestCholeskyDowndate:
    def test_matches_full_factorization_at_every_index(self):
        k = spd_matrix(n=10, seed=1)
        lower = cholesky(k, lower=True)
        for index in range(10):
            keep = [j for j in range(10) if j != index]
            reduced = cholesky(k[np.ix_(keep, keep)], lower=True)
            np.testing.assert_allclose(
                cholesky_downdate(lower, index), reduced, rtol=1e-9, atol=1e-11
            )

    def test_round_trips_append(self):
        k = spd_matrix(n=9, seed=2)
        lower = cholesky(k[:8, :8], lower=True)
        grown = cholesky_append(lower, k[:8, 8:], k[8:, 8:])
        np.testing.assert_allclose(
            cholesky_downdate(grown, 8), lower, rtol=1e-12, atol=1e-14
        )

    def test_repeated_downdates_stay_accurate(self):
        k = spd_matrix(n=12, seed=3)
        lower = cholesky(k, lower=True)
        for _ in range(6):  # drop the oldest row six times
            lower = cholesky_downdate(lower, 0)
            k = k[1:, 1:]
        np.testing.assert_allclose(lower, cholesky(k, lower=True), rtol=1e-9, atol=1e-11)

    def test_validation(self):
        with pytest.raises(ValueError):
            cholesky_downdate(np.zeros((3, 2)), 0)
        lower = cholesky(spd_matrix(n=4), lower=True)
        for bad in (-5, 4, 7):
            with pytest.raises(IndexError):
                cholesky_downdate(lower, bad)


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LMLCache(maxsize=2)
        a, b, c = (np.array([float(i)]) for i in range(3))
        cache.put(a, 1.0)
        cache.put(b, 2.0)
        assert cache.get(a) == 1.0  # refresh a: b is now the LRU entry
        cache.put(c, 3.0)
        assert cache.get(b) is None
        assert cache.get(a) == 1.0 and cache.get(c) == 3.0
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = LMLCache(maxsize=2)
        a, b = np.array([0.0]), np.array([1.0])
        cache.put(a, 1.0)
        cache.put(b, 2.0)
        cache.put(a, 1.5)
        assert cache.evictions == 0
        assert cache.get(a) == 1.5 and cache.get(b) == 2.0

    def test_stats_and_counters_survive_clear(self):
        cache = LMLCache(maxsize=1)
        theta = np.array([0.5])
        assert cache.get(theta) is None
        cache.put(theta, -1.0)
        assert cache.get(theta) == -1.0
        cache.put(np.array([0.7]), -2.0)
        cache.clear()
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "evictions": 1, "size": 0, "maxsize": 1}


class TestGPRemoveRows:
    def test_remove_rows_matches_refit(self):
        x, y = make_data(n=25, seed=4)
        gp = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x, y)
        gp.remove_rows([0, 7, 24])
        keep = np.ones(25, dtype=bool)
        keep[[0, 7, 24]] = False
        ref = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x[keep], y[keep])
        xs = np.random.default_rng(5).random((9, 3))
        np.testing.assert_allclose(gp.predict(xs)[0], ref.predict(xs)[0], atol=1e-8)
        np.testing.assert_allclose(gp.predict(xs)[1], ref.predict(xs)[1], atol=1e-8)
        assert gp.n_samples == 22

    def test_drop_oldest(self):
        x, y = make_data(n=10, seed=6)
        gp = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x, y)
        gp.drop_oldest(3)
        ref = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x[3:], y[3:])
        xs = np.random.default_rng(7).random((5, 3))
        np.testing.assert_allclose(gp.predict(xs)[0], ref.predict(xs)[0], atol=1e-8)

    def test_cannot_remove_every_row(self):
        x, y = make_data(n=4, seed=8)
        gp = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x, y)
        with pytest.raises(ValueError):
            gp.remove_rows(range(4))


class TestWindowedGP:
    def test_slide_matches_fresh_refit(self):
        """After sliding past the window, the model must equal a fresh GP
        fit on exactly its active rows — the downdates lose nothing."""
        x, y = make_data(n=40, seed=9)
        gp = WindowedGP(make_kernel(), noise_variance=1e-3, window=12, coreset=0)
        gp.fit(x[:12], y[:12])
        for i in range(12, 40):
            gp.extend(x[i : i + 1], y[i : i + 1])
        assert gp.n_samples == 12  # active set stays at the window size
        assert gp.n_total == 40  # ...while the full history is retained
        ref = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x[28:], y[28:])
        xs = np.random.default_rng(10).random((9, 3))
        np.testing.assert_allclose(gp.predict(xs)[0], ref.predict(xs)[0], atol=1e-8)
        np.testing.assert_allclose(gp.predict(xs)[1], ref.predict(xs)[1], atol=1e-8)

    def test_coreset_keeps_active_set_bounded(self):
        x, y = make_data(n=60, seed=11)
        gp = WindowedGP(make_kernel(), noise_variance=1e-3, window=10, coreset=5)
        gp.fit(x[:10], y[:10])
        for i in range(10, 60):
            gp.extend(x[i : i + 1], y[i : i + 1])
        assert gp.n_samples <= 15
        assert gp.n_total == 60
        # The active set is still a genuine GP: mean at training points
        # tracks their targets.
        active = gp.training_inputs
        mean, _ = gp.predict(active)
        raw = gp.target_mean + gp.target_std * gp.standardized_targets
        np.testing.assert_allclose(mean, raw, atol=0.3)

    def test_pop_removed_indices_reports_each_removal_once(self):
        x, y = make_data(n=14, seed=12)
        gp = WindowedGP(make_kernel(), noise_variance=1e-3, window=12, coreset=0)
        gp.fit(x[:12], y[:12])
        gp.extend(x[12:], y[12:])
        removed = gp.pop_removed_indices()
        assert len(removed) == 2
        assert gp.pop_removed_indices() == []

    def test_supports_mcmc(self):
        gp = WindowedGP(make_kernel(), window=8, coreset=2)
        assert gp.supports_mcmc is True


class TestSparseGP:
    def test_extend_across_reselection_matches_fresh_fit(self):
        """Growing past the re-selection threshold rebuilds from the full
        history with a freshly strided inducing set — exactly what a
        from-scratch fit on the concatenated data produces."""
        x, y = make_data(n=45, seed=13)
        gp = SparseGP(make_kernel(), noise_variance=1e-3, n_inducing=12)
        gp.fit(x[:20], y[:20])
        gp.extend(x[20:], y[20:])  # 45 >= 2 * 20 triggers re-selection
        ref = SparseGP(make_kernel(), noise_variance=1e-3, n_inducing=12).fit(x, y)
        xs = np.random.default_rng(14).random((9, 3))
        np.testing.assert_allclose(gp.predict(xs)[0], ref.predict(xs)[0], atol=1e-7)
        np.testing.assert_allclose(gp.predict(xs)[1], ref.predict(xs)[1], atol=1e-7)

    def test_tracks_exact_gp_closely(self):
        x, y = make_data(n=200, seed=15)
        sparse = SparseGP(make_kernel(), noise_variance=1e-3, n_inducing=64).fit(x, y)
        exact = GaussianProcess(make_kernel(), noise_variance=1e-3).fit(x, y)
        xs = np.random.default_rng(16).random((64, 3))
        rmse = float(np.sqrt(np.mean((sparse.predict(xs)[0] - exact.predict(xs)[0]) ** 2)))
        assert rmse < 0.35 * float(np.std(exact.predict(xs)[0]))

    def test_no_mcmc_support(self):
        gp = SparseGP(make_kernel(), n_inducing=8)
        assert gp.supports_mcmc is False


class TestBackendPolicy:
    def test_switchover_points_pinned(self):
        policy = BackendPolicy()
        assert policy.select(1) == "exact"
        assert policy.select(512) == "exact"
        assert policy.select(513) == "windowed"
        assert policy.select(4096) == "windowed"
        assert policy.select(4097) == "sparse"

    def test_custom_thresholds(self):
        policy = BackendPolicy(n_exact=10, n_window=20)
        assert [policy.select(n) for n in (10, 11, 20, 21)] == [
            "exact", "windowed", "windowed", "sparse",
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendPolicy(n_exact=0)
        with pytest.raises(ValueError):
            BackendPolicy(n_exact=100, n_window=50)
        with pytest.raises(ValueError):
            BackendPolicy(window=1)
        with pytest.raises(ValueError):
            BackendPolicy(n_inducing=1)

    def test_validate_backend(self):
        for backend in SURROGATE_BACKENDS:
            assert validate_backend(backend) == backend
        with pytest.raises(ValueError, match="surrogate_backend"):
            validate_backend("turbo")


class TestDAGPBackends:
    def test_auto_transitions_at_policy_thresholds(self):
        policy = BackendPolicy(n_exact=20, n_window=40, window=16, coreset=4, n_inducing=8)
        rng = np.random.default_rng(17)

        def batch(n):
            points = rng.random((n, 3))
            durations = 50.0 + 10.0 * np.sum((points - 0.3) ** 2, axis=1)
            return points, np.full(n, 100.0), durations

        model = DatasizeAwareGP(3, n_mcmc=0, backend="auto", backend_policy=policy)
        model.fit(*batch(10))
        assert model.active_backend == "exact"
        model.extend(*batch(10))  # n = 20: at the threshold, still exact
        assert model.active_backend == "exact"
        model.extend(*batch(1))  # n = 21: crosses into windowed
        assert model.active_backend == "windowed"
        assert isinstance(model.gp, WindowedGP)
        model.extend(*batch(20))  # n = 41: crosses into sparse
        assert model.active_backend == "sparse"
        assert isinstance(model.gp, SparseGP)
        # The model keeps producing usable predictions across transitions.
        mean = model.predict(rng.random((5, 3)), 100.0)[0]
        assert np.all(np.isfinite(mean))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="surrogate_backend"):
            DatasizeAwareGP(3, backend="turbo")
        with pytest.raises(ValueError, match="surrogate_backend"):
            BOLoop(dim=2, surrogate_backend="turbo")

    def test_exact_backend_bit_for_bit(self):
        """surrogate_backend="exact" must not change a single float of
        the unconfigured seeded trajectory."""
        default = BOLoop(dim=2, n_init=3, min_iterations=6, max_iterations=6,
                         n_mcmc=4, ei_threshold=0.0, rng=19).minimize(quadratic, 100.0)
        explicit = BOLoop(dim=2, n_init=3, min_iterations=6, max_iterations=6,
                          n_mcmc=4, ei_threshold=0.0, surrogate_backend="exact",
                          rng=19).minimize(quadratic, 100.0)
        assert default.n_evaluations == explicit.n_evaluations
        assert np.array_equal(np.stack(default.points), np.stack(explicit.points))
        assert default.durations == explicit.durations

    def test_windowed_backend_still_converges(self):
        policy = BackendPolicy(n_exact=512, n_window=4096, window=8, coreset=2)
        loop = BOLoop(dim=2, n_init=3, min_iterations=10, max_iterations=16,
                      n_mcmc=2, surrogate_backend="windowed", backend_policy=policy,
                      rng=21)
        trace = loop.minimize(quadratic, 100.0)
        _, duration = trace.best(100.0)
        assert duration < 13.0  # optimum is 10


class TestServiceBackendSetting:
    def test_backend_is_a_tenant_setting(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        session = registry.register(
            "app", "scan", seed=1, tuner={**TINY_TUNER, "surrogate_backend": "windowed"}
        )
        assert session.locat.surrogate_backend == "windowed"
        # The backend is persisted and survives rehydration.
        rehydrated = TuningRegistry(HistoryStore(tmp_path / "store"))
        assert rehydrated.get("app").locat.surrogate_backend == "windowed"

    def test_invalid_backend_rejected_before_persisting(self, tmp_path):
        """Value (not just key) validation must run before the store
        write: a rejected registration that left its meta behind would
        crash every later rehydration of the whole service."""
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        with pytest.raises(ValueError, match="surrogate_backend"):
            registry.register("bad", "scan", tuner={"surrogate_backend": "turbo"})
        assert "bad" not in registry
        assert not store.has_app("bad")
        # The store stays rehydratable.
        TuningRegistry(HistoryStore(tmp_path / "store"))

    def test_service_default_applies_but_is_not_persisted(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store, default_surrogate_backend="windowed")
        defaulted = registry.register("app-default", "scan", seed=1, tuner=TINY_TUNER)
        explicit = registry.register(
            "app-explicit", "scan", seed=1,
            tuner={**TINY_TUNER, "surrogate_backend": "sparse"},
        )
        assert defaulted.locat.surrogate_backend == "windowed"
        assert explicit.locat.surrogate_backend == "sparse"
        # On restart a registry with a different default re-homes the
        # defaulted tenant; the explicit tenant keeps its own choice.
        rehydrated = TuningRegistry(HistoryStore(tmp_path / "store"))
        assert rehydrated.get("app-default").locat.surrogate_backend == "exact"
        assert rehydrated.get("app-explicit").locat.surrogate_backend == "sparse"

    def test_invalid_registry_default_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="surrogate_backend"):
            TuningRegistry(HistoryStore(tmp_path / "store"), default_surrogate_backend="turbo")

    def test_http_400_before_store_write(self, tmp_path):
        """The HTTP layer mirror of the registry test: an unknown
        tuner.surrogate_backend answers 400 and leaves no tenant meta,
        so a restart of the same store rehydrates cleanly."""
        store_dir = str(tmp_path / "store")
        with TuningService(store_dir, port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client.register_app(
                    "bad", "join", tuner={**TINY_TUNER, "surrogate_backend": "turbo"}
                )
            assert excinfo.value.status == 400
            assert "surrogate_backend" in str(excinfo.value)
            client.register_app(
                "good", "join", tuner={**TINY_TUNER, "surrogate_backend": "sparse"}
            )
            client.close()
        # The poisoned registration left nothing behind: a restart
        # rehydrates only the valid tenant.
        restarted = TuningService(store_dir, port=0, n_workers=1).start()
        try:
            assert restarted.registry.app_ids() == ["good"]
            assert restarted.registry.get("good").locat.surrogate_backend == "sparse"
        finally:
            restarted.close()


class TestCLIBackendFlags:
    def test_tune_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["tune", "--surrogate-backend", "windowed"])
        assert args.surrogate_backend == "windowed"
        assert build_parser().parse_args(["tune"]).surrogate_backend == "exact"

    def test_serve_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--surrogate-backend", "auto"])
        assert args.surrogate_backend == "auto"

    def test_unknown_backend_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--surrogate-backend", "turbo"])
