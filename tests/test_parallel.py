"""Tests for the parallel batch evaluation pipeline.

Determinism contract under test:

* ``n_workers=1`` goes through the exact serial code path — shared-RNG
  consumption identical to direct objective calls, never touching the
  batch machinery;
* ``n_workers>1`` is reproducible (same seed => same history) and
  independent of worker count for a fixed request list;
* a seeded bootstrap evaluates the same LHS design serial and parallel.
"""

import numpy as np
import pytest

from repro.core import LOCAT, EvalRequest, ParallelEvaluator, SparkSQLObjective
from repro.core.parallel import _execute_request
from repro.sparksim import SparkSQLSimulator


@pytest.fixture()
def objective(sim_x86, join_app):
    return SparkSQLObjective(sim_x86, join_app, rng=11)


def sample_configs(space, n, seed=0):
    rng = np.random.default_rng(seed)
    return [space.sample(rng) for _ in range(n)]


class TestEvalRequest:
    def test_datasize_is_canonicalized(self, sim_x86, join_app):
        config = sim_x86.space.default()
        assert EvalRequest(config, 100).datasize_gb == EvalRequest(config, 100.0).datasize_gb
        assert EvalRequest(config, "100").datasize_gb == 100.0

    def test_queries_become_tuple(self, sim_x86, join_app):
        request = EvalRequest(sim_x86.space.default(), 50.0, ["q1", "q2"])
        assert request.queries == ("q1", "q2")

    def test_rejects_bad_datasize(self, sim_x86):
        with pytest.raises(ValueError):
            EvalRequest(sim_x86.space.default(), -1.0)

    def test_rejects_sub_resolution_datasize(self, sim_x86):
        # A tiny positive value would round to a degenerate 0.0 key.
        with pytest.raises(ValueError, match="positive"):
            EvalRequest(sim_x86.space.default(), 4e-7)


class TestSerialEquivalence:
    def test_single_worker_matches_direct_objective_calls(self, x86, join_app):
        """n_workers=1 consumes the shared RNG exactly like serial code."""
        configs = sample_configs(SparkSQLSimulator(x86).space, 4, seed=3)

        direct = SparkSQLObjective(SparkSQLSimulator(x86), join_app, rng=7)
        for config in configs:
            direct.run(config, 100.0)
        direct.run_subset(configs[0], 100.0, [join_app.query_names[0]])

        wrapped = SparkSQLObjective(SparkSQLSimulator(x86), join_app, rng=7)
        evaluator = ParallelEvaluator(wrapped, n_workers=1)
        evaluator.run_batch([EvalRequest(c, 100.0) for c in configs])
        evaluator.run_subset(configs[0], 100.0, [join_app.query_names[0]])

        assert [t.duration_s for t in direct.history] == [t.duration_s for t in wrapped.history]
        assert direct.overhead_s == wrapped.overhead_s

    def test_single_worker_never_spawns_child_rngs(self, objective, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("serial evaluator must not spawn child RNGs")

        monkeypatch.setattr("repro.core.parallel.spawn", forbidden)
        evaluator = ParallelEvaluator(objective, n_workers=1)
        configs = sample_configs(objective.space, 3)
        trials = evaluator.run_batch([EvalRequest(c, 80.0) for c in configs])
        assert len(trials) == 3


class TestParallelDeterminism:
    def test_history_is_append_ordered_and_reproducible(self, x86, join_app):
        def run(n_workers):
            objective = SparkSQLObjective(SparkSQLSimulator(x86), join_app, rng=13)
            evaluator = ParallelEvaluator(objective, n_workers=n_workers)
            configs = sample_configs(objective.space, 6, seed=5)
            trials = evaluator.run_batch([EvalRequest(c, 120.0) for c in configs])
            # run_batch returns (and records) in request order.
            assert [t.config for t in objective.history] == configs
            assert objective.history == trials
            return [t.duration_s for t in trials]

        assert run(4) == run(4)  # same seed => same history
        assert run(2) == run(4)  # worker count changes wall-clock only

    def test_process_backend_matches_thread_backend(self, x86, join_app):
        """Same seed, same requests: the process pool must produce the
        identical history (the per-request child RNGs fully determine
        each evaluation, regardless of where it executes)."""
        def run(backend):
            objective = SparkSQLObjective(SparkSQLSimulator(x86), join_app, rng=17)
            configs = sample_configs(objective.space, 4, seed=9)
            with ParallelEvaluator(objective, n_workers=2, backend=backend) as evaluator:
                trials = evaluator.run_batch([EvalRequest(c, 90.0) for c in configs])
            assert [t.config for t in objective.history] == configs
            return [t.duration_s for t in trials]

        assert run("process") == run("thread")

    def test_overhead_matches_sum_of_durations(self, objective):
        evaluator = ParallelEvaluator(objective, n_workers=3)
        configs = sample_configs(objective.space, 5)
        trials = evaluator.run_batch([EvalRequest(c, 60.0) for c in configs])
        assert objective.overhead_s == pytest.approx(sum(t.duration_s for t in trials))

    def test_failed_batch_records_nothing(self, objective, monkeypatch):
        configs = sample_configs(objective.space, 4)

        real_execute = _execute_request
        calls = {"n": 0}

        def flaky(simulator, app, request, rng):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("simulated evaluation failure")
            return real_execute(simulator, app, request, rng)

        monkeypatch.setattr("repro.core.parallel._execute_request", flaky)
        evaluator = ParallelEvaluator(objective, n_workers=2)
        with pytest.raises(RuntimeError, match="simulated evaluation failure"):
            evaluator.run_batch([EvalRequest(c, 60.0) for c in configs])
        assert objective.history == []
        assert objective.overhead_s == 0.0

    def test_validation(self, objective):
        with pytest.raises(ValueError):
            ParallelEvaluator(objective, n_workers=0)
        with pytest.raises(ValueError):
            ParallelEvaluator(objective, backend="carrier-pigeon")


def quiet_locat(x86, app, n_workers, seed=5):
    simulator = SparkSQLSimulator(x86, noise=0.0)
    return LOCAT(
        simulator, app, n_qcsa=10, n_iicp=8, max_iterations=6, min_iterations=3,
        n_mcmc=0, rng=seed, n_workers=n_workers,
    )


class TestLocatParallel:
    def test_serial_session_avoids_batch_machinery(self, x86, join_app, monkeypatch):
        """A n_workers=1 session must stay on the pre-pipeline serial path."""
        locat = quiet_locat(x86, join_app, n_workers=1)

        def forbidden(*args, **kwargs):
            raise AssertionError("n_workers=1 must never use concurrent batches")

        monkeypatch.setattr("repro.core.parallel.spawn", forbidden)
        result = locat.tune(150.0)
        assert result.evaluations >= locat.n_qcsa

    def test_seeded_serial_history_reproducible(self, x86, join_app):
        a = quiet_locat(x86, join_app, n_workers=1).tune(150.0)
        b = quiet_locat(x86, join_app, n_workers=1).tune(150.0)
        assert a.best_config == b.best_config
        assert a.best_duration_s == b.best_duration_s
        assert a.evaluations == b.evaluations

    def test_parallel_bootstrap_runs_same_lhs_design(self, x86, join_app):
        """Serial and 4-worker bootstraps evaluate the identical LHS batch."""
        serial = quiet_locat(x86, join_app, n_workers=1)
        parallel = quiet_locat(x86, join_app, n_workers=4)
        serial.bootstrap(150.0)
        parallel.bootstrap(150.0)
        # The 6-point initial design is proposed before any evaluation, so
        # both sessions run the same configurations; with a noise-free
        # simulator the durations agree exactly as well.
        n_lhs = 6
        serial_lhs = [(t.config, t.duration_s) for t in serial.objective.history[:n_lhs]]
        parallel_lhs = [(t.config, t.duration_s) for t in parallel.objective.history[:n_lhs]]
        assert serial_lhs == parallel_lhs

    def test_parallel_session_reproducible_and_valid(self, x86, join_app):
        a = quiet_locat(x86, join_app, n_workers=4).tune(150.0)
        b = quiet_locat(x86, join_app, n_workers=4).tune(150.0)
        assert a.best_config == b.best_config
        assert a.best_duration_s == b.best_duration_s
        assert SparkSQLSimulator(x86).space.is_valid(a.best_config)

    def test_parallel_beats_default_config(self, x86, join_app):
        locat = quiet_locat(x86, join_app, n_workers=4)
        result = locat.tune(200.0)
        simulator = SparkSQLSimulator(x86, noise=0.0)
        default_time = simulator.run(
            join_app, simulator.space.default(), 200.0, rng=1
        ).duration_s
        assert result.best_duration_s < default_time
