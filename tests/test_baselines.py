"""Tests for the baseline tuners (shrunk budgets)."""

import pytest

from repro.baselines import DAC, GBORL, QTune, RandomSearch, Tuneful


def tune_small(cls, simulator, app, ds=200.0, **kwargs):
    small = {
        Tuneful: dict(oat_levels=2, n_significant=5, bo_iterations=6),
        DAC: dict(n_training=15, n_validation=2, ga_generations=5, ga_population=12),
        GBORL: dict(bo_iterations=8, rl_episodes=4),
        QTune: dict(n_episodes=12, batch_size=4),
        RandomSearch: dict(n_samples=10),
    }[cls]
    small.update(kwargs)
    return cls(simulator, app, rng=3, **small).tune(ds)


ALL = [Tuneful, DAC, GBORL, QTune, RandomSearch]


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL)
    def test_returns_valid_result(self, cls, sim_x86, join_app):
        result = tune_small(cls, sim_x86, join_app)
        assert result.tuner == cls.NAME
        assert result.best_duration_s > 0
        assert result.overhead_s > 0
        assert result.evaluations > 0
        assert sim_x86.space.is_valid(result.best_config)

    @pytest.mark.parametrize("cls", ALL)
    def test_beats_default(self, cls, sim_x86, join_app):
        result = tune_small(cls, sim_x86, join_app, ds=300.0)
        default_time = sim_x86.run(join_app, sim_x86.space.default(), 300.0, rng=1).duration_s
        assert result.best_duration_s < default_time

    def test_overhead_equals_sum_of_runs(self, sim_x86, join_app):
        tuner = RandomSearch(sim_x86, join_app, rng=0, n_samples=5)
        result = tuner.tune(100.0)
        assert result.overhead_s == pytest.approx(
            sum(t.duration_s for t in tuner.objective.history)
        )


class TestGraftingHooks:
    def test_rqa_hook_runs_subset(self, sim_x86, tpch):
        result = tune_small(RandomSearch, sim_x86, tpch, rqa_queries=["Q01", "Q09"])
        reduced = [t for t in RandomSearch(sim_x86, tpch).objective.history]
        assert result.best_duration_s > 0  # validated on the full app

    def test_rqa_hook_cuts_overhead(self, x86, tpch):
        from repro.sparksim import SparkSQLSimulator

        full = tune_small(RandomSearch, SparkSQLSimulator(x86), tpch)
        rqa = tune_small(
            RandomSearch, SparkSQLSimulator(x86), tpch, rqa_queries=["Q01", "Q02"]
        )
        assert rqa.overhead_s < full.overhead_s

    def test_subspace_hook_freezes_other_params(self, sim_x86, join_app):
        subspace = ["sql.shuffle.partitions", "executor.memory"]
        tuner = RandomSearch(sim_x86, join_app, rng=1, n_samples=5, subspace=subspace)
        result = tuner.tune(100.0)
        defaults = sim_x86.space.default()
        # Every evaluated config keeps non-subspace params at defaults.
        for trial in tuner.objective.history[:-1]:  # last is validation
            assert trial.config["locality.wait"] == defaults["locality.wait"]

    def test_subspace_dim(self, sim_x86, join_app):
        tuner = RandomSearch(sim_x86, join_app, subspace=["executor.memory"])
        assert tuner.search_dim == 1
        assert tuner.sample_point().shape == (1,)


class TestTunefulSpecifics:
    def test_significance_analysis_finds_big_params(self, sim_x86, join_app):
        tuner = Tuneful(sim_x86, join_app, rng=2, oat_levels=3, n_significant=8)
        significant = tuner._significance_analysis(300.0)
        assert len(significant) == 8
        assert {"sql.shuffle.partitions", "executor.memory"} & set(significant)

    def test_oat_cost_scales_with_parameters(self, sim_x86, join_app):
        # The paper's critique: OAT runs grow linearly with dimension.
        tuner = Tuneful(sim_x86, join_app, rng=2, oat_levels=2, n_significant=3)
        tuner._significance_analysis(100.0)
        assert tuner.objective.n_evaluations == 2 * 38


class TestDACSpecifics:
    def test_ga_candidates_within_cube(self, sim_x86, join_app):
        import numpy as np

        from repro.ml.gbrt import GradientBoostedRegressionTrees

        tuner = DAC(sim_x86, join_app, rng=4, n_training=12, ga_generations=3, ga_population=8,
                    n_validation=2)
        model = GradientBoostedRegressionTrees(n_estimators=5, rng=0)
        rng = np.random.default_rng(0)
        model.fit(rng.random((12, tuner.search_dim)), rng.random(12))
        candidates = tuner._genetic_search(model)
        assert candidates.shape == (2, tuner.search_dim)
        assert candidates.min() >= 0 and candidates.max() <= 1


class TestGBORLSpecifics:
    def test_memory_seeds_are_valid_points(self, sim_x86, join_app):
        tuner = GBORL(sim_x86, join_app)
        for seed in tuner._memory_model_seeds():
            assert seed.shape == (38,)
            assert seed.min() >= 0 and seed.max() <= 1


class TestQTuneSpecifics:
    def test_featurization(self, tpcds):
        from repro.baselines.qtune import featurize_application

        features = featurize_application(tpcds, 512.0)
        assert features.shape == (6,)
        assert features[0] + features[1] + features[2] == pytest.approx(1.0)
        assert features[5] == pytest.approx(0.5)
