"""Tests for the experiment harness and reporting."""

import numpy as np
import pytest

from repro.harness.experiment import (
    collect_cv_samples,
    collect_iicp_samples,
    compare_tuners,
    make_simulator,
)
from repro.harness.report import format_comparison, format_series, format_table


class TestReport:
    def test_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_series_layout(self):
        out = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        assert "s1" in out and "s2" in out
        assert len(out.splitlines()) == 4

    def test_number_formatting(self):
        out = format_table(["v"], [[123456.7]])
        assert "123,457" in out

    def test_comparison_table(self):
        out = format_comparison("x", {"a": 1.0}, {"a": 1.1, "b": 2.0})
        assert "paper x" in out and "measured x" in out


class TestExperimentRunners:
    def test_make_simulator_clusters(self):
        assert make_simulator("arm").cluster.name == "arm"
        assert make_simulator("x86").cluster.name == "x86"

    def test_collect_cv_samples_shape(self):
        samples = collect_cv_samples("join", "x86", 100.0, n_samples=3, rng=0)
        assert set(samples) == {"join"}
        assert len(samples["join"]) == 3

    def test_collect_iicp_samples(self):
        configs, durations, simulator = collect_iicp_samples(
            "scan", "x86", 100.0, n_samples=4, rng=0
        )
        assert len(configs) == 4
        assert durations.shape == (4,)
        assert all(simulator.space.is_valid(c) for c in configs)

    def test_compare_tuners_smoke(self):
        from repro.baselines import RandomSearch

        comparison = compare_tuners(
            benchmark="scan",
            cluster="x86",
            datasize_gb=100.0,
            seed=1,
            locat_iterations=4,
            baselines=(RandomSearch,),
        )
        assert "LOCAT" in comparison.results
        assert "RandomSearch" in comparison.results
        assert comparison.overhead_ratio("RandomSearch") > 0
        assert comparison.speedup("RandomSearch") > 0
