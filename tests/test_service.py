"""Tests for the tuning service: store, scheduler, registry, HTTP API."""

import threading
import time

import pytest

from timing_helpers import wait_until
from repro.core.iicp import CPSResult
from repro.core.qcsa import QCSAResult
from repro.service import (
    HistoryStore,
    JobScheduler,
    ObservationRecord,
    QuarantinedApplicationError,
    ServiceError,
    TuningClient,
    TuningRegistry,
    TuningService,
)
from repro.service.store import SOURCE_PRODUCTION, SOURCE_TUNING
from repro.sparksim.serialize import (
    config_from_dict,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)

#: Small LOCAT settings so tuning sessions stay cheap in tests.
TINY_TUNER = {"n_qcsa": 10, "n_iicp": 8, "max_iterations": 6, "min_iterations": 3, "n_mcmc": 0}


class TestSerialization:
    def test_config_round_trip(self, space_x86, rng):
        config = space_x86.sample(rng)
        data = config_to_dict(config)
        assert config_from_dict(data) == config

    def test_config_rejects_unknown_parameter(self, space_x86):
        data = config_to_dict(space_x86.default())
        data["not.a.param"] = 1
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_config_rejects_missing_parameter(self, space_x86):
        data = config_to_dict(space_x86.default())
        del data["executor.memory"]
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_metrics_round_trip(self, sim_x86, scan_app):
        metrics = sim_x86.run(scan_app, sim_x86.space.default(), 100.0, rng=3)
        rebuilt = metrics_from_dict(metrics_to_dict(metrics))
        assert rebuilt == metrics


class TestHistoryStore:
    def test_register_and_meta(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {"benchmark": "join", "cluster": "x86"})
        assert store.list_apps() == ["app-1"]
        assert store.has_app("app-1")
        assert store.app_meta("app-1")["benchmark"] == "join"

    def test_duplicate_registration_rejected(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        with pytest.raises(ValueError):
            store.register_app("app-1", {})

    def test_bad_app_id_rejected(self, tmp_path):
        store = HistoryStore(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden", "x" * 65):
            with pytest.raises(ValueError):
                store.register_app(bad, {})

    def test_unknown_app_meta_raises(self, tmp_path):
        with pytest.raises(KeyError):
            HistoryStore(tmp_path).app_meta("ghost")

    def test_run_table_round_trip(self, tmp_path, space_x86):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        store.append_many("app-1", [
            ObservationRecord(config, 100.0, 42.0, SOURCE_TUNING),
            ObservationRecord(config, 100.0, 55.0, SOURCE_PRODUCTION, reduced=False),
        ])
        store.append("app-1", ObservationRecord(config, 120.0, 47.5, SOURCE_TUNING))
        rows = store.observations("app-1")
        assert [r.duration_s for r in rows] == [42.0, 55.0, 47.5]
        assert [r.datasize_gb for r in rows] == [100.0, 100.0, 120.0]
        assert config_from_dict(rows[0].config) == space_x86.default()
        assert [r.duration_s for r in store.observations("app-1", source=SOURCE_TUNING)] == [42.0, 47.5]

    def test_datasize_identity_survives_json_round_trip(self, tmp_path, space_x86):
        """100 (int), 100.0 (float), and "100" (string) are one history
        key, before and after the store's JSON round trip."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        store.append_many("app-1", [
            ObservationRecord(config, 100, 42.0, SOURCE_TUNING),
            ObservationRecord(config, 100.0, 43.0, SOURCE_TUNING),
            ObservationRecord(config, "100", 44.0, SOURCE_TUNING),
        ])
        rows = store.observations("app-1")
        sizes = {r.datasize_gb for r in rows}
        assert sizes == {100.0}
        assert all(isinstance(r.datasize_gb, float) for r in rows)
        # Written records equal re-read records (identity, not just ==).
        assert rows == [
            ObservationRecord(config, 100.0, 42.0, SOURCE_TUNING),
            ObservationRecord(config, 100.0, 43.0, SOURCE_TUNING),
            ObservationRecord(config, 100.0, 44.0, SOURCE_TUNING),
        ]

    def test_bad_source_rejected(self, space_x86):
        with pytest.raises(ValueError):
            ObservationRecord(config_to_dict(space_x86.default()), 1.0, 1.0, "guess")

    def test_torn_trailing_line_dropped(self, tmp_path, space_x86):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        store.append("app-1", ObservationRecord(config_to_dict(space_x86.default()), 1.0, 2.0, SOURCE_TUNING))
        with open(tmp_path / "app-1" / "runs.jsonl", "a") as handle:
            handle.write('{"config": {"trunca')  # killed mid-append
        rows = store.observations("app-1")
        assert len(rows) == 1 and rows[0].duration_s == 2.0

    def test_interior_corruption_raises_instead_of_truncating(self, tmp_path, space_x86):
        """A corrupt line mid-file is disk damage, not a torn append: it
        must raise, not silently hand back a fraction of the history."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        store.append_many("app-1", [
            ObservationRecord(config, 1.0, 2.0, SOURCE_TUNING),
            ObservationRecord(config, 1.0, 3.0, SOURCE_TUNING),
        ])
        path = tmp_path / "app-1" / "runs.jsonl"
        lines = path.read_text().splitlines()
        lines.insert(1, "GARBAGE NOT JSON")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            store.observations("app-1")

    def test_newline_terminated_garbage_raises_even_at_eof(self, tmp_path, space_x86):
        """A torn append can only lose a *suffix* of the write, so a
        complete (newline-terminated) but invalid line is disk damage
        wherever it sits — including at the end of the file."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        store.append("app-1", ObservationRecord(config_to_dict(space_x86.default()), 1.0, 2.0, SOURCE_TUNING))
        with open(tmp_path / "app-1" / "runs.jsonl", "a") as handle:
            handle.write('{"damaged": true}\n')
        with pytest.raises(ValueError, match="corrupt run table"):
            store.observations("app-1")

    def test_append_after_torn_tail_repairs_instead_of_corrupting(self, tmp_path, space_x86):
        """Appending after a crash's torn trailing line must not weld the
        new record onto the torn bytes — that would silently lose the
        record and turn the crash artifact into interior corruption that
        blocks every later replay (and service rehydration)."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        store.append("app-1", ObservationRecord(config, 1.0, 2.0, SOURCE_TUNING))
        with open(tmp_path / "app-1" / "runs.jsonl", "a") as handle:
            handle.write('{"config": {"trunca')  # killed mid-append, no newline
        store.append("app-1", ObservationRecord(config, 1.0, 3.0, SOURCE_TUNING))
        store.append("app-1", ObservationRecord(config, 1.0, 4.0, SOURCE_TUNING))
        rows = store.observations("app-1")  # must not raise
        assert [r.duration_s for r in rows] == [2.0, 3.0, 4.0]

    def test_newlineless_final_record_is_not_durable(self, tmp_path, space_x86):
        """A final line whose newline never hit the disk is not durable,
        even when the JSON payload happens to be complete: replay must
        not count a record the next append will truncate away."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        store.append("app-1", ObservationRecord(config, 1.0, 2.0, SOURCE_TUNING))
        record = ObservationRecord(config, 1.0, 9.0, SOURCE_TUNING)
        import json as _json
        with open(tmp_path / "app-1" / "runs.jsonl", "a") as handle:
            handle.write(_json.dumps(record.to_json()))  # crash before the \n
        assert [r.duration_s for r in store.observations("app-1")] == [2.0]
        # The append path truncates the same tail: replay and disk agree.
        store.append("app-1", ObservationRecord(config, 1.0, 3.0, SOURCE_TUNING))
        assert [r.duration_s for r in store.observations("app-1")] == [2.0, 3.0]

    def test_append_stamps_default_timestamps(self, tmp_path, space_x86):
        """Records left at the 0.0 default are stamped at append time, so
        run tables stay orderable across restarts; explicit timestamps
        are preserved."""
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        config = config_to_dict(space_x86.default())
        before = time.time()
        store.append_many("app-1", [
            ObservationRecord(config, 1.0, 2.0, SOURCE_TUNING),
            ObservationRecord(config, 1.0, 3.0, SOURCE_TUNING, timestamp=123.5),
        ])
        rows = store.observations("app-1")
        assert rows[0].timestamp >= before
        assert rows[1].timestamp == 123.5

    def test_artifacts_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        assert store.load_artifacts("app-1") == (None, None)
        qcsa = QCSAResult(cvs={"q1": 0.5, "q2": 0.1}, csq=("q1",), ciq=("q2",), threshold=0.23, n_samples=10)
        cps = CPSResult(scc={"executor.memory": 0.8, "locality.wait": 0.05}, selected=("executor.memory",), threshold=0.2)
        store.save_artifacts("app-1", qcsa, cps)
        assert store.has_artifacts("app-1")
        loaded_qcsa, loaded_cps = store.load_artifacts("app-1")
        assert loaded_qcsa == qcsa
        assert loaded_cps == cps

    def test_deployment_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.register_app("app-1", {})
        assert store.load_deployment("app-1") is None
        state = {"config": {"a": 1}, "tuned_datasizes": [100.0], "recent_ratios": [1.1]}
        store.save_deployment("app-1", state)
        assert store.load_deployment("app-1") == state


class TestJobScheduler:
    def test_per_app_fifo_cross_app_concurrency(self):
        scheduler = JobScheduler(n_workers=4)
        lock = threading.Lock()
        finished: list[tuple[str, int]] = []
        running: set[str] = set()
        peak_overlap = [0]

        def make(app, index):
            def fn():
                with lock:
                    running.add(app)
                    peak_overlap[0] = max(peak_overlap[0], len(running))
                time.sleep(0.05)
                with lock:
                    running.discard(app)
                    finished.append((app, index))
            return fn

        jobs = []
        for index in range(3):
            jobs.append(scheduler.submit("a", make("a", index)))
            jobs.append(scheduler.submit("b", make("b", index)))
        for job in jobs:
            scheduler.wait(job.job_id, timeout=10.0)
        assert [i for app, i in finished if app == "a"] == [0, 1, 2]
        assert [i for app, i in finished if app == "b"] == [0, 1, 2]
        assert peak_overlap[0] == 2  # the two tenants really ran concurrently
        scheduler.shutdown()

    def test_failure_captured_and_app_unblocked(self):
        scheduler = JobScheduler(n_workers=2)

        def boom():
            raise ValueError("deliberate failure")

        failed = scheduler.submit("a", boom)
        after = scheduler.submit("a", lambda: "recovered")
        scheduler.wait(failed.job_id, timeout=10.0)
        scheduler.wait(after.job_id, timeout=10.0)
        assert failed.status == "failed"
        assert "deliberate failure" in failed.error
        assert after.status == "done" and after.result == "recovered"
        scheduler.shutdown()

    def test_slots_bound_concurrent_evaluation_footprint(self):
        scheduler = JobScheduler(n_workers=4, total_slots=4)
        lock = threading.Lock()
        running: set[str] = set()
        overlapped = [False]
        release = threading.Event()

        def make(app):
            def fn():
                with lock:
                    running.add(app)
                    overlapped[0] = overlapped[0] or len(running) > 1
                release.wait(5.0)
                with lock:
                    running.discard(app)
            return fn

        # Two 3-slot jobs (tenants tuning with n_workers=3) exceed the
        # 4-slot budget together, so they must run one after the other.
        first = scheduler.submit("a", make("a"), slots=3)
        second = scheduler.submit("b", make("b"), slots=3)
        wait_until(lambda: first.status == "running")
        assert second.status == "queued"
        release.set()
        scheduler.wait(first.job_id, timeout=10.0)
        scheduler.wait(second.job_id, timeout=10.0)
        assert not overlapped[0]
        scheduler.shutdown()

    def test_small_jobs_cannot_starve_a_waiting_heavy_job(self):
        """Admission is oldest-first with reservation: a 1-slot job
        submitted after a non-fitting 3-slot job must wait behind it."""
        scheduler = JobScheduler(n_workers=4, total_slots=4)
        release = threading.Event()

        heavy_running = scheduler.submit("a", lambda: release.wait(5.0), slots=3)
        wait_until(lambda: heavy_running.status == "running")
        heavy_waiting = scheduler.submit("b", lambda: "b", slots=3)
        light = scheduler.submit("c", lambda: "c", slots=1)
        # 3+1 <= 4 would fit, but the older 3-slot job reserves the
        # budget.  The small settle window is the chance for a *broken*
        # scheduler to wrongly admit the light job; the positive
        # conditions above are deadline-polled, so only a genuine
        # starvation bug can move these asserts.
        time.sleep(0.05)
        assert heavy_running.status == "running"
        assert heavy_waiting.status == "queued"
        assert light.status == "queued"
        release.set()
        for job in (heavy_running, heavy_waiting, light):
            scheduler.wait(job.job_id, timeout=10.0)
        scheduler.shutdown()

    def test_oversized_job_runs_alone_instead_of_deadlocking(self):
        scheduler = JobScheduler(n_workers=2, total_slots=2)
        job = scheduler.submit("a", lambda: "done", slots=16)
        scheduler.wait(job.job_id, timeout=10.0)
        assert job.result == "done"
        assert job.to_json()["slots"] == 16
        scheduler.shutdown()

    def test_invalid_slots_rejected(self):
        scheduler = JobScheduler(n_workers=1)
        with pytest.raises(ValueError):
            scheduler.submit("a", lambda: None, slots=0)
        scheduler.shutdown()

    def test_wait_timeout(self):
        scheduler = JobScheduler(n_workers=1)
        job = scheduler.submit("a", lambda: time.sleep(0.5))
        with pytest.raises(TimeoutError):
            scheduler.wait(job.job_id, timeout=0.01)
        scheduler.wait(job.job_id, timeout=10.0)
        scheduler.shutdown()

    def test_shutdown_fails_queued_jobs(self):
        scheduler = JobScheduler(n_workers=1)
        started = threading.Event()

        def slow():
            started.set()
            time.sleep(0.2)

        running = scheduler.submit("a", slow)
        queued = scheduler.submit("a", lambda: "never runs")
        assert started.wait(5.0)  # ensure the first job is actually running
        scheduler.shutdown(wait=True)
        assert running.status == "done"
        assert queued.status == "failed"
        assert "shut down" in queued.error
        with pytest.raises(RuntimeError):
            scheduler.submit("a", lambda: None)

    def test_unknown_job_raises(self):
        scheduler = JobScheduler(n_workers=1)
        with pytest.raises(KeyError):
            scheduler.get("job-999999")
        scheduler.shutdown()

    def test_job_json_snapshots_are_never_torn(self):
        """to_json snapshots under the scheduler lock: a reader hammering
        a completing job must never observe a half-written transition
        (terminal status with the completion fields still unset)."""
        scheduler = JobScheduler(n_workers=2)
        stop = threading.Event()
        torn: list[dict] = []

        def hammer(job):
            while not stop.is_set():
                view = job.to_json()
                if view["status"] in ("done", "failed"):
                    if view["finished_at"] is None or view["started_at"] is None:
                        torn.append(view)
                    return

        for _ in range(25):
            job = scheduler.submit("a", lambda: sum(range(1000)))
            reader = threading.Thread(target=hammer, args=(job,))
            reader.start()
            scheduler.wait(job.job_id, timeout=10.0)
            reader.join(timeout=10.0)
        stop.set()
        assert torn == []
        scheduler.shutdown()

    def test_finished_jobs_evicted_beyond_cap(self):
        scheduler = JobScheduler(n_workers=1, max_finished=3)
        jobs = [scheduler.submit("a", lambda: "done") for _ in range(5)]
        for job in jobs:
            assert job.wait(timeout=10.0)
        assert jobs[-1].fn is None  # the closure is released on completion
        with pytest.raises(KeyError):
            scheduler.get(jobs[0].job_id)  # oldest finished jobs evicted
        assert scheduler.get(jobs[-1].job_id).status == "done"
        assert len(scheduler.jobs("a")) == 3
        scheduler.shutdown()


class TestTuningRegistry:
    def test_register_validates_inputs(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        with pytest.raises(ValueError):
            registry.register("app", benchmark="ycsb")
        with pytest.raises(ValueError):
            registry.register("app", benchmark="join", tuner={"not_a_knob": 1})
        with pytest.raises(ValueError):
            registry.register("app", benchmark="join", controller={"bogus": 1})
        registry.register("app", benchmark="join", tuner=TINY_TUNER)
        with pytest.raises(ValueError):
            registry.register("app", benchmark="join")

    def test_eval_workers_wiring(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store, default_eval_workers=2)
        defaulted = registry.register("app-default", "scan", seed=1)
        overridden = registry.register(
            "app-override", "scan", seed=1, tuner={"n_workers": 4}
        )
        assert defaulted.locat.n_workers == 2
        assert overridden.locat.n_workers == 4
        assert defaulted.status()["eval_workers"] == 2
        assert overridden.status()["eval_workers"] == 4
        # n_workers is a persisted tuner key: a rehydrated registry with a
        # different service default keeps the tenant's explicit choice.
        rehydrated = TuningRegistry(HistoryStore(tmp_path / "store"))
        assert rehydrated.get("app-override").locat.n_workers == 4

    def test_tenant_n_workers_clamped_and_validated(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store, max_eval_workers=4)
        greedy = registry.register("greedy", "scan", tuner={"n_workers": 64})
        assert greedy.locat.n_workers == 4  # clamped to the operator ceiling
        for bad in (0, -1, 2.5, True, "many"):
            with pytest.raises(ValueError, match="n_workers"):
                registry.register(f"bad-{bad}", "scan", tuner={"n_workers": bad})
        # A rejected registration must not leave a half-registered app.
        assert "bad-0" not in registry
        assert not store.has_app("bad-0")

    def test_surrogate_mode_is_a_tenant_setting(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        session = registry.register(
            "app", "scan", seed=1, tuner={**TINY_TUNER, "surrogate_mode": "incremental"}
        )
        assert session.locat.surrogate_mode == "incremental"
        # The mode is persisted and survives rehydration.
        rehydrated = TuningRegistry(HistoryStore(tmp_path / "store"))
        assert rehydrated.get("app").locat.surrogate_mode == "incremental"

    def test_invalid_surrogate_mode_rejected_before_persisting(self, tmp_path):
        """Value (not just key) validation must run before the store write:
        a rejected registration that left its meta behind would crash
        every later rehydration of the whole service."""
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        with pytest.raises(ValueError, match="surrogate_mode"):
            registry.register("bad", "scan", tuner={"surrogate_mode": "turbo"})
        assert "bad" not in registry
        assert not store.has_app("bad")
        # The store stays rehydratable.
        TuningRegistry(HistoryStore(tmp_path / "store"))

    def test_planned_slots_reserve_parallelism_only_for_tuning(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path / "store"))
        session = registry.register(
            "app", "scan", seed=1,
            tuner={**TINY_TUNER, "n_workers": 4},
        )
        # Before the first deployment every observe pays a tuning session.
        assert session.planned_slots(100.0) == 4
        registry.observe("app", 100.0)
        # Steady state: a nearby datasize records a run, no evaluations.
        assert session.planned_slots(100.0) == 1
        assert session.planned_slots(110) == 1  # int within margin, same key
        # Beyond the controller margin the observe deterministically retunes.
        assert session.planned_slots(1000.0) == 4

    def test_observe_persists_run_table_and_artifacts(self, tmp_path):
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(store)
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        decision = registry.observe("app", 100.0)
        assert decision.retuned
        assert store.has_artifacts("app")
        tuning_rows = store.observations("app", source=SOURCE_TUNING)
        session = registry.get("app")
        assert len(tuning_rows) == len(session.locat.observation_history)
        # A measured production run lands in the table too.
        registry.observe("app", 100.0, duration_s=123.0)
        production = store.observations("app", source=SOURCE_PRODUCTION)
        assert len(production) == 1
        assert production[0].duration_s == 123.0
        assert not production[0].reduced

    def test_production_rows_name_the_config_that_actually_ran(self, tmp_path):
        """A drift retune swaps the deployment; the measured duration must
        stay attributed to the configuration it was measured under."""
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(store)
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER,
                          controller={"drift_patience": 2, "detector": "ratio"})
        first = registry.observe("app", 100.0)
        old_config = first.config
        slow = first.result.best_duration_s * 3.0
        registry.observe("app", 100.0, duration_s=slow)
        retuned = registry.observe("app", 100.0, duration_s=slow)
        assert retuned.retuned
        rows = store.observations("app", source=SOURCE_PRODUCTION)
        assert len(rows) == 2
        assert all(config_from_dict(r.config) == old_config for r in rows)

    def test_duration_before_first_deployment_not_recorded(self, tmp_path):
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(store)
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0, duration_s=500.0)  # nothing deployed yet
        assert store.observations("app", source=SOURCE_PRODUCTION) == []

    def test_restart_resumes_without_bootstrap(self, tmp_path):
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER,
                          controller={"drift_patience": 2})
        first = registry.observe("app", 100.0)
        evaluations_paid = registry.get("app").locat.objective.n_evaluations
        assert evaluations_paid > 0

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        session = rehydrated.get("app")
        assert session.restored
        assert session.locat.is_bootstrapped
        assert session.locat.objective.n_evaluations == 0  # bootstrap skipped
        assert session.controller.deployed_config == first.config
        assert session.controller.tuned_datasizes == [100.0]

        decision = rehydrated.observe("app", 105.0)
        assert not decision.retuned
        assert decision.config == first.config
        assert session.locat.objective.n_evaluations == 0  # reuse was free

    def test_restart_preserves_drift_window(self, tmp_path):
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER,
                          controller={"drift_patience": 2, "detector": "ratio"})
        first = registry.observe("app", 100.0)
        slow = first.result.best_duration_s * 3.0
        registry.observe("app", 100.0, duration_s=slow)  # half the patience window

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        assert len(rehydrated.get("app").controller.recent_ratios) == 1
        decision = rehydrated.observe("app", 100.0, duration_s=slow)
        assert decision.retuned  # the restored half-window completed the pattern
        assert "consecutive" in decision.reason

    def test_unknown_app_raises(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        with pytest.raises(KeyError):
            registry.observe("ghost", 100.0)


class TestDriftDetectionService:
    """The drift-aware controller through the service stack."""

    def test_detector_is_a_validated_controller_setting(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        with pytest.raises(ValueError, match="detector"):
            registry.register("bad", "scan", controller={"detector": "oracle"})
        assert "bad" not in registry and not store.has_app("bad")
        with pytest.raises(ValueError, match="partial_retunes"):
            registry.register("bad2", "scan", controller={"partial_retunes": "yes"})
        session = registry.register(
            "app", "scan", tuner=TINY_TUNER, controller={"detector": "cusum"}
        )
        assert session.controller.detector_name == "cusum"
        # Persisted: a rehydrated registry keeps the tenant's choice even
        # under a different service default.
        rehydrated = TuningRegistry(HistoryStore(tmp_path / "store"),
                                    default_detector="ratio")
        assert rehydrated.get("app").controller.detector_name == "cusum"

    def test_default_detector_applies_to_unset_tenants(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path), default_detector="ratio")
        session = registry.register("app", "scan", tuner=TINY_TUNER)
        assert session.controller.detector_name == "ratio"

    def test_status_exposes_drift_diagnostics(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path))
        session = registry.register("app", "join", seed=7, tuner=TINY_TUNER)
        status = session.status()
        assert status["drift"]["detector"] == "ph"
        assert not status["drift"]["calibrated"]
        registry.observe("app", 100.0)
        assert session.status()["drift"]["calibrated"]

    def test_detector_state_survives_restart(self, tmp_path):
        """Satellite regression: drift detection must not go silently
        dead across a service restart — the calibration, the detector
        window, and the config identity all round-trip."""
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        first = registry.observe("app", 100.0)
        baseline = first.result.best_duration_s
        controller = registry.get("app").controller
        assert controller.log_offset is not None
        registry.observe("app", 100.0, duration_s=baseline * 1.2)  # partial evidence
        partial_state = controller.detector_state()
        assert partial_state["n"] == 1

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        restored = rehydrated.get("app").controller
        assert restored.log_offset == pytest.approx(controller.log_offset)
        assert restored.detector_state() == partial_state
        # The restored detector keeps accumulating from where it left
        # off and the drift path still fires — no silent death.
        retuned = False
        for _ in range(12):
            decision = rehydrated.observe("app", 100.0, duration_s=baseline * 2.0)
            if decision.retuned:
                retuned = True
                break
        assert retuned
        assert decision.trigger == "drift"
        assert decision.result.details["partial"] is True

    def test_drift_quarantine_boundary_survives_restart(self, tmp_path):
        """The stale-history boundary set by a drift retune must restore
        with the calibration that was anchored against it — otherwise a
        restarted post-drift tenant blends pre-drift rows back in at
        full weight and spuriously re-alarms."""
        store_dir = tmp_path / "store"
        store = HistoryStore(store_dir)
        registry = TuningRegistry(store)
        registry.register("app", "join", seed=7, tuner=TINY_TUNER)
        first = registry.observe("app", 100.0)
        baseline = first.result.best_duration_s
        retuned = False
        for _ in range(6):
            if registry.observe("app", 100.0, duration_s=baseline * 2.5).retuned:
                retuned = True
                break
        assert retuned
        boundary = registry.get("app").locat.stale_before
        assert boundary > 0
        assert store.load_deployment("app")["stale_tuning_rows"] == boundary

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        assert rehydrated.get("app").locat.stale_before == boundary

    def test_deployed_json_carries_detector_fields(self, tmp_path):
        store = HistoryStore(tmp_path / "store")
        registry = TuningRegistry(store)
        registry.register("app", "join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        deployment = store.load_deployment("app")
        assert deployment["detector"] == "ph"
        assert "detector_state" in deployment
        assert deployment["log_offset"] is not None

    def test_detector_mode_change_discards_foreign_state(self, tmp_path):
        """deployed.json written under one detector must not be misread
        by another: after a service-default change, the new detector
        starts a fresh window instead of inheriting ph accumulators."""
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))  # default ph
        registry.register("app", "join", seed=7, tuner=TINY_TUNER)
        first = registry.observe("app", 100.0)
        base = first.result.best_duration_s
        registry.observe("app", 100.0, duration_s=base * 1.2)
        assert registry.get("app").controller.detector_state()["n"] == 1

        switched = TuningRegistry(HistoryStore(store_dir), default_detector="cusum")
        controller = switched.get("app").controller
        assert controller.detector_name == "cusum"
        assert controller.detector_state() == {"n": 0, "total": 0.0, "score": 0.0}
        # The calibration offset is detector-independent and survives.
        assert controller.log_offset is not None

    def test_corrupt_tenant_is_quarantined_not_fatal(self, tmp_path):
        """One tenant's damaged run table must not keep the whole
        multi-tenant service from starting: the tenant is quarantined
        with the descriptive error, the others rehydrate normally."""
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("good", "join", seed=7, tuner=TINY_TUNER)
        registry.register("bad", "scan", seed=7, tuner=TINY_TUNER)
        registry.observe("good", 100.0)
        registry.observe("bad", 100.0)
        path = store_dir / "bad" / "runs.jsonl"
        lines = path.read_text().splitlines()
        lines.insert(1, "GARBAGE NOT JSON")
        path.write_text("\n".join(lines) + "\n")

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        assert rehydrated.get("good").restored
        assert "bad" in rehydrated.quarantined
        assert "corrupt run table" in rehydrated.quarantined["bad"]
        assert "bad" not in rehydrated
        # Distinct from an unknown app: the HTTP layer maps this to 503
        # (repairable server-side damage), not 404 (never registered).
        with pytest.raises(QuarantinedApplicationError, match="quarantined"):
            rehydrated.get("bad")
        with pytest.raises(KeyError):
            rehydrated.get("ghost")

    def test_corrupt_donor_does_not_break_transfer_registration(self, tmp_path):
        """The donor ranking scans every tenant's run table: a corrupt
        donor must be skipped (ineligible), not crash an unrelated
        tenant's warm_start='transfer' registration after its metadata
        was already persisted."""
        store_dir = tmp_path / "store"
        store = HistoryStore(store_dir)
        registry = TuningRegistry(store)
        registry.register("donor", "join", seed=7, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        path = store_dir / "donor" / "runs.jsonl"
        lines = path.read_text().splitlines()
        lines.insert(1, "GARBAGE NOT JSON")
        path.write_text("\n".join(lines) + "\n")

        session = registry.register(
            "newbie", "tpcds", seed=7, tuner=TINY_TUNER, warm_start="transfer"
        )
        # Degrades to a cold start instead of poisoning the store.
        assert session.locat.transfer_from is None
        assert store.has_app("newbie")

    def test_truncated_donor_artifacts_do_not_break_transfer_registration(self, tmp_path):
        """Corrupt artifacts.json (not just the run table) must make the
        donor ineligible, not crash another tenant's registration."""
        store_dir = tmp_path / "store"
        store = HistoryStore(store_dir)
        registry = TuningRegistry(store)
        registry.register("donor", "join", seed=7, tuner=TINY_TUNER)
        registry.observe("donor", 100.0)
        (store_dir / "donor" / "artifacts.json").write_text('{"qcsa": {"cv')

        session = registry.register(
            "newbie", "tpcds", seed=7, tuner=TINY_TUNER, warm_start="transfer"
        )
        assert session.locat.transfer_from is None
        assert store.has_app("newbie")

    def test_legacy_deployment_without_detector_state_rehydrates(self, tmp_path):
        """A deployed.json written by the pre-detector service (only
        recent_ratios) must still restore — and a ratio-mode tenant
        resumes its half-filled window from it."""
        store_dir = tmp_path / "store"
        store = HistoryStore(store_dir)
        registry = TuningRegistry(store)
        registry.register("app", "join", seed=7, tuner=TINY_TUNER,
                          controller={"detector": "ratio", "drift_patience": 2})
        first = registry.observe("app", 100.0)
        slow = first.result.best_duration_s * 3.0
        registry.observe("app", 100.0, duration_s=slow)
        deployment = store.load_deployment("app")
        for key in ("detector", "detector_state", "log_offset"):
            deployment.pop(key, None)  # simulate the old schema
        store.save_deployment("app", deployment)

        rehydrated = TuningRegistry(HistoryStore(store_dir))
        assert len(rehydrated.get("app").controller.recent_ratios) == 1
        decision = rehydrated.observe("app", 100.0, duration_s=slow)
        assert decision.retuned


class TestServiceIntegration:
    """The acceptance path: concurrent tenants, kill, restart, resume."""

    def test_multi_tenant_restart_resume(self, tmp_path):
        store_dir = str(tmp_path / "store")
        tenants = {"tenant-join": "join", "tenant-scan": "scan"}
        sizes = {"tenant-join": [100.0, 104.0, 108.0], "tenant-scan": [200.0, 206.0, 212.0]}

        service = TuningService(store_dir, port=0, n_workers=4).start()
        client = TuningClient(service.url)
        for app_id, benchmark in tenants.items():
            created = client.register_app(app_id, benchmark, seed=7, tuner=TINY_TUNER)
            assert created["app_id"] == app_id

        errors: list[Exception] = []

        def feed(app_id):
            try:
                for datasize in sizes[app_id]:
                    job = client.observe(app_id, datasize)
                    assert job["status"] == "done"
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=feed, args=(a,)) for a in tenants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        before = {a["app_id"]: a for a in client.list_apps()}
        configs = {}
        for app_id in tenants:
            assert before[app_id]["bootstrapped"]
            assert before[app_id]["evaluations"] > 0
            configs[app_id] = client.config(app_id)["parameters"]
            history = client.history(app_id)
            assert history["count"] > 0
            assert {row["source"] for row in history["observations"]} <= {SOURCE_TUNING, SOURCE_PRODUCTION}
        service.close()  # kill the service

        restarted = TuningService(store_dir, port=0, n_workers=4).start()
        client = TuningClient(restarted.url)
        for app_id in tenants:
            status = client.app(app_id)
            assert status["bootstrapped"] and status["restored"]
            assert status["evaluations"] == 0  # QCSA/IICP bootstrap NOT re-run
            assert client.config(app_id)["parameters"] == configs[app_id]

        job = client.observe("tenant-join", 102.0)
        assert job["decision"]["retuned"] is False
        assert client.app("tenant-join")["evaluations"] == 0
        restarted.close()

    def test_http_error_paths(self, tmp_path):
        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            assert client.health()["status"] == "ok"
            with pytest.raises(ServiceError) as excinfo:
                client.app("ghost")
            assert excinfo.value.status == 404
            client.register_app("app", "join", tuner=TINY_TUNER)
            with pytest.raises(ServiceError) as excinfo:
                client.register_app("app", "join")
            assert excinfo.value.status == 409
            with pytest.raises(ServiceError) as excinfo:
                client.register_app("other", "ycsb")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.config("app")  # nothing deployed yet
            assert excinfo.value.status == 404
            # A bad datasize is rejected up front (slot sizing normalizes
            # it before anything is queued) — a 400, not a failed job.
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", -5.0)
            assert excinfo.value.status == 400
            # Non-numeric JSON (null) is a 400 too, not an internal error.
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", None)
            assert excinfo.value.status == 400
            # A job that fails while running still surfaces as HTTP 500.
            original_observe = service.registry.observe

            def boom(*args, **kwargs):
                raise RuntimeError("deliberate job failure")

            service.registry.observe = boom
            try:
                with pytest.raises(ServiceError) as excinfo:
                    client.observe("app", 100.0)
                assert excinfo.value.status == 500
            finally:
                service.registry.observe = original_observe

    def test_quarantined_tenant_answers_503_and_is_listed(self, tmp_path):
        """Over HTTP, a quarantined tenant is a repairable server-side
        failure (503 with the reason), never a 404 inviting
        re-registration — and GET /apps names it for operators."""
        store_dir = tmp_path / "store"
        registry = TuningRegistry(HistoryStore(store_dir))
        registry.register("app", "join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        path = store_dir / "app" / "runs.jsonl"
        lines = path.read_text().splitlines()
        lines.insert(1, "GARBAGE NOT JSON")
        path.write_text("\n".join(lines) + "\n")

        with TuningService(str(store_dir), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", 100.0)
            assert excinfo.value.status == 503
            assert "quarantined" in str(excinfo.value)
            listing = client.list_apps()
            assert listing == []  # not among the healthy sessions
            raw = client._request("GET", "/apps")  # the listing names the damage
            assert "app" in raw["quarantined"]

    def test_corrupt_history_surfaces_as_500_not_400(self, tmp_path):
        """Interior run-table corruption discovered while serving
        GET /apps/<id>/history is a server-side integrity failure: it
        must reach 5xx-based alerting, not masquerade as a bad request."""
        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            client.register_app("app", "join", seed=7, tuner=TINY_TUNER)
            client.observe("app", 100.0)
            path = tmp_path / "app" / "runs.jsonl"
            lines = path.read_text().splitlines()
            lines.insert(1, "GARBAGE NOT JSON")
            path.write_text("\n".join(lines) + "\n")
            with pytest.raises(ServiceError) as excinfo:
                client.history("app")
            assert excinfo.value.status == 500
            assert "corrupt run table" in str(excinfo.value)

    def test_async_observe_and_jobs_listing(self, tmp_path):
        with TuningService(str(tmp_path), port=0, n_workers=2).start() as service:
            client = TuningClient(service.url)
            client.register_app("app", "scan", seed=3, tuner=TINY_TUNER)
            queued = client.observe("app", 100.0, wait=False)
            assert queued["status"] in ("queued", "running")
            done = client.wait_job(queued["job_id"], timeout=120.0)
            assert done["decision"]["retuned"]
            listed = client.jobs("app")
            assert [j["job_id"] for j in listed] == [queued["job_id"]]


class TestObserveBatch:
    """POST /apps/<id>/observe_batch and the registry batch path."""

    def test_batch_decisions_match_sequential_observes(self, tmp_path):
        """A batch must be bit-identical to the same observes one by one."""
        seq = TuningService(str(tmp_path / "seq"), port=0, n_workers=1).start()
        bat = TuningService(str(tmp_path / "bat"), port=0, n_workers=1).start()
        runs = [(100.0, None), (100.0, 52.0), (100.0, 53.0), (104.0, 51.0)]
        try:
            for service in (seq, bat):
                TuningClient(service.url).register_app("app", "join", seed=7, tuner=TINY_TUNER)
            client_seq = TuningClient(seq.url)
            sequential = [
                client_seq.observe("app", ds, duration_s=dur)["decision"]
                for ds, dur in runs
            ]
            client_bat = TuningClient(bat.url)
            job = client_bat.observe_batch(
                "app",
                [
                    {"datasize_gb": ds, **({"duration_s": dur} if dur is not None else {})}
                    for ds, dur in runs
                ],
            )
            assert job["status"] == "done"
            assert job["decisions"] == sequential
        finally:
            seq.close()
            bat.close()

    def test_batch_lands_in_one_append(self, tmp_path, monkeypatch):
        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            client.register_app("app", "join", seed=7, tuner=TINY_TUNER)
            client.observe("app", 100.0)  # bootstrap

            calls = []
            original = type(service.store).append_many

            def counting(self, app_id, records):
                calls.append(len(records))
                return original(self, app_id, records)

            monkeypatch.setattr(type(service.store), "append_many", counting)
            client.observe_batch(
                "app", [{"datasize_gb": 100.0, "duration_s": 50.0} for _ in range(5)]
            )
            # One store append (one lock acquisition, one fsync) for the
            # whole batch — five production rows in it.
            assert calls == [5]

    def test_batch_validation(self, tmp_path):
        from repro.service.server import MAX_BATCH

        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            client.register_app("app", "join", seed=7, tuner=TINY_TUNER)
            for bad in (
                {"observations": []},
                {"observations": "nope"},
                {},
                {"observations": [{"duration_s": 5.0}]},
                {"observations": [{"datasize_gb": "wat"}]},
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client._request("POST", "/apps/app/observe_batch", bad)
                assert excinfo.value.status == 400
            too_many = [{"datasize_gb": 1.0}] * (MAX_BATCH + 1)
            with pytest.raises(ServiceError) as excinfo:
                client.observe_batch("app", too_many)
            assert excinfo.value.status == 400
            assert str(MAX_BATCH) in str(excinfo.value)
            with pytest.raises(ServiceError) as excinfo:
                client.observe_batch("ghost", [{"datasize_gb": 1.0}])
            assert excinfo.value.status == 404


class TestBackpressure:
    """max_pending turns queue growth into 429 + Retry-After."""

    def test_scheduler_raises_when_saturated(self):
        from repro.service import SchedulerSaturatedError

        gate = threading.Event()
        scheduler = JobScheduler(n_workers=1, max_pending=1)
        try:
            blocker = scheduler.submit("a", gate.wait, kind="block")
            # A running job no longer counts against the pending bound.
            wait_until(lambda: blocker.status == "running")
            scheduler.submit("a", lambda: None, kind="queued")
            with pytest.raises(SchedulerSaturatedError) as excinfo:
                scheduler.submit("a", lambda: None, kind="rejected")
            assert excinfo.value.pending == 1
            assert excinfo.value.retry_after_s >= 1.0
        finally:
            gate.set()
            scheduler.shutdown(wait=True)

    def test_http_429_with_retry_after(self, tmp_path):
        service = TuningService(
            str(tmp_path), port=0, n_workers=1, max_pending=1
        ).start()
        gate = threading.Event()
        try:
            client = TuningClient(service.url)
            client.register_app("app", "join", seed=7, tuner=TINY_TUNER)
            client.observe("app", 100.0)  # bootstrap while the pool is free
            blocker = service.scheduler.submit("blocker", gate.wait, kind="block")
            wait_until(lambda: blocker.status == "running")
            queued = client.observe("app", 100.0, duration_s=50.0, wait=False)
            assert queued["status"] == "queued"
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", 100.0, duration_s=50.0, wait=False)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
            assert "retry" in excinfo.value.message
        finally:
            gate.set()
            service.close()


class TestDrainAndShutdown:
    def test_drain_finishes_queued_jobs(self):
        done = []
        scheduler = JobScheduler(n_workers=1)
        for i in range(3):
            scheduler.submit("a", lambda i=i: done.append(i), kind="work")
        assert scheduler.drain(timeout=30.0) is True
        assert done == [0, 1, 2]
        # A drained scheduler refuses new work but stays queryable.
        with pytest.raises(RuntimeError, match="draining"):
            scheduler.submit("a", lambda: None, kind="late")
        scheduler.shutdown(wait=True)

    def test_drain_rejections_surface_as_503(self, tmp_path):
        with TuningService(str(tmp_path), port=0, n_workers=1, admin=True).start() as service:
            client = TuningClient(service.url)
            client.register_app("app", "join", seed=7, tuner=TINY_TUNER)
            assert client._request("POST", "/admin/drain") == {"status": "drained"}
            assert service.drained.is_set()
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", 100.0)
            assert excinfo.value.status == 503

    def test_admin_drain_is_404_unless_enabled(self, tmp_path):
        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            client = TuningClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/admin/drain")
            assert excinfo.value.status == 404


class TestRequestLogging:
    def test_silent_by_default_verbose_on_request(self, tmp_path, capfd):
        with TuningService(str(tmp_path / "a"), port=0, n_workers=1).start() as service:
            TuningClient(service.url).health()
        captured = capfd.readouterr()
        assert "GET /healthz" not in captured.err

        with TuningService(
            str(tmp_path / "b"), port=0, n_workers=1, log_requests=True
        ).start() as service:
            TuningClient(service.url).health()
        captured = capfd.readouterr()
        assert "GET /healthz" in captured.err
