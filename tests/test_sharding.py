"""Sharded multi-worker service: routing, supervision, compatibility.

Covers the sharding subsystem's contracts: the slot hash never moves an
application between restarts or worker counts, a crashed worker comes
back serving the same state it crashed with, cross-tenant reads merge
across shards, shutdown drains in-flight jobs to disk, the keep-alive
client survives a server restart, and — pinned byte for byte — one
sharded worker is indistinguishable from the classic single-process
service.
"""

import json
import socket
import threading
import urllib.request

import pytest

from repro.service import (
    HistoryStore,
    ServiceError,
    ShardedTuningService,
    TuningClient,
    TuningService,
)
from repro.service.sharding import (
    N_SLOTS,
    ShardMap,
    apply_reshard,
    plan_reshard,
    stable_slot,
)

#: Small-but-real tuner so bootstraps cost well under a second.
TINY_TUNER = {
    "n_qcsa": 8,
    "n_iicp": 6,
    "max_iterations": 4,
    "min_iterations": 2,
    "n_mcmc": 0,
    "use_polish": False,
}

#: Response keys that legitimately differ between two service instances
#: (wall-clock stamps) — everything else must match byte for byte.
VOLATILE_KEYS = frozenset(
    {"timestamp", "submitted_at", "started_at", "finished_at", "saved_at", "updated_at"}
)


def strip_volatile(payload):
    """Recursively drop wall-clock fields from a JSON payload."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(payload, list):
        return [strip_volatile(item) for item in payload]
    return payload


# ----------------------------------------------------------------------
# Shard map
# ----------------------------------------------------------------------
class TestShardMap:
    def test_stable_slot_pinned(self):
        # Pinned values: any change here silently remaps every deployed
        # store, so the hash must never drift.
        assert stable_slot("alpha") == 30
        assert stable_slot("beta") == 41
        assert stable_slot("tpcds-prod") == 31

    def test_slot_independent_of_process_and_instance(self):
        ids = [f"app-{i}" for i in range(50)]
        first = [stable_slot(app_id) for app_id in ids]
        assert first == [stable_slot(app_id) for app_id in ids]
        assert all(0 <= slot < N_SLOTS for slot in first)

    def test_same_app_same_shard_across_map_instances(self):
        for workers in (1, 2, 4, 8):
            a, b = ShardMap(workers), ShardMap(workers)
            for app_id in ("alpha", "beta", "gamma", "tenant-0042"):
                assert a.shard_of(app_id) == b.shard_of(app_id)
                assert 0 <= a.shard_of(app_id) < workers

    def test_single_worker_owns_everything(self):
        shard_map = ShardMap(1)
        assert all(shard_map.shard_of(f"a{i}") == 0 for i in range(20))

    def test_assignments_cover_ring_evenly(self):
        shard_map = ShardMap(4)
        table = shard_map.assignments()
        assert sorted(slot for slots in table.values() for slot in slots) == list(
            range(N_SLOTS)
        )
        assert all(len(slots) == N_SLOTS // 4 for slots in table.values())

    def test_shard_dir_layout(self, tmp_path):
        shard_map = ShardMap(2)
        assert shard_map.shard_dir(tmp_path, 1).name == "shard-01"
        with pytest.raises(ValueError):
            shard_map.shard_dir(tmp_path, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(4, n_slots=2)


class TestReshard:
    def test_plan_and_apply_moves_apps_to_new_owners(self, tmp_path):
        old_map = ShardMap(2)
        apps = [f"app-{i}" for i in range(8)]
        for app_id in apps:
            app_dir = old_map.shard_dir(tmp_path, old_map.shard_of(app_id)) / app_id
            app_dir.mkdir(parents=True)
            (app_dir / "runs.jsonl").write_text(f'{{"app": "{app_id}"}}\n')

        plan = plan_reshard(tmp_path, old_workers=2, new_workers=4)
        moved = apply_reshard(plan)
        assert moved == len(plan.moves)

        new_map = ShardMap(4)
        for app_id in apps:
            expected = new_map.shard_dir(tmp_path, new_map.shard_of(app_id)) / app_id
            assert expected.is_dir(), f"{app_id} not at its new owner"
            assert (expected / "runs.jsonl").read_text() == f'{{"app": "{app_id}"}}\n'

    def test_apply_refuses_to_clobber(self, tmp_path):
        old_map = ShardMap(1)
        # Find an app whose owner changes going 1 -> 2 workers.
        app_id = next(a for a in (f"x{i}" for i in range(99)) if ShardMap(2).shard_of(a) == 1)
        (old_map.shard_dir(tmp_path, 0) / app_id).mkdir(parents=True)
        (ShardMap(2).shard_dir(tmp_path, 1) / app_id).mkdir(parents=True)
        plan = plan_reshard(tmp_path, old_workers=1, new_workers=2)
        with pytest.raises(FileExistsError):
            apply_reshard(plan)

    def test_noop_when_worker_count_unchanged(self, tmp_path):
        shard_map = ShardMap(2)
        (shard_map.shard_dir(tmp_path, 0) / "anything").mkdir(parents=True)
        assert plan_reshard(tmp_path, 2, 2).moves == []


# ----------------------------------------------------------------------
# The sharded stack end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded():
    """One two-worker sharded service shared by the read-mostly tests."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="locat-shard-") as store_dir:
        with ShardedTuningService(store_dir, port=0, workers=2).start() as service:
            client = TuningClient(service.url)
            for i, app_id in enumerate(("alpha", "beta", "gamma")):
                client.register_app(app_id, benchmark="join", seed=3 + i, tuner=TINY_TUNER)
            yield service, client
            client.close()


class TestShardedService:
    def test_routes_by_app_across_shards(self, sharded):
        service, client = sharded
        shards = {service.shard_map.shard_of(a) for a in ("alpha", "beta", "gamma")}
        assert shards == {0, 1}, "fixture apps should span both shards"
        job = client.observe("alpha", datasize_gb=10.0)
        assert job["status"] == "done"
        assert job["decision"]["retuned"]
        # The job id names the owning shard and routes back to it.
        expected_prefix = f"w{service.shard_map.shard_of('alpha')}-"
        assert job["job_id"].startswith(expected_prefix)
        assert client.job(job["job_id"])["status"] == "done"

    def test_apps_fan_out_merge(self, sharded):
        _, client = sharded
        apps = client.list_apps()
        assert [a["app_id"] for a in apps] == ["alpha", "beta", "gamma"]

    def test_healthz_sums_apps(self, sharded):
        _, client = sharded
        assert client.health() == {"status": "ok", "apps": 3}

    def test_workers_endpoint_reports_supervision(self, sharded):
        service, _ = sharded
        payload = json.loads(urllib.request.urlopen(service.url + "/workers").read())
        assert [w["shard"] for w in payload["workers"]] == [0, 1]
        assert all(w["alive"] for w in payload["workers"])

    def test_observe_batch_through_frontend(self, sharded):
        _, client = sharded
        client.observe("beta", datasize_gb=10.0)  # bootstrap
        job = client.observe_batch(
            "beta",
            [{"datasize_gb": 10.0, "duration_s": 60.0}, {"datasize_gb": 10.0}],
        )
        assert job["status"] == "done"
        assert len(job["decisions"]) == 2

    def test_unknown_app_404_matches_unsharded_wording(self, sharded):
        _, client = sharded
        with pytest.raises(ServiceError) as excinfo:
            client.app("nope")
        assert excinfo.value.status == 404
        assert "nope" in str(excinfo.value)


class TestCrashRecovery:
    def test_crashed_worker_restarts_with_identical_state(self, tmp_path):
        with ShardedTuningService(str(tmp_path), port=0, workers=2).start() as service:
            client = TuningClient(service.url)
            client.register_app("crashy", benchmark="join", seed=7, tuner=TINY_TUNER)
            client.observe("crashy", datasize_gb=10.0)
            client.observe("crashy", datasize_gb=10.0, duration_s=55.0)
            before_status = client.app("crashy")
            before_config = client.config("crashy")

            shard = service.shard_map.shard_of("crashy")
            service.supervisor.handles[shard].kill()
            assert not service.supervisor.handles[shard].is_alive()

            after_status = client.app("crashy")
            after_config = client.config("crashy")
            client.close()

            assert service.supervisor.restarts == 1
            assert service.supervisor.handles[shard].is_alive()
            # The deployed configuration survives the crash bit for bit.
            assert strip_volatile(after_config) == strip_volatile(before_config)
            # Identity, deployment, and persisted-history status match;
            # in-memory session counters legitimately reset on restart.
            for key in (
                "app_id",
                "benchmark",
                "cluster",
                "bootstrapped",
                "deployed",
                "warm_start",
                "tuned_datasizes",
                "observations_persisted",
            ):
                assert after_status[key] == before_status[key], key
            assert after_status["restored"] is True


class TestDrain:
    def test_close_completes_inflight_jobs(self, tmp_path):
        service = ShardedTuningService(str(tmp_path), port=0, workers=2).start()
        client = TuningClient(service.url)
        client.register_app(
            "drainy",
            benchmark="join",
            seed=11,
            tuner=TINY_TUNER,
            # Loose drift gates: the fabricated durations below must
            # count as production rows, not trigger a retune mid-drain.
            controller={"detector": "ratio", "drift_factor": 8.0, "drift_patience": 10_000},
        )
        client.observe("drainy", datasize_gb=10.0)  # bootstrap synchronously
        shard_dir = str(
            service.shard_map.shard_dir(tmp_path, service.shard_map.shard_of("drainy"))
        )
        persisted = len(HistoryStore(shard_dir).observations("drainy"))
        # Queue async observes and shut down immediately: drain must
        # land them all before the workers exit.
        for _ in range(3):
            job = client.observe("drainy", datasize_gb=10.0, duration_s=52.0, wait=False)
            assert job["status"] in ("queued", "running")
        client.close()
        service.close()

        after = HistoryStore(shard_dir).observations("drainy")
        assert len(after) == persisted + 3
        assert sum(1 for r in after if r.source == "production") == 3


class TestSingleWorkerCompatibility:
    def test_workers_1_is_bit_identical_to_plain_service(self, tmp_path):
        """The pinned compatibility contract from the issue."""
        plain = TuningService(str(tmp_path / "plain"), port=0, n_workers=2).start()
        sharded = ShardedTuningService(str(tmp_path / "sharded"), port=0, workers=1).start()
        try:
            responses = []
            for url in (plain.url, sharded.url):
                client = TuningClient(url)
                log = [
                    client.register_app("compat", benchmark="join", seed=9, tuner=TINY_TUNER),
                    client.observe("compat", datasize_gb=10.0),
                    client.observe("compat", datasize_gb=10.0, duration_s=48.0),
                    client.observe_batch("compat", [{"datasize_gb": 10.0, "duration_s": 48.5}]),
                    client.app("compat"),
                    client.config("compat"),
                    client.history("compat"),
                    client.jobs(),
                    client.health(),
                ]
                # Error payloads must match too (unknown routes proxy).
                try:
                    client.app("missing")
                except ServiceError as exc:
                    log.append({"status": exc.status, "message": exc.message})
                client.close()
                responses.append(strip_volatile(log))
            assert responses[0] == responses[1]
        finally:
            plain.close()
            sharded.close()


class _FlakyHTTPServer(threading.Thread):
    """Answers the first request per connection, then may hang up.

    Connection 1: serves one response, then closes the keep-alive
    socket without answering the next request — the stale-socket
    scenario the client must retry through.  Later connections answer
    every request.
    """

    BODY = b'{"status": "ok", "apps": 0}'

    def __init__(self):
        super().__init__(daemon=True)
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.connections = 0
        self.start()

    def _read_request(self, conn) -> bytes:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return b""
            data += chunk
        return data

    def run(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            first_connection = self.connections == 1
            with conn:
                while self._read_request(conn):
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                        b"Content-Length: %d\r\n\r\n%s" % (len(self.BODY), self.BODY)
                    )
                    if first_connection:
                        # Wait for the next request, then hang up on it.
                        self._read_request(conn)
                        break

    def close(self) -> None:
        self._listener.close()


class TestKeepAliveClient:
    def test_connection_reused_across_requests(self, tmp_path):
        with TuningService(str(tmp_path), port=0, n_workers=1).start() as service:
            with TuningClient(service.url) as client:
                assert client.health()["status"] == "ok"
                first_conn = client._local.conn
                assert client.health()["status"] == "ok"
                assert client._local.conn is first_conn, "keep-alive not reused"

    def test_retries_once_on_stale_socket(self):
        server = _FlakyHTTPServer()
        try:
            with TuningClient(f"http://127.0.0.1:{server.port}") as client:
                assert client.health()["status"] == "ok"
                first_conn = client._local.conn
                # The server hangs up on this one mid-connection; the
                # client must reconnect and resend transparently.
                assert client.health()["status"] == "ok"
                assert client._local.conn is not first_conn
                assert server.connections == 2
        finally:
            server.close()


class TestShardedBatchEquivalence:
    """observe_batch through the sharded frontend is bit-identical to
    the same observations sent one request at a time — including the
    shadow-promotion phases a gated tenant threads through them."""

    RUNS = [
        (10.0, None),        # bootstrap tune
        (10.0, 1.0e6),       # 2x over-factor runs -> drift alarm
        (10.0, 1.0e6),       #   -> retune -> shadow opens
        (10.0, 55.0),        # CRN shadow pairs until the gate rules
        (10.0, 55.0),
        (10.0, 55.0),
    ]
    CONTROLLER = {
        "detector": "ratio",
        "drift_factor": 1.3,
        "drift_patience": 2,
        "promotion": "shadow_ab",
        "shadow_runs": 2,
    }

    def _register(self, client):
        # seed=5 pinned: its drift retune yields a *different* winner,
        # so the trajectory walks the full shadow lifecycle instead of
        # reconfirming the incumbent.
        client.register_app(
            "gated", benchmark="join", seed=5, tuner=TINY_TUNER,
            controller=self.CONTROLLER,
        )

    def test_batch_matches_sequential_observes(self, tmp_path):
        seq = ShardedTuningService(str(tmp_path / "seq"), port=0, workers=2).start()
        bat = ShardedTuningService(str(tmp_path / "bat"), port=0, workers=2).start()
        try:
            client_seq = TuningClient(seq.url)
            client_bat = TuningClient(bat.url)
            self._register(client_seq)
            self._register(client_bat)
            sequential = [
                client_seq.observe("gated", ds, duration_s=dur)["decision"]
                for ds, dur in self.RUNS
            ]
            job = client_bat.observe_batch(
                "gated",
                [
                    {"datasize_gb": ds, **({"duration_s": dur} if dur is not None else {})}
                    for ds, dur in self.RUNS
                ],
            )
            assert job["status"] == "done"
            assert job["decisions"] == sequential
            # The trajectory must actually exercise the gate, or the
            # equivalence is vacuous for the promotion path.
            phases = [
                d.get("promotion", {}).get("phase")
                for d in sequential
                if d.get("promotion")
            ]
            assert "shadow_started" in phases
            assert {"promoted", "rejected"} & set(phases)
        finally:
            seq.close()
            bat.close()


class TestShardedBackpressure:
    """max_pending saturation inside a worker surfaces through the
    proxy as 429 + Retry-After, byte-for-byte like the plain service."""

    def test_429_retry_after_through_frontend(self, tmp_path):
        from timing_helpers import wait_until
        from repro.service.server import TuningService as _TS

        gate = str(tmp_path / "gate.lock")

        class GatedStore(HistoryStore):
            """Appends spin while the gate file exists (parent-controlled
            across the fork boundary)."""

            def append_many(self, app_id, records):
                import os as _os
                import time as _time
                while _os.path.exists(gate):
                    _time.sleep(0.01)
                super().append_many(app_id, records)

        def factory(spec):
            return _TS(
                spec.store_dir, host="127.0.0.1", port=0,
                n_workers=1, eval_workers=1, max_pending=1, admin=True,
                job_id_prefix=spec.job_id_prefix, store_factory=GatedStore,
            )

        service = ShardedTuningService(
            str(tmp_path / "store"), port=0, workers=1, service_factory=factory
        ).start()
        try:
            client = TuningClient(service.url)
            client.register_app("app", benchmark="join", seed=7, tuner=TINY_TUNER)
            client.observe("app", 100.0)  # bootstrap while the pool is free
            open(gate, "w").close()
            blocked = client.observe("app", 100.0, duration_s=50.0, wait=False)
            # Once the gated job is *running* it no longer counts against
            # the pending bound; the next submission fills the queue.
            wait_until(
                lambda: client.job(blocked["job_id"])["status"] == "running",
                message="gated observe never started running",
            )
            queued = client.observe("app", 100.0, duration_s=51.0, wait=False)
            assert queued["status"] == "queued"
            with pytest.raises(ServiceError) as excinfo:
                client.observe("app", 100.0, duration_s=52.0, wait=False)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
            assert "retry" in excinfo.value.message
        finally:
            import os as _os
            _os.remove(gate)
            service.close()

    def test_batch_past_pending_bound_gets_429(self, tmp_path):
        """A saturated worker rejects observe_batch the same way."""
        from timing_helpers import wait_until
        from repro.service.server import TuningService as _TS

        gate = str(tmp_path / "gate.lock")

        class GatedStore(HistoryStore):
            def append_many(self, app_id, records):
                import os as _os
                import time as _time
                while _os.path.exists(gate):
                    _time.sleep(0.01)
                super().append_many(app_id, records)

        def factory(spec):
            return _TS(
                spec.store_dir, host="127.0.0.1", port=0,
                n_workers=1, eval_workers=1, max_pending=1, admin=True,
                job_id_prefix=spec.job_id_prefix, store_factory=GatedStore,
            )

        service = ShardedTuningService(
            str(tmp_path / "store"), port=0, workers=1, service_factory=factory
        ).start()
        try:
            client = TuningClient(service.url)
            client.register_app("app", benchmark="join", seed=7, tuner=TINY_TUNER)
            client.observe("app", 100.0)
            open(gate, "w").close()
            blocked = client.observe("app", 100.0, duration_s=50.0, wait=False)
            wait_until(
                lambda: client.job(blocked["job_id"])["status"] == "running",
                message="gated observe never started running",
            )
            queued = client.observe("app", 100.0, duration_s=51.0, wait=False)
            assert queued["status"] == "queued"
            with pytest.raises(ServiceError) as excinfo:
                client.observe_batch(
                    "app", [{"datasize_gb": 100.0, "duration_s": 52.0}]
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
        finally:
            import os as _os
            _os.remove(gate)
            service.close()
