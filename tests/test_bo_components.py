"""Tests for LHS, acquisition functions, slice sampling, and the optimizer."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.bo.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import RBFKernel
from repro.bo.lhs import latin_hypercube
from repro.bo.mcmc import slice_sample_hyperparameters
from repro.bo.optimize import maximize_acquisition


class TestLatinHypercube:
    def test_shape_and_bounds(self):
        samples = latin_hypercube(10, 4, rng=0)
        assert samples.shape == (10, 4)
        assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_stratification(self):
        # Exactly one sample per 1/n stratum per dimension.
        n = 20
        samples = latin_hypercube(n, 3, rng=1)
        for j in range(3):
            strata = np.floor(samples[:, j] * n).astype(int)
            assert sorted(strata.tolist()) == list(range(n))

    def test_reproducible(self):
        np.testing.assert_array_equal(latin_hypercube(5, 2, rng=7), latin_hypercube(5, 2, rng=7))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, 3)
        with pytest.raises(ValueError):
            latin_hypercube(3, 0)


class TestAcquisitions:
    def test_ei_zero_when_hopeless(self):
        ei = expected_improvement(np.array([10.0]), np.array([1e-9]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_equals_improvement_when_certain(self):
        ei = expected_improvement(np.array([1.0]), np.array([1e-9]), best=3.0)
        assert ei[0] == pytest.approx(2.0, abs=1e-6)

    def test_ei_closed_form(self):
        mean, std, best = 1.0, 0.5, 1.2
        z = (best - mean) / std
        expected = (best - mean) * norm.cdf(z) + std * norm.pdf(z)
        assert expected_improvement(np.array([mean]), np.array([std]), best)[0] == pytest.approx(expected)

    def test_ei_grows_with_uncertainty(self):
        low = expected_improvement(np.array([2.0]), np.array([0.1]), best=1.0)
        high = expected_improvement(np.array([2.0]), np.array([2.0]), best=1.0)
        assert high[0] > low[0]

    def test_pi_is_probability(self):
        pi = probability_of_improvement(np.array([0.0, 5.0]), np.array([1.0, 1.0]), best=1.0)
        assert np.all(pi >= 0) and np.all(pi <= 1)
        assert pi[0] > pi[1]

    def test_ucb_prefers_low_mean_high_std(self):
        ucb = upper_confidence_bound(np.array([1.0, 1.0]), np.array([0.1, 1.0]))
        assert ucb[1] > ucb[0]
        ucb2 = upper_confidence_bound(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert ucb2[0] > ucb2[1]


class TestSliceSampling:
    @pytest.fixture()
    def fitted_gp(self):
        rng = np.random.default_rng(2)
        x = rng.random((25, 2))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
        gp = GaussianProcess(RBFKernel(dim=2, lengthscale=0.4), noise_variance=1e-3)
        return gp.fit(x, y)

    def test_returns_requested_samples(self, fitted_gp):
        samples = slice_sample_hyperparameters(fitted_gp, n_samples=5, burn_in=5, rng=0)
        assert len(samples) == 5
        assert all(s.shape == (fitted_gp.n_hyperparameters,) for s in samples)

    def test_restores_gp_state(self, fitted_gp):
        before = fitted_gp.get_theta().copy()
        slice_sample_hyperparameters(fitted_gp, n_samples=3, burn_in=3, rng=1)
        np.testing.assert_allclose(fitted_gp.get_theta(), before)

    def test_samples_have_finite_posterior(self, fitted_gp):
        samples = slice_sample_hyperparameters(fitted_gp, n_samples=4, burn_in=5, rng=2)
        for theta in samples:
            assert np.isfinite(fitted_gp.log_marginal_likelihood(theta))

    def test_chain_moves(self, fitted_gp):
        samples = slice_sample_hyperparameters(fitted_gp, n_samples=6, burn_in=10, rng=3)
        stacked = np.stack(samples)
        assert np.std(stacked) > 0  # not stuck at the initial point

    def test_requires_fitted_gp(self):
        gp = GaussianProcess(RBFKernel(dim=1))
        with pytest.raises(RuntimeError):
            slice_sample_hyperparameters(gp, n_samples=2)


class TestMaximizeAcquisition:
    def test_finds_quadratic_peak(self):
        target = np.array([0.3, 0.7])

        def score(points):
            return -np.sum((points - target) ** 2, axis=1)

        best, value = maximize_acquisition(score, dim=2, n_candidates=256, rng=0)
        np.testing.assert_allclose(best, target, atol=0.05)

    def test_respects_unit_cube(self):
        def score(points):
            return points[:, 0]  # push toward 1

        best, _ = maximize_acquisition(score, dim=3, rng=1)
        assert best[0] >= 0.95
        assert np.all(best <= 1.0)

    def test_anchors_guide_search(self):
        # A needle near the anchor that random search would miss.
        needle = np.full(8, 0.123)

        def score(points):
            return -np.linalg.norm(points - needle, axis=1)

        best_with, _ = maximize_acquisition(
            score, dim=8, n_candidates=16, anchors=needle[None, :] + 0.02, rng=2
        )
        assert np.linalg.norm(best_with - needle) < 0.2

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            maximize_acquisition(lambda p: p[:, 0], dim=0)
