"""Tests for Kernel PCA and its pre-image reconstruction."""

import numpy as np
import pytest

from repro.ml.kpca import KernelPCA


@pytest.fixture()
def ring_data():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, 60)
    radius = 0.35 + 0.02 * rng.normal(size=60)
    return 0.5 + np.column_stack([radius * np.cos(angles), radius * np.sin(angles)])


class TestFitTransform:
    def test_latent_shape(self, ring_data):
        kpca = KernelPCA(n_components=2).fit(ring_data)
        latents = kpca.transform(ring_data)
        assert latents.shape == (60, 2)
        assert kpca.n_components_ == 2

    def test_explained_variance_selects_dimension(self, ring_data):
        strict = KernelPCA(explained_variance=0.99).fit(ring_data)
        loose = KernelPCA(explained_variance=0.50).fit(ring_data)
        assert strict.n_components_ >= loose.n_components_

    def test_component_cap_at_n_minus_one(self):
        x = np.random.default_rng(1).random((5, 10))
        kpca = KernelPCA(n_components=50).fit(x)
        assert kpca.n_components_ <= 4

    def test_latents_centered(self, ring_data):
        kpca = KernelPCA(n_components=3).fit(ring_data)
        latents = kpca.transform(ring_data)
        np.testing.assert_allclose(latents.mean(axis=0), 0.0, atol=1e-8)

    def test_first_component_has_highest_variance(self, ring_data):
        kpca = KernelPCA(n_components=3).fit(ring_data)
        variances = kpca.transform(ring_data).var(axis=0)
        assert variances[0] >= variances[1] >= variances[2]

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            KernelPCA().fit(np.zeros((1, 3)))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelPCA().transform(np.zeros((1, 2)))

    @pytest.mark.parametrize("kernel", ["gaussian", "polynomial", "perceptron"])
    def test_all_kernels_fit(self, ring_data, kernel):
        kpca = KernelPCA(kernel=kernel, n_components=2).fit(ring_data)
        latents = kpca.transform(ring_data)
        assert np.all(np.isfinite(latents))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            KernelPCA(kernel="spectral")


class TestPreimage:
    def test_training_points_roundtrip_exactly(self, ring_data):
        # The pre-image seeds from the nearest training point, so training
        # latents must invert to themselves — the property LOCAT's latent
        # codec depends on.
        kpca = KernelPCA(n_components=3).fit(ring_data)
        latents = kpca.transform(ring_data[:5])
        rebuilt = kpca.inverse_transform(latents)
        np.testing.assert_allclose(rebuilt, ring_data[:5], atol=1e-9)

    def test_preimage_in_unit_cube(self, ring_data):
        kpca = KernelPCA(n_components=2).fit(ring_data)
        low, high = kpca.latent_bounds()
        rng = np.random.default_rng(2)
        z = low + rng.random((10, 2)) * (high - low)
        points = kpca.inverse_transform(z)
        assert np.all(points >= 0) and np.all(points <= 1)

    def test_batched_preimage_matches_rowwise(self, ring_data):
        # The vectorized coordinate descent solves every row of a batch
        # simultaneously; per-row results must be exactly what a
        # one-row-at-a-time call produces (per-row steps and convergence
        # are independent).
        kpca = KernelPCA(n_components=3).fit(ring_data)
        low, high = kpca.latent_bounds()
        rng = np.random.default_rng(7)
        z = low + rng.random((9, 3)) * (high - low)
        batched = kpca.inverse_transform(z)
        rowwise = np.vstack([kpca.inverse_transform(z[i : i + 1]) for i in range(len(z))])
        np.testing.assert_array_equal(batched, rowwise)

    def test_train_latents_cached_at_fit(self, ring_data):
        kpca = KernelPCA(n_components=2).fit(ring_data)
        np.testing.assert_allclose(kpca._train_latents, kpca.transform(ring_data))
        # latent_bounds reuses the cache instead of re-projecting.
        low, high = kpca.latent_bounds()
        assert np.all(low < high)

    def test_local_continuity(self, ring_data):
        # Nearby latents decode to nearby inputs (minimum-movement
        # pre-image) — required for BO exploitation.
        kpca = KernelPCA(n_components=2).fit(ring_data)
        z = kpca.transform(ring_data[3:4])
        base = kpca.inverse_transform(z)[0]
        jittered = kpca.inverse_transform(z + 0.01)[0]
        assert np.linalg.norm(jittered - base) < 0.3

    def test_wrong_latent_dim_rejected(self, ring_data):
        kpca = KernelPCA(n_components=2).fit(ring_data)
        with pytest.raises(ValueError):
            kpca.inverse_transform(np.zeros((1, 5)))

    def test_latent_bounds_cover_training(self, ring_data):
        kpca = KernelPCA(n_components=2).fit(ring_data)
        low, high = kpca.latent_bounds()
        latents = kpca.transform(ring_data)
        assert np.all(latents >= low) and np.all(latents <= high)


class TestValidation:
    def test_invalid_n_components(self):
        with pytest.raises(ValueError):
            KernelPCA(n_components=0)

    def test_invalid_explained_variance(self):
        with pytest.raises(ValueError):
            KernelPCA(explained_variance=0.0)
        with pytest.raises(ValueError):
            KernelPCA(explained_variance=1.5)
