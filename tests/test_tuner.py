"""Tests for the BO loop."""

import numpy as np
import pytest

from repro.core.tuner import BOLoop, BOTrace


def quadratic(point, datasize):
    """Minimum 10*ds at point = 0.3 (per dimension)."""
    return float(10.0 * (datasize / 100.0) * (1.0 + np.sum((point - 0.3) ** 2)))


class TestBOTrace:
    def test_best_restricted_by_datasize(self):
        trace = BOTrace()
        trace.points = [np.array([0.1]), np.array([0.2])]
        trace.datasizes = [100.0, 200.0]
        trace.durations = [5.0, 1.0]
        point, duration = trace.best(100.0)
        assert duration == 5.0
        point, duration = trace.best()
        assert duration == 1.0

    def test_best_empty_raises(self):
        with pytest.raises(RuntimeError):
            BOTrace().best()

    def test_best_unknown_datasize_raises(self):
        """No silent fallback: a cheaper datasize's duration must never
        masquerade as the incumbent at the requested size."""
        trace = BOTrace()
        trace.points = [np.array([0.1]), np.array([0.2])]
        trace.datasizes = [100.0, 200.0]
        trace.durations = [5.0, 1.0]
        with pytest.raises(RuntimeError, match="no evaluations recorded at datasize"):
            trace.best(300.0)

    def test_best_accepts_int_datasize(self):
        trace = BOTrace()
        trace.points = [np.array([0.1])]
        trace.datasizes = [100.0]
        trace.durations = [5.0]
        _, duration = trace.best(100)
        assert duration == 5.0


class TestBOLoop:
    def test_converges_on_quadratic(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=5, max_iterations=20, n_mcmc=0, rng=0)
        trace = loop.minimize(quadratic, 100.0)
        point, duration = trace.best(100.0)
        assert duration < 12.0  # optimum is 10
        assert np.all(np.abs(point - 0.3) < 0.35)

    def test_respects_max_iterations(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=8, max_iterations=8, n_mcmc=0,
                      ei_threshold=0.0, rng=1)
        trace = loop.minimize(quadratic, 100.0)
        assert trace.n_evaluations == 8

    def test_ei_stop_triggers_on_flat_objective(self):
        def flat(point, ds):
            return 100.0

        loop = BOLoop(dim=1, n_init=3, min_iterations=4, max_iterations=30, n_mcmc=0, rng=2)
        trace = loop.minimize(flat, 100.0)
        assert trace.stopped_by_ei
        assert trace.n_evaluations < 30

    def test_warm_data_counts_for_surrogate_not_budget(self):
        warm_points = np.random.default_rng(3).random((6, 2))
        warm_durations = np.array([quadratic(p, 100.0) for p in warm_points])
        loop = BOLoop(dim=2, n_init=3, min_iterations=3, max_iterations=5, n_mcmc=0,
                      ei_threshold=0.0, rng=3)
        trace = loop.minimize(
            quadratic,
            100.0,
            warm_points=warm_points,
            warm_datasizes=np.full(6, 100.0),
            warm_durations=warm_durations,
        )
        assert trace.n_evaluations == 6 + 5

    def test_warm_at_target_skips_lhs(self):
        warm_points = np.random.default_rng(4).random((4, 2))
        warm_durations = np.array([quadratic(p, 100.0) for p in warm_points])
        calls = []

        def counting(point, ds):
            calls.append(point)
            return quadratic(point, ds)

        loop = BOLoop(dim=2, n_init=3, min_iterations=2, max_iterations=2, n_mcmc=0,
                      ei_threshold=0.0, rng=4)
        loop.minimize(
            counting, 100.0,
            warm_points=warm_points,
            warm_datasizes=np.full(4, 100.0),
            warm_durations=warm_durations,
        )
        assert len(calls) == 2  # no LHS re-seeding

    def test_custom_bounds(self):
        low = np.array([10.0, 10.0])
        high = np.array([20.0, 20.0])

        def shifted(point, ds):
            return float(np.sum((point - 15.0) ** 2) + 1.0)

        loop = BOLoop(dim=2, bounds=(low, high), n_init=3, min_iterations=5,
                      max_iterations=15, n_mcmc=0, rng=5)
        trace = loop.minimize(shifted, 100.0)
        for point in trace.points:
            assert np.all(point >= low) and np.all(point <= high)
        _, best = trace.best(100.0)
        assert best < 15.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BOLoop(dim=2, bounds=(np.zeros(2), np.zeros(2)))

    def test_batch_mode_respects_budget_exactly(self):
        batches = []

        def evaluate_batch(points, ds):
            points = np.atleast_2d(points)
            batches.append(len(points))
            return np.array([quadratic(p, ds) for p in points])

        loop = BOLoop(dim=2, n_init=3, min_iterations=8, max_iterations=8,
                      n_mcmc=0, ei_threshold=0.0, batch_size=3, rng=9)
        trace = loop.minimize(quadratic, 100.0, evaluate_batch=evaluate_batch)
        assert trace.n_evaluations == 8
        # LHS design as one batch, then q-EI batches capped to the budget.
        assert batches == [3, 3, 2]

    def test_batch_mode_converges_on_quadratic(self):
        def evaluate_batch(points, ds):
            return np.array([quadratic(p, ds) for p in np.atleast_2d(points)])

        loop = BOLoop(dim=2, n_init=3, min_iterations=6, max_iterations=21,
                      n_mcmc=0, ei_threshold=0.0, batch_size=4, rng=10)
        trace = loop.minimize(quadratic, 100.0, evaluate_batch=evaluate_batch)
        _, duration = trace.best(100.0)
        assert duration < 12.0  # optimum is 10
        # One EI check per surrogate refit, several evaluations per refit.
        assert len(trace.ei_values) < trace.n_evaluations

    def test_batch_proposals_are_distinct(self):
        """Constant-liar must push the points of one batch apart."""
        def evaluate_batch(points, ds):
            return np.array([quadratic(p, ds) for p in np.atleast_2d(points)])

        loop = BOLoop(dim=2, n_init=4, min_iterations=4, max_iterations=12,
                      n_mcmc=0, ei_threshold=0.0, batch_size=4, rng=11)
        trace = loop.minimize(quadratic, 100.0, evaluate_batch=evaluate_batch)
        batch = np.stack(trace.points[4:8])  # the first q-EI batch
        for i in range(len(batch)):
            for j in range(i + 1, len(batch)):
                assert not np.allclose(batch[i], batch[j])

    def test_batch_size_one_ignores_evaluate_batch(self):
        def never(points, ds):
            raise AssertionError("batch_size=1 must stay on the serial path")

        loop = BOLoop(dim=2, n_init=3, min_iterations=3, max_iterations=5,
                      n_mcmc=0, ei_threshold=0.0, rng=12)
        trace = loop.minimize(quadratic, 100.0, evaluate_batch=never)
        assert trace.n_evaluations == 5

    def test_small_budget_shrinks_initial_design(self):
        loop = BOLoop(dim=2, n_init=3, min_iterations=1, max_iterations=1,
                      ei_threshold=0.0, n_mcmc=0, rng=6)
        trace = loop.minimize(quadratic, 100.0)
        assert trace.n_evaluations == 1

    def test_stop_rule_fires_at_min_iterations_exactly(self):
        """Regression: the paper's rule is "at least min_iterations, then
        stop"; the loop used ``>`` and needed min_iterations + 1 checks.
        With an always-satisfied threshold the loop must stop at check
        number min_iterations, i.e. after n_init + min_iterations - 1
        evaluations."""
        evaluations = []

        def counting(point, ds):
            evaluations.append(point)
            return quadratic(point, ds)

        loop = BOLoop(dim=2, n_init=3, min_iterations=4, max_iterations=30,
                      n_mcmc=0, ei_threshold=1e9, rng=0)
        trace = loop.minimize(counting, 100.0)
        assert trace.stopped_by_ei
        assert len(trace.ei_values) == 4  # exactly min_iterations EI checks
        assert len(evaluations) == 3 + 4 - 1
        assert trace.n_evaluations == 6

    def test_warm_only_at_other_datasize_anchors_at_target(self):
        """With warm data entirely at other datasizes and no initial
        design, the loop re-measures the best warm point at the target
        instead of leaking the cheaper datasize's incumbent."""
        warm_points = np.random.default_rng(8).random((4, 2))
        warm_durations = np.array([quadratic(p, 100.0) for p in warm_points])
        calls = []

        def counting(point, ds):
            calls.append((point.copy(), ds))
            return quadratic(point, ds)

        loop = BOLoop(dim=2, n_init=0, min_iterations=2, max_iterations=4,
                      n_mcmc=0, ei_threshold=0.0, rng=8)
        trace = loop.minimize(
            counting, 300.0,
            warm_points=warm_points,
            warm_datasizes=np.full(4, 100.0),
            warm_durations=warm_durations,
        )
        best_warm = warm_points[int(np.argmin(warm_durations))]
        first_point, first_ds = calls[0]
        assert first_ds == 300.0
        assert np.allclose(first_point, best_warm)
        _, best = trace.best(300.0)
        assert best >= 30.0  # a genuine 300 GB duration, not a 100 GB leak

    def test_mixed_datasize_warm_data(self):
        warm_points = np.random.default_rng(7).random((5, 2))
        warm_ds = np.array([100.0, 100.0, 300.0, 300.0, 300.0])
        warm_durations = np.array([quadratic(p, d) for p, d in zip(warm_points, warm_ds)])
        loop = BOLoop(dim=2, n_init=3, min_iterations=3, max_iterations=6, n_mcmc=0,
                      ei_threshold=0.0, rng=7)
        trace = loop.minimize(
            quadratic, 300.0,
            warm_points=warm_points,
            warm_datasizes=warm_ds,
            warm_durations=warm_durations,
        )
        _, best = trace.best(300.0)
        assert best < 45.0  # optimum at 300 GB is 30
