"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.benchmark == "tpcds"
        assert args.cluster == "x86"
        assert args.datasize == 300.0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--benchmark", "ycsb"])

    def test_simulate_set_accumulates(self):
        args = build_parser().parse_args(
            ["simulate", "--set", "a=1", "--set", "b=2"]
        )
        assert args.set == ["a=1", "b=2"]

    def test_replay_eval_flags(self):
        assert build_parser().parse_args(["tune"]).replay_eval == "off"
        args = build_parser().parse_args(["tune", "--replay-eval", "race"])
        assert args.replay_eval == "race"
        assert build_parser().parse_args(["serve"]).replay_eval == "off"
        args = build_parser().parse_args(["serve", "--replay-eval", "race"])
        assert args.replay_eval == "race"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--replay-eval", "sometimes"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        code = main([
            "simulate", "--benchmark", "scan", "--datasize", "100",
            "--set", "sql.shuffle.partitions=800",
            "--set", "shuffle.compress=true",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "slowest 10 queries" in out
        assert "total" in out

    def test_simulate_rejects_bad_set(self, capsys):
        assert main(["simulate", "--set", "nonsense"]) == 2

    def test_simulate_rejects_unknown_parameter(self, capsys):
        assert main(["simulate", "--set", "not.a.param=1"]) == 2

    def test_qcsa_runs(self, capsys):
        code = main([
            "qcsa", "--benchmark", "tpch", "--datasize", "100",
            "--samples", "4", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CSQ" in out and "CIQ" in out

    def test_tune_writes_conf(self, tmp_path, capsys, monkeypatch):
        output = tmp_path / "spark-defaults.conf"
        code = main([
            "tune", "--benchmark", "scan", "--datasize", "100",
            "--iterations", "4", "--output", str(output), "--seed", "3",
        ])
        assert code == 0
        text = output.read_text()
        assert "spark.sql.shuffle.partitions" in text
        assert text.startswith("# Tuned by LOCAT")
