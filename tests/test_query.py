"""Tests for repro.sparksim.query."""

import pytest

from repro.sparksim.query import Application, Query, Stage, StageKind


def make_query(name="q", shuffle=0.1):
    return Query(
        name=name,
        stages=(Stage(StageKind.SHUFFLE_JOIN, input_fraction=0.2, shuffle_fraction=shuffle),),
        category="join",
    )


class TestStage:
    def test_valid_stage(self):
        stage = Stage(StageKind.SCAN, input_fraction=0.5)
        assert stage.shuffle_fraction == 0.0
        assert stage.cpu_weight == 1.0

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            Stage(StageKind.SCAN, input_fraction=-0.1)

    def test_zero_cpu_weight_rejected(self):
        with pytest.raises(ValueError):
            Stage(StageKind.SCAN, input_fraction=0.1, cpu_weight=0.0)

    def test_skew_bounds(self):
        with pytest.raises(ValueError):
            Stage(StageKind.SCAN, input_fraction=0.1, skew=1.5)

    def test_fields_positive(self):
        with pytest.raises(ValueError):
            Stage(StageKind.SCAN, input_fraction=0.1, fields=0)


class TestQuery:
    def test_totals(self):
        query = Query(
            name="q",
            stages=(
                Stage(StageKind.SHUFFLE_JOIN, input_fraction=0.2, shuffle_fraction=0.1),
                Stage(StageKind.SHUFFLE_AGG, input_fraction=0.1, shuffle_fraction=0.05),
            ),
            category="join",
        )
        assert query.total_shuffle_fraction == pytest.approx(0.15)
        assert query.total_input_fraction == pytest.approx(0.3)

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError):
            Query(name="q", stages=(), category="join")

    def test_bad_category_rejected(self):
        with pytest.raises(ValueError):
            Query(name="q", stages=(Stage(StageKind.SCAN, 0.1),), category="mystery")


class TestApplication:
    def test_query_lookup(self):
        app = Application(name="app", queries=(make_query("a"), make_query("b")))
        assert app.query("a").name == "a"
        with pytest.raises(KeyError):
            app.query("c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Application(name="app", queries=(make_query("a"), make_query("a")))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Application(name="app", queries=())

    def test_subset_preserves_order(self):
        app = Application(name="app", queries=tuple(make_query(n) for n in "abcd"))
        reduced = app.subset(["c", "a"])
        assert reduced.query_names == ["a", "c"]
        assert reduced.name == "app-rqa"

    def test_subset_unknown_query(self):
        app = Application(name="app", queries=(make_query("a"),))
        with pytest.raises(KeyError):
            app.subset(["zz"])

    def test_subset_empty_rejected(self):
        app = Application(name="app", queries=(make_query("a"),))
        with pytest.raises(ValueError):
            app.subset([])
