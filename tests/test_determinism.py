"""Cross-process determinism of a pinned LOCAT trajectory.

In-process reruns share one interpreter and so cannot catch
hash-randomization bugs: any code path that iterates a ``set`` (or
relies on dict-ordering built from one) to pick samples, parameters, or
tie-breaks produces different trajectories in different *processes*
even with every RNG pinned.  This test runs the same short
tune-observe-shadow trajectory in fresh subprocesses under three
``PYTHONHASHSEED`` values and requires byte-identical canonical output:
the run table, the deployed configuration, and the promotion records.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The pinned trajectory: a cold tune, a drift alarm, and one full
#: shadow A/B cycle, with every observable serialized canonically.
TRAJECTORY = """
import json

from repro.core import LOCAT
from repro.core.online import OnlineController
from repro.sparksim import SparkSQLSimulator, get_application
from repro.sparksim.cluster import get_cluster
from repro.sparksim.serialize import config_to_dict

simulator = SparkSQLSimulator(get_cluster("x86"))
locat = LOCAT(
    simulator, get_application("join"), rng=5,
    n_qcsa=6, n_iicp=6, max_iterations=3, min_iterations=2, n_mcmc=0,
)
controller = OnlineController(
    locat, detector="ratio", drift_factor=1.3, drift_patience=2,
    promotion="shadow_ab", shadow_runs=2,
)
controller.observe(100.0)
base = simulator.run(locat.app, controller.deployed_config, 100.0, rng=0).duration_s
reasons = []
for k in range(8):
    slow = 3.0 if k < 2 else 1.0
    decision = controller.observe(100.0, duration_s=base * slow)
    reasons.append([decision.retuned, decision.reason])
payload = {
    "run_table": [
        [config_to_dict(config), datasize, duration]
        for config, datasize, duration in locat.observation_history
    ],
    "deployed": config_to_dict(controller.deployed_config),
    "decisions": reasons,
    "promotion_events": controller.drain_promotion_events(),
    "promotion_status": controller.promotion_status(),
}
print(json.dumps(payload, sort_keys=True))
"""


def run_trajectory(hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", TRAJECTORY],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"trajectory crashed under PYTHONHASHSEED={hash_seed}:\n{result.stderr}"
    )
    return result.stdout


def test_trajectory_is_hashseed_invariant():
    outputs = {seed: run_trajectory(seed) for seed in (0, 1, 2)}
    baseline = outputs[0]
    # The trajectory must have actually exercised the tuner and the
    # promotion gate, or invariance would be vacuous.
    payload = json.loads(baseline)
    assert payload["run_table"], "trajectory produced no observations"
    assert any(retuned for retuned, _ in payload["decisions"])
    for seed in (1, 2):
        assert outputs[seed] == baseline, (
            f"trajectory diverged between PYTHONHASHSEED=0 and "
            f"PYTHONHASHSEED={seed}"
        )
