"""Tests for repro.stats.correlation (cross-checked against scipy)."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.correlation import pearson, rankdata, spearman


class TestRankdata:
    def test_no_ties(self):
        assert rankdata([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_ties_get_average_rank(self):
        assert rankdata([1.0, 2.0, 2.0, 3.0]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_all_equal(self):
        assert rankdata([5.0, 5.0, 5.0]).tolist() == [2.0, 2.0, 2.0]

    def test_empty(self):
        assert rankdata([]).size == 0

    def test_matches_scipy(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 10, size=40).astype(float)  # plenty of ties
        np.testing.assert_allclose(rankdata(data), scipy.stats.rankdata(data))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rankdata(np.ones((2, 3)))


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        x = rng.random(60)
        y = 0.5 * x + rng.random(60)
        assert pearson(x, y) == pytest.approx(scipy.stats.pearsonr(x, y).statistic)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            pearson([1], [2])


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        # Spearman sees through monotone transforms — the reason CPS
        # prefers it over Pearson for discrete config parameters.
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(8)
        x = rng.integers(0, 5, size=50).astype(float)
        y = x * 2 + rng.integers(0, 3, size=50)
        expected = scipy.stats.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(11)
        x = rng.random(500)
        y = rng.random(500)
        assert abs(spearman(x, y)) < 0.1

    def test_symmetry(self):
        rng = np.random.default_rng(13)
        x = rng.random(30)
        y = rng.random(30)
        assert spearman(x, y) == pytest.approx(spearman(y, x))
