"""Tests for repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats.descriptive import (
    coefficient_of_variation,
    mean,
    standard_deviation,
    variance,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert mean([7.5]) == pytest.approx(7.5)

    def test_accepts_numpy(self):
        assert mean(np.array([2.0, 4.0])) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            mean([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            mean(np.ones((2, 2)))


class TestVariance:
    def test_population(self):
        assert variance([1.0, 3.0]) == pytest.approx(1.0)

    def test_sample(self):
        assert variance([1.0, 3.0], ddof=1) == pytest.approx(2.0)

    def test_constant_is_zero(self):
        assert variance([4.0] * 5) == pytest.approx(0.0)

    def test_too_few_values_for_ddof(self):
        with pytest.raises(ValueError):
            variance([1.0], ddof=1)

    def test_matches_numpy(self):
        data = np.random.default_rng(0).random(50)
        assert variance(data) == pytest.approx(float(np.var(data)))


class TestStandardDeviation:
    def test_is_sqrt_of_variance(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert standard_deviation(data) == pytest.approx(2.0)

    def test_sample_flavour(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert standard_deviation(data, ddof=1) == pytest.approx(float(np.std(data, ddof=1)))


class TestCoefficientOfVariation:
    def test_paper_equation_three(self):
        # CV = population std / mean.
        data = [10.0, 20.0, 30.0]
        expected = float(np.std(data)) / 20.0
        assert coefficient_of_variation(data) == pytest.approx(expected)

    def test_constant_sequence_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])

    def test_scale_invariance(self):
        # CV is invariant under positive scaling — the property QCSA
        # relies on to compare queries of different absolute lengths.
        data = [3.0, 7.0, 5.0, 9.0]
        assert coefficient_of_variation(data) == pytest.approx(
            coefficient_of_variation([x * 137.0 for x in data])
        )

    def test_more_dispersed_has_higher_cv(self):
        tight = [10.0, 10.5, 9.5, 10.2]
        wide = [10.0, 20.0, 2.0, 15.0]
        assert coefficient_of_variation(wide) > coefficient_of_variation(tight)
