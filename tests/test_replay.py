"""Replay subsystem: trace capture, CRN evaluation, racing, and wiring.

Covers the contracts the replay-based candidate evaluator depends on:

* trace steps and ring-buffer semantics survive a JSON round trip;
* the store persists and rehydrates ``trace.jsonl`` across restarts,
  degrading a corrupt trace to a warning (never a quarantine);
* a recorded RNG key replays the production measurement bit for bit;
* CRN paired deltas have no more variance than independent draws on
  every scenario generator;
* the successive-halving race never eliminates the true best
  configuration on noise-free replays;
* ``replay_eval="off"`` reproduces the historic trajectory exactly.
"""

import json

import numpy as np
import pytest

from repro.core import LOCAT
from repro.core.online import OnlineController
from repro.replay import (
    DEFAULT_TRACE_CAPACITY,
    MIN_TRACE_STEPS,
    REPLAY_EVAL_MODES,
    RaceOutcome,
    ReplayEvaluator,
    ReplayTrace,
    TraceStep,
    race,
)
from repro.service.registry import TuningRegistry
from repro.service.store import HistoryStore
from repro.sparksim import SparkSQLSimulator, get_application
from repro.sparksim.cluster import get_cluster
from repro.sparksim.scenarios import (
    SCENARIO_BUILDERS,
    ScenarioStream,
    build_scenario,
)

TINY_TUNER = {
    "n_qcsa": 10, "n_iicp": 8, "max_iterations": 6,
    "min_iterations": 3, "n_mcmc": 0,
}


def make_trace(n: int = 5, capacity: int = DEFAULT_TRACE_CAPACITY) -> ReplayTrace:
    trace = ReplayTrace(capacity=capacity)
    for i in range(n):
        trace.record(datasize_gb=50.0 + i, duration_s=100.0 + i)
    return trace


# ----------------------------------------------------------------------
# Trace steps and the ring buffer
# ----------------------------------------------------------------------
class TestTrace:
    def test_step_json_round_trip(self):
        step = TraceStep(
            index=3, datasize_gb=75.0, rng_key=(11, 3), duration_s=120.5,
            config_key="ab12cd34ef56", skew_shift=0.2, core_factor=0.8,
        )
        again = TraceStep.from_json(json.loads(json.dumps(step.to_json())))
        assert again == step
        assert again.rng_key == (11, 3)

    def test_step_validation(self):
        with pytest.raises(ValueError):
            TraceStep(index=-1, datasize_gb=50.0, rng_key=(1,))
        with pytest.raises(ValueError):
            TraceStep(index=0, datasize_gb=0.0, rng_key=(1,))
        with pytest.raises(ValueError):
            TraceStep(index=0, datasize_gb=50.0, rng_key=())

    def test_ring_buffer_drops_oldest(self):
        trace = make_trace(n=10, capacity=4)
        assert trace.n_steps == 4
        assert [s.index for s in trace.steps] == [6, 7, 8, 9]
        assert trace.next_index == 10

    def test_record_derives_unique_rng_keys(self):
        trace = make_trace(n=6)
        keys = {s.rng_key for s in trace.steps}
        assert len(keys) == 6

    def test_from_steps_resumes_index(self):
        trace = make_trace(n=5)
        again = ReplayTrace.from_steps(trace.steps, capacity=trace.capacity)
        assert [s.to_json() for s in again.steps] == [
            s.to_json() for s in trace.steps
        ]
        again.record(datasize_gb=60.0, duration_s=90.0)
        assert again.steps[-1].index == 5


# ----------------------------------------------------------------------
# Store persistence: trace.jsonl
# ----------------------------------------------------------------------
class TestTraceStore:
    def register(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.register_app("app", {"benchmark": "join", "cluster": "x86"})
        return store

    def test_round_trip(self, tmp_path):
        store = self.register(tmp_path)
        steps = make_trace(n=4).steps
        store.append_trace("app", steps)
        assert [s.to_json() for s in store.load_trace("app")] == [
            s.to_json() for s in steps
        ]

    def test_append_extends(self, tmp_path):
        store = self.register(tmp_path)
        trace = make_trace(n=6)
        store.append_trace("app", trace.steps[:3])
        store.append_trace("app", trace.steps[3:])
        assert len(store.load_trace("app")) == 6

    def test_missing_trace_is_empty(self, tmp_path):
        store = self.register(tmp_path)
        assert store.load_trace("app") == []

    def test_torn_tail_dropped(self, tmp_path):
        store = self.register(tmp_path)
        store.append_trace("app", make_trace(n=3).steps)
        path = tmp_path / "app" / "trace.jsonl"
        path.write_bytes(path.read_bytes() + b'{"index": 99, "datas')
        assert len(store.load_trace("app")) == 3

    def test_corrupt_line_raises_value_error(self, tmp_path):
        store = self.register(tmp_path)
        store.append_trace("app", make_trace(n=2).steps)
        path = tmp_path / "app" / "trace.jsonl"
        path.write_bytes(path.read_bytes() + b"not json at all\n")
        with pytest.raises(ValueError):
            store.load_trace("app")


# ----------------------------------------------------------------------
# Exact redraw: a recorded key replays the measurement bit for bit
# ----------------------------------------------------------------------
class TestExactRedraw:
    def test_scenario_measurement_replays_exactly(self, x86):
        app = get_application("aggregation")
        scenario = build_scenario("degradation", n_steps=8)
        trace = ReplayTrace()
        stream = ScenarioStream(scenario, app, x86, seed=42, trace=trace)
        config = SparkSQLSimulator(x86).space.default()
        measured = [stream.measure(step, config) for step in scenario.steps]
        assert trace.n_steps == len(scenario.steps)
        for step, run_step, duration in zip(
            trace.steps, scenario.steps, measured
        ):
            simulator, env_app = stream.environment(run_step)
            replayed = simulator.run(
                env_app, config, step.datasize_gb, rng=step.rng_key
            ).duration_s
            assert replayed == duration
            assert step.duration_s == duration

    def test_sequence_seed_matches_generator(self, x86, tpch):
        simulator = SparkSQLSimulator(x86)
        config = simulator.space.default()
        a = simulator.run(tpch, config, 100.0, rng=(7, 3)).duration_s
        b = simulator.run(
            tpch, config, 100.0, rng=np.random.default_rng((7, 3))
        ).duration_s
        assert a == b


# ----------------------------------------------------------------------
# CRN variance property, memoization, racing
# ----------------------------------------------------------------------
class TestEvaluator:
    def make_evaluator(self, x86, n_trace=6, n_replays=8, noise=0.04):
        app = get_application("aggregation")
        simulator = SparkSQLSimulator(x86, noise=noise)
        trace = ReplayTrace()
        for i in range(n_trace):
            trace.record(datasize_gb=100.0, duration_s=100.0)
        return ReplayEvaluator(
            simulator, app, trace, n_replays=n_replays, seed=1
        ), simulator

    def test_empty_trace_rejected(self, x86):
        app = get_application("aggregation")
        with pytest.raises(ValueError):
            ReplayEvaluator(SparkSQLSimulator(x86), app, ReplayTrace())

    def test_memoization_counters(self, x86):
        evaluator, simulator = self.make_evaluator(x86)
        config = simulator.space.default()
        first = evaluator.durations(config)
        misses = evaluator.cache_misses
        assert misses == evaluator.n_sim_runs
        second = evaluator.durations(config)
        assert second == first
        assert evaluator.cache_misses == misses
        assert evaluator.cache_hits >= len(evaluator.replays)

    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_crn_variance_never_worse_than_independent(self, name, x86):
        """Paired CRN deltas beat independent draws on every generator."""
        app = get_application("aggregation")
        scenario = build_scenario(name, n_steps=10)
        stream = ScenarioStream(scenario, app, x86, seed=5)
        space = SparkSQLSimulator(x86).space
        baseline = space.default()
        challenger = baseline.replace(**{"sql.shuffle.partitions": 800})
        crn, independent = [], []
        for step in scenario.steps:
            simulator, env_app = stream.environment(step)
            key = (stream.seed, step.index)
            b = simulator.run(env_app, baseline, step.datasize_gb, rng=key)
            c = simulator.run(env_app, challenger, step.datasize_gb, rng=key)
            crn.append(np.log(b.duration_s) - np.log(c.duration_s))
            b = simulator.run(
                env_app, baseline, step.datasize_gb, rng=(9, step.index, 0)
            )
            c = simulator.run(
                env_app, challenger, step.datasize_gb, rng=(9, step.index, 1)
            )
            independent.append(np.log(b.duration_s) - np.log(c.duration_s))
        assert np.var(crn) <= np.var(independent)

    def test_race_never_eliminates_true_best_noise_free(self, x86):
        """On deterministic replays the fastest config always wins."""
        evaluator, simulator = self.make_evaluator(x86, noise=0.0)
        space = simulator.space
        default = space.default()
        candidates = [
            default,
            default.replace(**{"sql.shuffle.partitions": 800}),
            default.replace(**{"executor.memory": 2}),
            default.replace(**{"sql.shuffle.partitions": 50}),
        ]
        outcome = race(evaluator, candidates, seed=3)
        assert isinstance(outcome, RaceOutcome)
        means = [evaluator.mean_duration(c) for c in candidates]
        assert means[outcome.winner] == min(means)
        assert outcome.winner not in outcome.eliminated

    def test_race_single_candidate_short_circuits(self, x86):
        evaluator, simulator = self.make_evaluator(x86)
        before = evaluator.n_sim_runs
        outcome = race(evaluator, [simulator.space.default()])
        assert outcome.winner == 0
        assert evaluator.n_sim_runs == before


# ----------------------------------------------------------------------
# LOCAT integration: off is bit-for-bit, race cuts the live budget
# ----------------------------------------------------------------------
class TestLocatReplay:
    def test_mode_validation(self, x86, join_app):
        simulator = SparkSQLSimulator(x86)
        with pytest.raises(ValueError):
            LOCAT(simulator, join_app, replay_eval="sometimes")
        with pytest.raises(ValueError):
            LOCAT(simulator, join_app, n_replays=0)
        assert REPLAY_EVAL_MODES == ("off", "race")

    def test_off_mode_bit_for_bit(self, x86, join_app):
        """``replay_eval="off"`` must not perturb the historic trajectory."""
        plain = LOCAT(SparkSQLSimulator(x86), join_app, rng=7, **TINY_TUNER)
        off = LOCAT(
            SparkSQLSimulator(x86), join_app, rng=7, replay_eval="off",
            **TINY_TUNER,
        )
        r_plain = plain.tune(100.0)
        r_off = off.tune(100.0)
        assert r_off.best_config == r_plain.best_config
        assert r_off.best_duration_s == r_plain.best_duration_s
        assert r_off.evaluations == r_plain.evaluations
        assert off.observation_history == plain.observation_history
        assert "replay" not in (r_off.details or {})

    def test_record_production_run_off_is_noop(self, x86, join_app):
        locat = LOCAT(SparkSQLSimulator(x86), join_app, rng=7, **TINY_TUNER)
        locat.record_production_run(100.0, 50.0)
        assert locat.replay_trace.n_steps == 0

    def drift_adapt(self, x86, join_app, mode):
        locat = LOCAT(
            SparkSQLSimulator(x86), join_app, rng=7, replay_eval=mode,
            **TINY_TUNER,
        )
        locat.tune(100.0)
        for i in range(4):
            locat.record_production_run(100.0, 80.0 + i)
        before = locat.objective.n_evaluations
        result = locat.adapt(100.0)
        return result, locat.objective.n_evaluations - before

    def test_race_mode_single_digit_live_evals(self, x86, join_app):
        result, live = self.drift_adapt(x86, join_app, "race")
        assert live <= 9
        replay = result.details["replay"]
        assert replay["enabled"]
        assert replay["race"] is not None
        assert replay["sim_runs"] > 0

    def test_race_without_trace_falls_back(self, x86, join_app):
        locat = LOCAT(
            SparkSQLSimulator(x86), join_app, rng=7, replay_eval="race",
            **TINY_TUNER,
        )
        locat.tune(100.0)
        assert locat.replay_trace.n_steps < MIN_TRACE_STEPS
        result = locat.adapt(100.0)
        assert result.details["replay"]["enabled"] is False

    def test_replay_shadow_pairs(self, x86, join_app):
        locat = LOCAT(
            SparkSQLSimulator(x86, noise=0.0), join_app, rng=7,
            replay_eval="race", **TINY_TUNER,
        )
        space = locat.simulator.space
        for i in range(MIN_TRACE_STEPS):
            locat.record_production_run(100.0, 90.0)
        incumbent = space.default()
        challenger = incumbent.replace(**{"sql.shuffle.partitions": 800})
        pairs = locat.replay_shadow_pairs(incumbent, challenger)
        assert len(pairs) == MIN_TRACE_STEPS
        for datasize_gb, inc_s, chal_s in pairs:
            assert datasize_gb == 100.0
            assert inc_s > 0 and chal_s > 0


# ----------------------------------------------------------------------
# Controller: trace capture on observe, shadow prefill from replays
# ----------------------------------------------------------------------
class TestControllerReplay:
    def make_controller(self, x86, noise=0.0, **controller_kwargs):
        locat = LOCAT(
            SparkSQLSimulator(x86, noise=noise), get_application("join"),
            rng=7, replay_eval="race", **TINY_TUNER,
        )
        controller = OnlineController(
            locat, datasize_margin=0.3, drift_factor=1.3, drift_patience=3,
            detector="ratio", **controller_kwargs,
        )
        return controller, locat

    def test_observe_captures_trace(self, x86):
        controller, locat = self.make_controller(x86)
        controller.observe(100.0)
        assert locat.replay_trace.n_steps == 0  # no duration, no record
        controller.observe(100.0, duration_s=55.0)
        controller.observe(100.0, duration_s=56.0)
        assert locat.replay_trace.n_steps == 2
        assert locat.replay_trace.steps[-1].duration_s == 56.0

    def test_capture_disabled_when_off(self, x86):
        locat = LOCAT(
            SparkSQLSimulator(x86), get_application("join"), rng=7,
            **TINY_TUNER,
        )
        controller = OnlineController(locat)
        controller.observe(100.0)
        controller.observe(100.0, duration_s=55.0)
        assert locat.replay_trace.n_steps == 0

    def test_shadow_prefill_resolves_without_extra_steps(self, x86):
        """Replay pairs alone reach a shadow verdict at the retune step."""
        controller, locat = self.make_controller(
            x86, promotion="shadow_ab", shadow_runs=3, ab_alpha=0.05,
        )
        controller.observe(100.0)  # initial deployment
        base = controller.deployed_config
        decision = None
        for _ in range(3):
            decision = controller.observe(100.0, duration_s=500.0)
        assert decision.retuned
        assert decision.promotion is not None
        # The trace held >= 3 production runs, so the gate saw a full
        # min_runs batch of paired replays at the retune itself and
        # reached a terminal verdict with zero shadow delay.
        assert decision.promotion["phase"] in ("promoted", "rejected")
        assert decision.promotion["replay_pairs"] >= 3
        assert not controller.shadow_active


# ----------------------------------------------------------------------
# Service: tenant keys, persistence, rehydration, corrupt trace
# ----------------------------------------------------------------------
class TestServiceReplay:
    def test_tenant_keys_validated_before_store_write(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path), rehydrate=False)
        for tuner in (
            {"replay_eval": "sometimes"},
            {"replay_eval": 1},
            {"replay_capacity": 0},
            {"n_replays": 0},
            {"n_replays": True},
        ):
            with pytest.raises(ValueError):
                registry.register("app", benchmark="join", tuner=tuner)
            assert not registry.store.has_app("app")
        registry.register(
            "app", benchmark="join",
            tuner={**TINY_TUNER, "replay_eval": "race", "n_replays": 6},
        )
        assert registry.store.has_app("app")

    def test_default_replay_eval_applies(self, tmp_path):
        registry = TuningRegistry(
            HistoryStore(tmp_path), rehydrate=False, default_replay_eval="race"
        )
        session = registry.register("app", benchmark="join", tuner=TINY_TUNER)
        assert session.locat.replay_eval == "race"
        explicit = registry.register(
            "app2", benchmark="join",
            tuner={**TINY_TUNER, "replay_eval": "off"},
        )
        assert explicit.locat.replay_eval == "off"
        with pytest.raises(ValueError):
            TuningRegistry(
                HistoryStore(tmp_path), rehydrate=False,
                default_replay_eval="nope",
            )

    def test_trace_survives_restart(self, tmp_path):
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(
            store, rehydrate=False, default_replay_eval="race"
        )
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        for i in range(4):
            registry.observe("app", 100.0, duration_s=60.0 + i)
        session = registry.get("app")
        status = session.status()["replay"]
        assert status["mode"] == "race"
        assert status["trace_steps"] == 4
        assert status["persisted_trace_index"] == 4
        assert (tmp_path / "app" / "trace.jsonl").exists()

        restarted = TuningRegistry(store, default_replay_eval="race")
        again = restarted.get("app")
        assert again.status()["replay"]["trace_steps"] == 4
        assert [s.to_json() for s in again.locat.replay_trace.steps] == [
            s.to_json() for s in session.locat.replay_trace.steps
        ]
        # New runs keep extending the persisted trace, not rewriting it.
        restarted.observe("app", 100.0, duration_s=64.0)
        assert again.status()["replay"]["trace_steps"] == 5
        assert len(store.load_trace("app")) == 5

    def test_corrupt_trace_warns_instead_of_quarantining(
        self, tmp_path, capsys
    ):
        store = HistoryStore(tmp_path)
        registry = TuningRegistry(
            store, rehydrate=False, default_replay_eval="race"
        )
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        for i in range(3):
            registry.observe("app", 100.0, duration_s=60.0 + i)
        path = tmp_path / "app" / "trace.jsonl"
        path.write_bytes(b"garbage\n" + path.read_bytes())

        restarted = TuningRegistry(store, default_replay_eval="race")
        assert "app" not in restarted.quarantined
        session = restarted.get("app")
        assert session.status()["replay"]["trace_steps"] == 0
        assert "trace" in capsys.readouterr().err

    def test_off_tenant_writes_no_trace(self, tmp_path):
        registry = TuningRegistry(HistoryStore(tmp_path), rehydrate=False)
        registry.register("app", benchmark="join", seed=7, tuner=TINY_TUNER)
        registry.observe("app", 100.0)
        registry.observe("app", 100.0, duration_s=60.0)
        assert not (tmp_path / "app" / "trace.jsonl").exists()
        assert registry.get("app").status()["replay"]["mode"] == "off"
