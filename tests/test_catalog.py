"""Tests for the synthetic TPC catalogs."""

import pytest

from repro.sparksim.catalog import TPCDS_TABLES, TPCH_TABLES, table_size_gb


class TestTPCDSCatalog:
    def test_fact_shares_sum_to_one(self):
        total = sum(t.size_share for t in TPCDS_TABLES.values() if t.is_fact)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_fact_tables_scale_linearly(self):
        at100 = table_size_gb(TPCDS_TABLES, "store_sales", 100.0)
        at500 = table_size_gb(TPCDS_TABLES, "store_sales", 500.0)
        assert at500 == pytest.approx(5 * at100)

    def test_dimensions_do_not_scale(self):
        at100 = table_size_gb(TPCDS_TABLES, "store", 100.0)
        at500 = table_size_gb(TPCDS_TABLES, "store", 500.0)
        assert at100 == at500

    def test_store_sales_dominates(self):
        shares = {n: t.size_share for n, t in TPCDS_TABLES.items() if t.is_fact}
        assert max(shares, key=shares.get) == "store_sales"

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError, match="unknown table"):
            table_size_gb(TPCDS_TABLES, "no_such_table", 100.0)


class TestTPCHCatalog:
    def test_lineitem_dominates(self):
        shares = {n: t.size_share for n, t in TPCH_TABLES.items() if t.is_fact}
        assert max(shares, key=shares.get) == "lineitem"

    def test_shares_sum_to_one(self):
        total = sum(t.size_share for t in TPCH_TABLES.values() if t.is_fact)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_nation_region_tiny(self):
        assert table_size_gb(TPCH_TABLES, "nation", 1000.0) < 0.001


class TestCatalogDrivesWorkloads:
    def test_broadcast_sides_come_from_dimensions(self, tpcds):
        # Broadcast-candidate joins carry build sides in the Table-2
        # threshold range; shuffled joins carry large-dimension sides.
        from repro.sparksim.query import StageKind

        broadcast_sides = [
            s.small_side_mb
            for q in tpcds.queries
            for s in q.stages
            if s.kind is StageKind.BROADCAST_JOIN
        ]
        assert broadcast_sides, "expected some broadcast-candidate joins"
        assert all(0.25 <= v <= 16 for v in broadcast_sides)
