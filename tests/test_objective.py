"""Tests for the objective wrapper and overhead accounting."""

import pytest

from repro.core.objective import SparkSQLObjective


class TestAccounting:
    def test_overhead_accumulates(self, sim_x86, join_app):
        objective = SparkSQLObjective(sim_x86, join_app, rng=0)
        t1 = objective.run(sim_x86.space.default(), 100.0)
        t2 = objective.run(sim_x86.space.default(), 100.0)
        assert objective.overhead_s == pytest.approx(t1.duration_s + t2.duration_s)
        assert objective.n_evaluations == 2

    def test_overhead_hours(self, sim_x86, join_app):
        objective = SparkSQLObjective(sim_x86, join_app, rng=0)
        objective.run(sim_x86.space.default(), 100.0)
        assert objective.overhead_hours == pytest.approx(objective.overhead_s / 3600.0)

    def test_subset_runs_fewer_queries(self, sim_x86, tpch):
        objective = SparkSQLObjective(sim_x86, tpch, rng=1)
        full = objective.run(sim_x86.space.default(), 100.0)
        sub = objective.run_subset(sim_x86.space.default(), 100.0, ["Q01", "Q09"])
        assert len(sub.metrics.queries) == 2
        assert sub.reduced and not full.reduced
        assert sub.duration_s < full.duration_s

    def test_measure_does_not_count(self, sim_x86, join_app):
        objective = SparkSQLObjective(sim_x86, join_app, rng=2)
        objective.measure(sim_x86.space.default(), 100.0, repeats=2)
        assert objective.overhead_s == 0.0
        assert objective.n_evaluations == 0

    def test_measure_repeats_validated(self, sim_x86, join_app):
        objective = SparkSQLObjective(sim_x86, join_app, rng=2)
        with pytest.raises(ValueError):
            objective.measure(sim_x86.space.default(), 100.0, repeats=0)


class TestBestTrial:
    def test_prefers_full_runs(self, sim_x86, tpch, rng):
        objective = SparkSQLObjective(sim_x86, tpch, rng=3)
        objective.run_subset(sim_x86.space.sample(rng), 100.0, ["Q01"])  # tiny duration
        full = objective.run(sim_x86.space.sample(rng), 100.0)
        best = objective.best_trial(100.0)
        assert not best.reduced
        assert best.duration_s == full.duration_s

    def test_filters_by_datasize(self, sim_x86, join_app, rng):
        objective = SparkSQLObjective(sim_x86, join_app, rng=4)
        objective.run(sim_x86.space.sample(rng), 100.0)
        t300 = objective.run(sim_x86.space.sample(rng), 300.0)
        assert objective.best_trial(300.0).duration_s == t300.duration_s

    def test_empty_history_raises(self, sim_x86, join_app):
        objective = SparkSQLObjective(sim_x86, join_app)
        with pytest.raises(RuntimeError):
            objective.best_trial()

    def test_falls_back_to_reduced_runs(self, sim_x86, tpch, rng):
        objective = SparkSQLObjective(sim_x86, tpch, rng=5)
        objective.run_subset(sim_x86.space.sample(rng), 100.0, ["Q01"])
        best = objective.best_trial(100.0)
        assert best.reduced
