"""Tests for the load-generation harness (:mod:`repro.loadgen`)."""

import csv
import math
import threading

import pytest

from timing_helpers import FakeClock, wait_until

from repro.loadgen import (
    OBSERVE_HEAVY,
    OpMix,
    RUN_TABLE_COLUMNS,
    RequestRecord,
    TenantPlan,
    format_report,
    percentile,
    provision_tenants,
    run_closed_loop,
    run_open_loop,
    run_table_row,
    summarize,
    write_run_table,
)
from repro.loadgen.driver import _issue
from repro.loadgen.workload import LOADGEN_TUNER, balanced_tenant_ids
from repro.service import ServiceError, TuningClient, TuningService
from repro.service.sharding import stable_slot
from repro.stats.sampling import ensure_rng


def record(
    op="observe",
    tenant="tenant-0000",
    scheduled_at=0.0,
    latency_s=0.01,
    outcome="ok",
    status=200,
    n_observations=None,
):
    if n_observations is None:
        n_observations = 1 if (op == "observe" and outcome == "ok") else 0
    return RequestRecord(
        op=op,
        tenant=tenant,
        scheduled_at=scheduled_at,
        latency_s=latency_s,
        outcome=outcome,
        status=status,
        n_observations=n_observations,
    )


class TestOpMix:
    def test_parse_normalizes(self):
        mix = OpMix.parse("observe=9, status=0.5 ,config=0.5")
        weights = dict(mix.weights)
        assert weights["observe"] == pytest.approx(0.9)
        assert weights["status"] == pytest.approx(0.05)
        assert weights["config"] == pytest.approx(0.05)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_parse_drops_zero_weight_ops(self):
        mix = OpMix.parse("observe=1,status=0")
        assert dict(mix.weights) == {"observe": 1.0}

    def test_parse_rejects_unknown_and_empty(self):
        with pytest.raises(ValueError, match="bad mix component"):
            OpMix.parse("delete=1.0")
        with pytest.raises(ValueError, match="bad mix component"):
            OpMix.parse("observe")
        with pytest.raises(ValueError, match="no positive weight"):
            OpMix.parse("observe=0,status=0")

    def test_str_roundtrips(self):
        mix = OpMix.parse(str(OBSERVE_HEAVY))
        assert mix == OBSERVE_HEAVY

    def test_sample_is_deterministic_and_respects_weights(self):
        rng_a, rng_b = ensure_rng(42), ensure_rng(42)
        draws = [OBSERVE_HEAVY.sample(rng_a) for _ in range(5)]
        assert draws == [OBSERVE_HEAVY.sample(rng_b) for _ in range(5)]
        rng = ensure_rng(7)
        counts = {"observe": 0, "status": 0, "config": 0}
        for _ in range(2000):
            counts[OBSERVE_HEAVY.sample(rng)] += 1
        assert counts["observe"] > 1600
        assert counts["status"] > 0
        assert counts["config"] > 0


class TestTenantPlan:
    def test_sample_duration_wobbles_around_baseline(self):
        plan = TenantPlan("t", "join", 10.0, baseline_duration_s=100.0)
        rng = ensure_rng(3)
        samples = [plan.sample_duration(rng) for _ in range(200)]
        assert all(98.0 <= s <= 102.0 for s in samples)
        assert len(set(samples)) > 1

    def test_balanced_tenant_ids_cycle_shards(self):
        ids = balanced_tenant_ids(8, balance_over=4)
        assert len(ids) == len(set(ids)) == 8
        shards = [stable_slot(app_id) % 4 for app_id in ids]
        assert shards == [0, 1, 2, 3, 0, 1, 2, 3]
        # Deterministic: same call, same ids.
        assert balanced_tenant_ids(8, balance_over=4) == ids


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 95) == 10.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 0) == 1.0
        assert percentile([42.0], 99) == 42.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestSummarize:
    def test_warmup_trimming_and_rates(self):
        records = (
            # warmup noise, must be dropped
            [record(scheduled_at=0.1, latency_s=9.9)]
            # measured window: 8 ok observes, 1 rejected, 1 error
            + [record(scheduled_at=1.0 + i, latency_s=0.1) for i in range(8)]
            + [record(scheduled_at=2.5, outcome="rejected", status=429)]
            + [record(op="status", scheduled_at=3.5, outcome="error", status=503)]
        )
        summary = summarize(records, duration_s=11.0, warmup_s=1.0)
        assert summary.requests == 10
        assert summary.window_s == 10.0
        assert summary.throughput_rps == pytest.approx(0.8)
        assert summary.observe_throughput_rps == pytest.approx(0.8)
        assert summary.p50_latency_ms == pytest.approx(100.0)
        assert summary.failure_rate == pytest.approx(0.1)
        assert summary.rejected_rate == pytest.approx(0.1)
        assert summary.by_op == {"observe": 9, "status": 1}

    def test_batches_count_observations_not_requests(self):
        records = [record(scheduled_at=float(i), n_observations=32) for i in range(4)]
        summary = summarize(records, duration_s=4.0)
        assert summary.throughput_rps == pytest.approx(1.0)
        assert summary.observe_throughput_rps == pytest.approx(32.0)

    def test_idle_tail_counts_against_throughput(self):
        records = [record(scheduled_at=0.5)]
        summary = summarize(records, duration_s=10.0)
        assert summary.throughput_rps == pytest.approx(0.1)

    def test_warmup_must_be_shorter_than_run(self):
        with pytest.raises(ValueError, match="warmup"):
            summarize([], duration_s=5.0, warmup_s=5.0)


class TestRunTable:
    def _summary(self):
        return summarize([record(scheduled_at=1.0)], duration_s=2.0)

    def test_row_matches_schema(self):
        row = run_table_row(
            self._summary(),
            mode="closed",
            workers=2,
            tenants=8,
            clients=4,
            batch_size=1,
            mix=str(OBSERVE_HEAVY),
        )
        assert tuple(row) == RUN_TABLE_COLUMNS
        assert row["workers"] == 2
        assert row["throughput_rps"] == 0.5

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown run-table columns"):
            run_table_row(self._summary(), bogus=1)

    def test_write_and_read_back(self, tmp_path):
        row = run_table_row(self._summary(), mode="closed", workers=1)
        path = write_run_table(tmp_path / "run_table.csv", [row])
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert len(read) == 1
        assert tuple(read[0]) == RUN_TABLE_COLUMNS
        assert read[0]["workers"] == "1"
        assert float(read[0]["throughput_rps"]) == 0.5

    def test_format_report_renders_all_rows(self):
        rows = [
            run_table_row(self._summary(), mode="closed", workers=w) for w in (1, 4)
        ]
        report = format_report(rows)
        lines = report.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "observe_tput_rps" in lines[0]


class TestIssueTaxonomy:
    class _StubClient:
        def __init__(self, exc=None):
            self.exc = exc
            self.calls = []

        def observe(self, app_id, datasize_gb, duration_s):
            self.calls.append(("observe", app_id))
            if self.exc:
                raise self.exc

        def observe_batch(self, app_id, observations):
            self.calls.append(("observe_batch", app_id, len(observations)))
            if self.exc:
                raise self.exc

        def app(self, app_id):
            self.calls.append(("app", app_id))

        def config(self, app_id):
            self.calls.append(("config", app_id))

    def _plan(self):
        return TenantPlan("t", "join", 10.0, baseline_duration_s=50.0)

    def test_ok_paths(self):
        client = self._StubClient()
        rng = ensure_rng(1)
        assert _issue(client, self._plan(), "observe", rng, 1) == ("ok", 200, 1)
        assert _issue(client, self._plan(), "observe", rng, 32) == ("ok", 200, 32)
        assert _issue(client, self._plan(), "status", rng, 1) == ("ok", 200, 0)
        assert _issue(client, self._plan(), "config", rng, 1) == ("ok", 200, 0)
        assert client.calls[1] == ("observe_batch", "t", 32)

    def test_429_is_rejected_not_error(self):
        client = self._StubClient(exc=ServiceError(429, "saturated", retry_after=2.0))
        outcome = _issue(client, self._plan(), "observe", ensure_rng(1), 1)
        assert outcome == ("rejected", 429, 0)

    def test_other_service_errors_and_oserror_are_errors(self):
        client = self._StubClient(exc=ServiceError(503, "draining"))
        assert _issue(client, self._plan(), "observe", ensure_rng(1), 1) == (
            "error",
            503,
            0,
        )
        client = self._StubClient(exc=ConnectionResetError())
        assert _issue(client, self._plan(), "observe", ensure_rng(1), 1) == (
            "error",
            None,
            0,
        )


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    store = tmp_path_factory.mktemp("loadgen-store")
    with TuningService(str(store), port=0, n_workers=2).start() as service:
        client = TuningClient(service.url)
        plans = provision_tenants(
            client, 2, seed=11, tuner=dict(LOADGEN_TUNER), concurrency=2
        )
        yield service, plans
        client.close()


class TestDrivers:
    def test_provisioned_tenants_have_baselines(self, live_service):
        _, plans = live_service
        assert [plan.app_id for plan in plans] == balanced_tenant_ids(2)
        assert all(plan.baseline_duration_s > 0 for plan in plans)

    def test_closed_loop_drives_real_service(self, live_service):
        service, plans = live_service
        records = run_closed_loop(
            service.url,
            plans,
            OBSERVE_HEAVY,
            duration_s=1.5,
            clients=2,
            seed=5,
        )
        assert records
        assert all(r.outcome == "ok" for r in records)
        assert any(r.op == "observe" for r in records)
        summary = summarize(records, duration_s=1.5, warmup_s=0.25)
        assert summary.failure_rate == 0.0
        assert summary.throughput_rps > 0

    def test_closed_loop_pins_tenants_to_clients(self, live_service):
        service, plans = live_service
        records = run_closed_loop(
            service.url, plans, OpMix.parse("status=1"), duration_s=0.5, clients=2
        )
        # With tenants pinned tenants[i::2], each tenant is driven by
        # exactly one client; both tenants must still appear.
        assert {r.tenant for r in records} == {plan.app_id for plan in plans}

    def test_open_loop_schedule_is_deterministic(self, live_service):
        service, plans = live_service
        kwargs = dict(
            tenants=plans,
            mix=OpMix.parse("status=0.5,config=0.5"),
            duration_s=1.0,
            rate_rps=40.0,
            seed=9,
        )
        first = run_open_loop(service.url, **kwargs)
        second = run_open_loop(service.url, **kwargs)
        assert [
            (r.scheduled_at, r.op, r.tenant) for r in first
        ] == [(r.scheduled_at, r.op, r.tenant) for r in second]
        assert first == sorted(first, key=lambda r: r.scheduled_at)
        assert all(r.outcome == "ok" for r in first)
        # ~40 rps for 1 s, Poisson: wide but non-trivial bounds.
        assert 10 <= len(first) <= 80

    def test_open_loop_latency_includes_dispatch_lag(self, live_service):
        """Dispatch lag accounting, exactly — on a fake clock.

        The driver runs against a :class:`FakeClock` in a background
        thread; the single dispatcher blocks in ``sleep`` until the
        test jumps the clock far past every scheduled arrival.  The
        clock then stands still while the backlog drains, so each
        record's latency must equal its lag ``JUMP - scheduled_at`` to
        the float — no wall-time slack, no coordinated omission.
        """
        service, plans = live_service
        fake = FakeClock()
        results: list = []
        JUMP = 100.0

        def drive() -> None:
            results.extend(
                run_open_loop(
                    service.url,
                    plans,
                    OpMix.parse("status=1"),
                    duration_s=1.0,
                    rate_rps=20.0,
                    seed=3,
                    max_dispatchers=1,
                    clock=fake.monotonic,
                    sleep=fake.sleep,
                )
            )

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        wait_until(
            lambda: fake.sleepers == 1,
            message="dispatcher never blocked on the fake clock",
        )
        fake.advance(JUMP)
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "open-loop driver did not finish"
        assert results
        assert all(r.outcome == "ok" for r in results)
        for r in results:
            assert r.latency_s == pytest.approx(JUMP - r.scheduled_at)

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError, match="no tenants"):
            run_closed_loop("http://127.0.0.1:1", [], OBSERVE_HEAVY, duration_s=0.1)
        with pytest.raises(ValueError, match="no tenants"):
            run_open_loop("http://127.0.0.1:1", [], OBSERVE_HEAVY, 0.1, rate_rps=1.0)

    def test_open_loop_rejects_bad_rate(self, live_service):
        service, plans = live_service
        with pytest.raises(ValueError, match="rate_rps"):
            run_open_loop(service.url, plans, OBSERVE_HEAVY, 0.1, rate_rps=0.0)
