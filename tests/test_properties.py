"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bo.lhs import latin_hypercube
from repro.ml.kpca import KernelPCA
from repro.sparksim import SparkSQLSimulator, get_application, x86_cluster
from repro.sparksim.configspace import ConfigSpace
from repro.stats.correlation import pearson, rankdata, spearman
from repro.stats.descriptive import coefficient_of_variation

SPACE = ConfigSpace.for_cluster(x86_cluster())
SIM = SparkSQLSimulator(x86_cluster(), noise=0.0)
JOIN = get_application("join")

unit_points = hnp.arrays(
    dtype=float,
    shape=38,
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

positive_lists = st.lists(
    st.floats(0.1, 1e6, allow_nan=False, allow_infinity=False), min_size=2, max_size=40
)


class TestConfigSpaceProperties:
    @given(unit_points)
    @settings(max_examples=40, deadline=None)
    def test_decode_always_valid(self, point):
        config = SPACE.decode(point)
        assert SPACE.is_valid(config)

    @given(unit_points)
    @settings(max_examples=40, deadline=None)
    def test_decode_encode_decode_fixpoint(self, point):
        config = SPACE.decode(point)
        again = SPACE.decode(SPACE.encode(config))
        assert config == again

    @given(unit_points)
    @settings(max_examples=25, deadline=None)
    def test_repair_idempotent(self, point):
        config = SPACE.decode(point)
        assert SPACE.repair(config) == config


class TestSimulatorProperties:
    @given(unit_points, st.floats(50.0, 800.0))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_durations_finite_positive(self, point, datasize):
        config = SPACE.decode(point)
        metrics = SIM.run(JOIN, config, datasize)
        assert np.isfinite(metrics.duration_s)
        assert metrics.duration_s > 0
        assert metrics.gc_s >= 0

    @given(unit_points)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_monotone_in_datasize(self, point):
        config = SPACE.decode(point)
        t_small = SIM.run(JOIN, config, 100.0).duration_s
        t_large = SIM.run(JOIN, config, 500.0).duration_s
        assert t_large > t_small


class TestStatsProperties:
    @given(positive_lists)
    @settings(max_examples=50)
    def test_cv_nonnegative_and_scale_free(self, values):
        cv = coefficient_of_variation(values)
        assert cv >= 0
        assert cv == pytest.approx(
            coefficient_of_variation([v * 3.7 for v in values]), rel=1e-9
        )

    @given(positive_lists)
    @settings(max_examples=50)
    def test_rankdata_is_permutation_of_ranks(self, values):
        ranks = rankdata(values)
        assert ranks.sum() == pytest.approx(len(values) * (len(values) + 1) / 2)
        assert ranks.min() >= 1 and ranks.max() <= len(values)

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=30),
    )
    @settings(max_examples=50)
    def test_correlations_bounded(self, xs):
        ys = [x * 2 + 1 for x in xs]
        assert -1.0 <= pearson(xs, ys) <= 1.0
        assert -1.0 <= spearman(xs, ys) <= 1.0

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=3, max_size=30))
    @settings(max_examples=50)
    def test_spearman_invariant_under_monotone_transform(self, xs):
        ys = list(np.cumsum(np.abs(xs)) + 1.0)  # strictly increasing target
        transformed_xs = [np.log1p(abs(x)) * np.sign(x) for x in xs]
        # log1p(|x|)*sign(x) preserves order of xs — unless two nearly
        # equal inputs collapse to one float under the compressive
        # transform (e.g. 100.0 vs 100.0 - 1.5e-14), which changes the
        # tie structure and legitimately changes the rank correlation.
        assume(len(set(transformed_xs)) == len(set(xs)))
        direct = spearman(xs, ys)
        transformed = spearman(transformed_xs, ys)
        assert direct == pytest.approx(transformed, abs=1e-9)


class TestLHSProperties:
    @given(st.integers(2, 30), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_stratification_always_holds(self, n, dim, seed):
        samples = latin_hypercube(n, dim, rng=seed)
        assert samples.shape == (n, dim)
        for j in range(dim):
            strata = np.floor(samples[:, j] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert sorted(strata.tolist()) == list(range(n))


class TestKPCAProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(6, 20), st.integers(2, 6)),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_training_roundtrip_property(self, x):
        # Degenerate constant inputs are legitimately rejected.
        if np.ptp(x) < 1e-6:
            return
        try:
            kpca = KernelPCA(n_components=2).fit(x)
        except ValueError:
            return
        latents = kpca.transform(x[:3])
        rebuilt = kpca.inverse_transform(latents)
        np.testing.assert_allclose(rebuilt, x[:3], atol=1e-6)
