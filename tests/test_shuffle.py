"""Tests for the shuffle/compression cost model."""

import pytest

from repro.sparksim.cluster import x86_cluster
from repro.sparksim.configspace import ConfigSpace
from repro.sparksim.shuffle import (
    broadcast_cost_s,
    compression_cpu_s_per_gb,
    compression_ratio,
    fetch_efficiency,
    shuffle_cost,
    write_efficiency,
)


@pytest.fixture()
def config():
    return ConfigSpace("x86").default()


@pytest.fixture()
def cluster():
    return x86_cluster()


class TestCompression:
    def test_ratio_below_one(self):
        for level in range(1, 6):
            assert 0 < compression_ratio(level) < 1

    def test_higher_level_compresses_better(self):
        assert compression_ratio(5) < compression_ratio(1)

    def test_higher_level_costs_more_cpu(self):
        assert compression_cpu_s_per_gb(5, 32) > compression_cpu_s_per_gb(1, 32)

    def test_small_buffer_costs_more(self):
        assert compression_cpu_s_per_gb(1, 8) > compression_cpu_s_per_gb(1, 96)

    def test_level_clamped(self):
        assert compression_ratio(99) == compression_ratio(5)
        assert compression_ratio(-3) == compression_ratio(1)


class TestEfficiencies:
    def test_fetch_efficiency_bounded(self):
        for window in (1, 24, 48, 144, 512):
            for conns in (1, 3, 5):
                assert 0 < fetch_efficiency(window, conns) <= 1

    def test_larger_window_is_better(self):
        assert fetch_efficiency(144, 1) > fetch_efficiency(24, 1)

    def test_more_connections_is_better(self):
        assert fetch_efficiency(48, 5) > fetch_efficiency(48, 1)

    def test_write_efficiency_monotone(self):
        assert write_efficiency(96) > write_efficiency(16)


class TestShuffleCost:
    def test_zero_bytes_is_free(self, config, cluster):
        cost = shuffle_cost(0.0, config, cluster)
        assert cost.write_s == cost.fetch_s == cost.compress_core_s == 0.0

    def test_negative_rejected(self, config, cluster):
        with pytest.raises(ValueError):
            shuffle_cost(-1.0, config, cluster)

    def test_compression_shrinks_wire_bytes(self, config, cluster):
        on = shuffle_cost(10.0, config.replace(**{"shuffle.compress": True}), cluster)
        off = shuffle_cost(10.0, config.replace(**{"shuffle.compress": False}), cluster)
        assert on.wire_gb < off.wire_gb
        assert on.compress_core_s > 0
        assert off.compress_core_s == 0

    def test_compression_reduces_io_time(self, config, cluster):
        on = shuffle_cost(50.0, config.replace(**{"shuffle.compress": True}), cluster)
        off = shuffle_cost(50.0, config.replace(**{"shuffle.compress": False}), cluster)
        assert on.write_s + on.fetch_s < off.write_s + off.fetch_s

    def test_cost_scales_with_volume(self, config, cluster):
        small = shuffle_cost(1.0, config, cluster)
        large = shuffle_cost(10.0, config, cluster)
        assert large.fetch_s == pytest.approx(10 * small.fetch_s)

    def test_spill_adds_disk_traffic(self, config, cluster):
        plain = shuffle_cost(10.0, config, cluster, spill=False)
        spilled = shuffle_cost(10.0, config, cluster, spill=True)
        assert spilled.write_s > plain.write_s


class TestBroadcast:
    def test_zero_side_is_free(self, config, cluster):
        assert broadcast_cost_s(0.0, config, cluster) == 0.0

    def test_cost_grows_with_size(self, config, cluster):
        assert broadcast_cost_s(100.0, config, cluster) > broadcast_cost_s(1.0, config, cluster)

    def test_compression_helps_large_payloads(self, config, cluster):
        on = broadcast_cost_s(500.0, config.replace(**{"broadcast.compress": True}), cluster)
        off = broadcast_cost_s(500.0, config.replace(**{"broadcast.compress": False}), cluster)
        assert on < off

    def test_tiny_blocks_add_overhead(self, config, cluster):
        small_blocks = broadcast_cost_s(64.0, config.replace(**{"broadcast.blockSize": 1}), cluster)
        big_blocks = broadcast_cost_s(64.0, config.replace(**{"broadcast.blockSize": 16}), cluster)
        assert small_blocks > big_blocks
