"""Setuptools shim.

All metadata lives in pyproject.toml (PEP 621); setuptools >= 61 reads
it from there.  The shim exists because some execution environments lack
the ``wheel`` package, so PEP 660 editable installs (``pip install -e .``)
cannot build an editable wheel; on those, ``python setup.py develop``
installs the same editable package through the legacy path.
"""

from setuptools import setup

setup()
