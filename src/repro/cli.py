"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tune`` — run LOCAT on a benchmark and print (or save) the tuned
  configuration as spark-defaults.conf; ``--transfer-store`` warm-starts
  from a similar application found in a tuning-service history store;
* ``qcsa`` — standalone query-sensitivity analysis (Figure 8 style);
* ``compare`` — LOCAT vs the four baselines on one benchmark;
* ``simulate`` — run one configuration and print the metrics;
* ``serve`` — run the multi-tenant tuning service (HTTP JSON API) with
  a persistent history store; ``--workers N`` shards tenants across N
  worker processes behind a routing front end;
* ``loadgen`` — drive closed- or open-loop load against a running
  service and report throughput / latency percentiles / failure rate;
* ``check`` — run the repo's own static-analysis rules (RNG/seed
  discipline, hash-order iteration, falsy-zero defaulting, float
  equality, validate-before-persist, lock discipline) over the source
  tree; see docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import LOCAT, SparkSQLObjective
from repro.core.export import diff_configs, to_spark_defaults_conf
from repro.core.promotion import PROMOTION_MODES, SHADOW_SEED_SALT
from repro.replay import REPLAY_EVAL_MODES
from repro.core.qcsa import QCSA, analyze_samples
from repro.harness.report import format_table
from repro.sparksim import SparkSQLSimulator, get_application, list_benchmarks
from repro.sparksim.cluster import get_cluster
from repro.stats.abtest import compare_paired
from repro.stats.sampling import ensure_rng
from repro.surrogate.policy import SURROGATE_BACKENDS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmark", default="tpcds", choices=list_benchmarks(),
        help="workload to run (default: tpcds)",
    )
    parser.add_argument(
        "--cluster", default="x86", choices=("arm", "x86"),
        help="simulated cluster (default: x86)",
    )
    parser.add_argument("--datasize", type=float, default=300.0, help="input size in GB")
    parser.add_argument("--seed", type=int, default=1, help="random seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOCAT (SIGMOD 2022) reproduction: tune Spark SQL configurations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="tune a benchmark with LOCAT")
    _add_common(tune)
    tune.add_argument("--iterations", type=int, default=25, help="max BO iterations")
    tune.add_argument(
        "--workers", type=int, default=1,
        help="parallel evaluation workers: each BO refit proposes that many "
        "configurations (constant-liar q-EI) and runs them concurrently; "
        "1 (default) reproduces the serial trajectory exactly",
    )
    tune.add_argument(
        "--surrogate", choices=("full", "incremental"), default="full",
        help="surrogate-engine mode: 'full' refits the GP from scratch every "
        "BO iteration (bit-for-bit the historic trajectory), 'incremental' "
        "reuses one engine with exact rank-k Cholesky extends and "
        "warm-started MCMC chains (same quality, far lower optimizer time "
        "on long histories)",
    )
    tune.add_argument(
        "--surrogate-backend", choices=SURROGATE_BACKENDS, default="exact",
        help="surrogate GP backend: 'exact' (default, full-history GP, "
        "bit-for-bit the historic trajectory), 'windowed' (recent window + "
        "high-information coreset, O(W^2) per decision), 'sparse' (Nystrom "
        "inducing points, O(m^2) per decision), or 'auto' (pick by history "
        "size; see docs/architecture.md)",
    )
    tune.add_argument(
        "--replay-eval", choices=REPLAY_EVAL_MODES, default="off",
        help="trace-replay candidate evaluation: 'off' (default, bit-for-bit "
        "the historic trajectory) or 'race' (capture a production trace and "
        "score partial-retune candidates on common-random-number replays of "
        "it, racing the field down to one live validation run; see "
        "docs/replay.md)",
    )
    tune.add_argument(
        "--promotion", choices=PROMOTION_MODES, default="immediate",
        help="what happens to the tuned configuration: 'immediate' "
        "(default, report and write it unconditionally) or 'shadow_ab' "
        "(measure it against the cluster default under common random "
        "numbers and report the paired-bootstrap verdict with confidence "
        "intervals before writing)",
    )
    tune.add_argument(
        "--shadow-runs", type=int, default=6, metavar="N",
        help="paired shadow measurements for --promotion shadow_ab "
        "(default: 6)",
    )
    tune.add_argument(
        "--ab-alpha", type=float, default=0.05, metavar="A",
        help="significance level of the paired bootstrap interval for "
        "--promotion shadow_ab (default: 0.05)",
    )
    tune.add_argument("--output", help="write spark-defaults.conf here")
    tune.add_argument(
        "--transfer-store", metavar="DIR",
        help="warm-start from a tuning-service history store: the most "
        "similar tuned application found there donates its history and "
        "the bootstrap shrinks to a few runs (cold start when no donor "
        "qualifies)",
    )
    tune.add_argument(
        "--transfer-donor", metavar="APP_ID",
        help="pin the donor application instead of ranking by workload "
        "fingerprint (requires --transfer-store)",
    )

    qcsa = sub.add_parser("qcsa", help="query configuration sensitivity analysis")
    _add_common(qcsa)
    qcsa.add_argument("--samples", type=int, default=30, help="number of random runs")

    compare = sub.add_parser("compare", help="LOCAT vs the SOTA baselines")
    _add_common(compare)

    simulate = sub.add_parser("simulate", help="run one configuration")
    _add_common(simulate)
    simulate.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="override a parameter (repeatable), e.g. --set sql.shuffle.partitions=800",
    )

    serve = sub.add_parser("serve", help="run the multi-tenant tuning service")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="bind port (default: 8080)")
    serve.add_argument(
        "--store", default="./tuning-store",
        help="history store directory (default: ./tuning-store); registered "
        "applications found there are rehydrated on startup",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 (default) runs the classic single-process "
        "service, >1 shards tenants across that many processes by a stable "
        "hash of the application id (see docs/architecture.md)",
    )
    serve.add_argument(
        "--tuning-threads", type=int, default=4,
        help="tuning worker threads per process, shared across that "
        "process's applications (default: 4)",
    )
    serve.add_argument(
        "--eval-workers", type=int, default=1,
        help="per-session parallel evaluation workers for tenants that do not "
        "set tuner.n_workers themselves (default: 1, fully serial sessions)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="per-process backlog bound: beyond N queued jobs the service "
        "answers 429 with a Retry-After hint (default: unbounded)",
    )
    serve.add_argument(
        "--log-requests", action="store_true",
        help="log every HTTP request to stderr (off by default; at load-test "
        "rates the synchronized stderr writes are a bottleneck)",
    )
    serve.add_argument(
        "--warm-start", default="cold", choices=("cold", "transfer"),
        help="default bootstrap mode for registrations that do not choose "
        "one: 'transfer' seeds new tenants from the most similar existing "
        "tenant's history (default: cold)",
    )
    serve.add_argument(
        "--drift-detector", default="ph", choices=("ph", "cusum", "ratio"),
        help="default drift-detection mode for tenants that do not set "
        "controller.detector themselves: 'ph' (Page-Hinkley over the "
        "DAGP's standardized residuals, the default), 'cusum', or "
        "'ratio' (the legacy fixed-window heuristic)",
    )
    serve.add_argument(
        "--surrogate-backend", default="exact", choices=SURROGATE_BACKENDS,
        help="default surrogate GP backend for tenants that do not set "
        "tuner.surrogate_backend themselves: 'exact' (default), 'windowed', "
        "'sparse', or 'auto' (pick by history size)",
    )
    serve.add_argument(
        "--promotion", default="immediate", choices=PROMOTION_MODES,
        help="default candidate-promotion mode for tenants that do not set "
        "controller.promotion themselves: 'immediate' (deploy a retune's "
        "winner at once, the default) or 'shadow_ab' (shadow-evaluate it "
        "under common random numbers and deploy only on a significant "
        "paired-bootstrap win; see docs/promotion.md)",
    )
    serve.add_argument(
        "--replay-eval", default="off", choices=REPLAY_EVAL_MODES,
        help="default trace-replay evaluation mode for tenants that do not "
        "set tuner.replay_eval themselves: 'off' (default) or 'race' "
        "(score partial-retune candidates on common-random-number replays "
        "of the tenant's production trace; see docs/replay.md)",
    )

    loadgen = sub.add_parser(
        "loadgen", help="drive load against a running tuning service"
    )
    loadgen.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the service under test (default: http://127.0.0.1:8080)",
    )
    loadgen.add_argument(
        "--tenants", type=int, default=4,
        help="tenants to provision (registered + bootstrapped up front, "
        "default: 4)",
    )
    loadgen.add_argument(
        "--benchmark", default="join", choices=list_benchmarks(),
        help="workload every tenant runs (default: join)",
    )
    loadgen.add_argument(
        "--datasize", type=float, default=10.0,
        help="per-tenant input size in GB (default: 10)",
    )
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: N clients back to back; open: Poisson arrivals at "
        "--rate regardless of completions (default: closed)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=4,
        help="closed-loop client threads (default: 4)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop arrival rate in requests/s (default: 50)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=10.0,
        help="measured run length in seconds (default: 10)",
    )
    loadgen.add_argument(
        "--warmup", type=float, default=1.0,
        help="seconds trimmed from the start of the run (default: 1)",
    )
    loadgen.add_argument(
        "--mix", default="observe=0.90,status=0.05,config=0.05",
        help="operation mix as op=weight pairs over observe/status/config "
        "(default: observe=0.90,status=0.05,config=0.05)",
    )
    loadgen.add_argument(
        "--batch-size", type=int, default=1,
        help="observations per observe request; >1 uses "
        "POST /apps/<id>/observe_batch (default: 1)",
    )
    loadgen.add_argument("--seed", type=int, default=1, help="random seed")
    loadgen.add_argument("--csv", metavar="PATH", help="append-style run_table.csv output")
    loadgen.add_argument("--json", metavar="PATH", help="full summary JSON output")

    from repro.analysis.cli import build_check_parser

    check = sub.add_parser(
        "check",
        help="run the repo's static-analysis rules (see docs/static-analysis.md)",
    )
    build_check_parser(check)
    return parser


def _make(args) -> tuple[SparkSQLSimulator, object]:
    simulator = SparkSQLSimulator(get_cluster(args.cluster))
    return simulator, get_application(args.benchmark)


def _transfer_plan(args, app):
    """Resolve --transfer-store/--transfer-donor into a TransferPlan."""
    import os

    from repro.service import HistoryStore
    from repro.transfer import (
        WorkloadFingerprint,
        build_transfer_plan,
        donor_candidate,
        select_donor,
    )

    # HistoryStore creates its root; a mistyped path would silently
    # become an empty store and a cold start.  Reading requires the
    # directory to already exist.
    if not os.path.isdir(args.transfer_store):
        raise ValueError(f"--transfer-store {args.transfer_store!r} is not a directory")
    store = HistoryStore(args.transfer_store)
    fingerprint = WorkloadFingerprint.from_application(app, benchmark=args.benchmark)
    if args.transfer_donor:
        # A pinned donor skips the similarity ranking *and* the default
        # observation floor — the operator vouched for it; it still needs
        # persisted artifacts and at least one tuning row.
        candidate = donor_candidate(
            store, fingerprint, args.transfer_donor, min_observations=1
        )
        if candidate is None:
            raise ValueError(
                f"donor {args.transfer_donor!r} not usable from {args.transfer_store}: "
                "not registered there, never bootstrapped (no persisted CPS "
                "artifacts), or no tuning observations"
            )
    else:
        candidate = select_donor(store, fingerprint)
    if candidate is None:
        print("no sufficiently similar donor in the store; starting cold")
        return None
    print(
        f"transfer warm start from {candidate.app_id!r} "
        f"({candidate.benchmark}, fingerprint similarity {candidate.similarity:.2f}, "
        f"{candidate.n_observations} donor observations)"
    )
    if args.transfer_donor:
        # The pin also waives the similarity gate inside the plan — the
        # operator overrode the fingerprint ranking on purpose.  The CPS
        # agreement gate still applies: it is measured from the target's
        # own bootstrap samples, not from the ranking.
        return build_transfer_plan(store, candidate, min_similarity=0.0)
    return build_transfer_plan(store, candidate)


def cmd_tune(args) -> int:
    simulator, app = _make(args)
    if args.transfer_donor and not args.transfer_store:
        print("--transfer-donor requires --transfer-store", file=sys.stderr)
        return 2
    plan = None
    if args.transfer_store:
        try:
            plan = _transfer_plan(args, app)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    print(f"Tuning {app.name} at {args.datasize:.0f} GB on the {args.cluster} cluster...")
    locat = LOCAT(
        simulator, app, rng=args.seed, max_iterations=args.iterations,
        n_workers=args.workers, transfer_from=plan,
        surrogate_mode=args.surrogate,
        surrogate_backend=args.surrogate_backend,
        replay_eval=args.replay_eval,
    )
    result = locat.tune(args.datasize)
    if plan is not None:
        print(
            f"transfer {locat.transfer_state}: CPS agreement "
            f"{locat.transfer_agreement:.2f}, refined similarity "
            f"{locat.transfer_similarity:.2f}"
        )
    print(result.summary())

    changed = diff_configs(simulator.space.default(), result.best_config)
    rows = [[k, a, b] for k, (a, b) in sorted(changed.items())]
    print(format_table(["parameter", "default", "tuned"], rows, title="Changed parameters"))

    if args.promotion == "shadow_ab":
        # Gate the tuned config against the cluster defaults: both arms
        # are measured under common random numbers (identically seeded
        # generators per pair) and compared with a paired bootstrap.
        baseline = simulator.space.default()
        baseline_s, challenger_s = [], []
        for k in range(args.shadow_runs):
            seed = (SHADOW_SEED_SALT, args.seed, k)
            baseline_s.append(
                simulator.run(
                    app, baseline, args.datasize, rng=ensure_rng(seed)
                ).duration_s
            )
            challenger_s.append(
                simulator.run(
                    app, result.best_config, args.datasize,
                    rng=ensure_rng(seed),
                ).duration_s
            )
        test = compare_paired(
            baseline_s, challenger_s, alpha=args.ab_alpha,
            seed=(SHADOW_SEED_SALT, args.seed),
        )
        print(
            f"\nShadow A/B vs cluster defaults over {args.shadow_runs} "
            f"paired runs: mean speedup {test.mean_speedup:.3f}x, "
            f"log-delta CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] "
            f"at alpha={args.ab_alpha:g}"
        )
        if test.significant and test.winner == "challenger":
            print("verdict: promote — tuned config significantly beats the defaults")
        else:
            print(
                "verdict: reject — no significant win over the defaults; "
                "not writing the tuned configuration"
            )
            return 1

    conf = to_spark_defaults_conf(
        result.best_config,
        header=(
            f"Tuned by LOCAT reproduction for {app.name} @ {args.datasize:.0f} GB\n"
            f"best observed duration: {result.best_duration_s:.1f}s; "
            f"optimization cost: {result.overhead_hours:.2f}h"
        ),
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(conf)
        print(f"\nwrote {args.output}")
    else:
        print("\n" + conf)
    return 0


def cmd_qcsa(args) -> int:
    simulator, app = _make(args)
    objective = SparkSQLObjective(simulator, app, rng=args.seed)
    print(f"Running {app.name} {args.samples} times with random configurations...")
    samples = QCSA(n_samples=args.samples).collect(objective, args.datasize, rng=args.seed)
    result = analyze_samples(samples)
    ranked = sorted(result.cvs.items(), key=lambda kv: -kv[1])
    rows = [[n, cv, "CSQ" if n in result.csq else "CIQ"] for n, cv in ranked]
    print(format_table(["query", "CV", "class"], rows, title="Query configuration sensitivity"))
    print(
        f"\nCSQ {len(result.csq)} / CIQ {len(result.ciq)}; threshold {result.threshold:.2f}; "
        f"RQA keeps {100 * (1 - result.reduction_ratio):.0f}% of the queries"
    )
    return 0


def cmd_compare(args) -> int:
    from repro.harness.experiment import compare_tuners

    print(f"Comparing tuners on {args.benchmark} @ {args.datasize:.0f} GB "
          f"({args.cluster})... this runs thousands of simulated jobs")
    comparison = compare_tuners(
        benchmark=args.benchmark,
        cluster=args.cluster,
        datasize_gb=args.datasize,
        seed=args.seed,
    )
    rows = []
    for name, result in comparison.results.items():
        rows.append([
            name,
            result.best_duration_s,
            result.overhead_hours,
            result.evaluations,
            "-" if name == "LOCAT" else f"{comparison.overhead_ratio(name):.1f}x",
        ])
    print(format_table(
        ["tuner", "tuned time (s)", "overhead (h)", "runs", "overhead vs LOCAT"],
        rows,
    ))
    return 0


def cmd_simulate(args) -> int:
    simulator, app = _make(args)
    overrides = {}
    for item in args.set:
        if "=" not in item:
            print(f"bad --set value {item!r}; expected NAME=VALUE", file=sys.stderr)
            return 2
        name, _, raw = item.partition("=")
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            value = float(raw)
        overrides[name] = value
    try:
        config = simulator.space.make(**overrides)
    except ValueError as exc:
        print(f"invalid parameter: {exc}", file=sys.stderr)
        return 2
    metrics = simulator.run(app, config, args.datasize, rng=args.seed)
    slowest = sorted(metrics.queries, key=lambda q: -q.duration_s)[:10]
    rows = [[q.name, q.duration_s, q.gc_s, q.shuffle_bytes_gb] for q in slowest]
    print(format_table(
        ["query", "duration (s)", "GC (s)", "shuffle GB"],
        rows,
        title=f"{app.name} @ {args.datasize:.0f} GB — slowest 10 queries",
    ))
    print(f"\ntotal {metrics.duration_s:.1f}s, GC {metrics.gc_s:.1f}s, "
          f"{len(metrics.failed_queries)} failed queries")
    return 0


def cmd_serve(args) -> int:
    from repro.service import ShardedTuningService, TuningService

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers == 1:
        service = TuningService(
            args.store, host=args.host, port=args.port,
            n_workers=args.tuning_threads, eval_workers=args.eval_workers,
            default_warm_start=args.warm_start,
            default_detector=args.drift_detector,
            default_surrogate_backend=args.surrogate_backend,
            default_promotion=args.promotion,
            default_replay_eval=args.replay_eval,
            max_pending=args.max_pending, log_requests=args.log_requests,
        )
        rehydrated = service.registry.app_ids()
        print(f"tuning service listening on {service.url} (store: {args.store})")
        if rehydrated:
            print(f"rehydrated {len(rehydrated)} application(s): {', '.join(rehydrated)}")
    else:
        service = ShardedTuningService(
            args.store, host=args.host, port=args.port, workers=args.workers,
            tuning_threads=args.tuning_threads, eval_workers=args.eval_workers,
            default_warm_start=args.warm_start,
            default_detector=args.drift_detector,
            default_surrogate_backend=args.surrogate_backend,
            default_promotion=args.promotion,
            default_replay_eval=args.replay_eval,
            max_pending=args.max_pending, log_requests=args.log_requests,
        )
        print(
            f"sharded tuning service listening on {service.url} "
            f"({args.workers} workers, store: {args.store})"
        )
    print("endpoints: POST /apps, POST /apps/<id>/observe, "
          "POST /apps/<id>/observe_batch, GET /apps/<id>/config, "
          "GET /apps/<id>/history, GET /jobs/<id>")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
    return 0


def cmd_loadgen(args) -> int:
    import json as json_module

    from repro.loadgen import (
        OpMix,
        format_report,
        provision_tenants,
        run_closed_loop,
        run_open_loop,
        run_table_row,
        summarize,
        write_run_table,
    )
    from repro.service import ServiceError, TuningClient

    try:
        mix = OpMix.parse(args.mix)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.warmup >= args.duration:
        print("--warmup must be shorter than --duration", file=sys.stderr)
        return 2
    client = TuningClient(args.url)
    try:
        client.health()
    except (ServiceError, OSError) as exc:
        print(f"service at {args.url} is not reachable: {exc}", file=sys.stderr)
        return 2
    print(f"provisioning {args.tenants} tenant(s) on {args.url}...")
    plans = provision_tenants(
        client, args.tenants, benchmark=args.benchmark,
        datasize_gb=args.datasize, seed=args.seed,
    )
    print(f"driving {args.mode}-loop load for {args.duration:.0f}s (mix {mix})...")
    if args.mode == "closed":
        records = run_closed_loop(
            args.url, plans, mix, duration_s=args.duration, clients=args.clients,
            batch_size=args.batch_size, seed=args.seed,
        )
    else:
        records = run_open_loop(
            args.url, plans, mix, duration_s=args.duration, rate_rps=args.rate,
            batch_size=args.batch_size, seed=args.seed,
        )
    client.close()
    summary = summarize(records, duration_s=args.duration, warmup_s=args.warmup)
    row = run_table_row(
        summary, mode=args.mode, workers="", tenants=args.tenants,
        clients=args.clients if args.mode == "closed" else "",
        batch_size=args.batch_size, mix=str(mix),
    )
    print(format_report([row]))
    if args.csv:
        write_run_table(args.csv, [row])
        print(f"wrote {args.csv}")
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(summary.to_json(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_check(args) -> int:
    from repro.analysis.cli import cmd_check as run

    return run(args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tune": cmd_tune,
        "qcsa": cmd_qcsa,
        "compare": cmd_compare,
        "simulate": cmd_simulate,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "check": cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
