"""The finding record shared by the engine, the rules, and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as the user named it (what gets printed);
    ``rel_path`` is the repo-relative form used for baseline
    fingerprints, so matching does not depend on the directory
    ``repro check`` was invoked from.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    rel_path: str = field(default="", compare=False)
    fingerprint: str = field(default="", compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        """Stable ``--json`` schema (covered by tests; extend, don't rename)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
