"""The committed findings baseline: grandfathered-but-gated.

A baseline entry identifies one historical finding by **content
fingerprint** — a hash of (rule id, repo-relative path, the stripped
source line) — not by line number, so unrelated edits above a
grandfathered finding do not break the CI gate.  Matching is multiset
semantics: a fingerprint listed N times excuses at most N live
findings, so duplicating a grandfathered pattern still fails.

Entries whose fingerprint no longer matches anything are *stale*;
``repro check`` reports them so the baseline shrinks monotonically as
old findings get fixed (``--update-baseline`` rewrites the file from
the current findings).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "analysis-baseline.json"


def fingerprint(rule: str, rel_path: str, source_line: str) -> str:
    """Stable identity of a finding, independent of its line number."""
    digest = hashlib.sha256(
        b"\x00".join(
            (rule.encode(), rel_path.encode(), source_line.strip().encode())
        )
    )
    return digest.hexdigest()[:16]


class Baseline:
    """An on-disk multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: list[dict] | None = None, path: str | None = None):
        self.path = path
        self.entries = list(entries or [])
        self._counts = Counter(e["fingerprint"] for e in self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: expected a baseline object with version {BASELINE_VERSION}"
            )
        entries = data.get("findings", [])
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ValueError(f"{path}: findings[{i}] has no fingerprint")
        return cls(entries, path=str(path))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Partition findings into (new, grandfathered) + stale entries.

        Findings are consumed in report order, so with duplicate
        fingerprints the earliest occurrences are the grandfathered
        ones and any excess is new.
        """
        budget = Counter(self._counts)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale: list[dict] = []
        for entry in self.entries:
            if budget[entry["fingerprint"]] > 0:
                budget[entry["fingerprint"]] -= 1
                stale.append(entry)
        return new, grandfathered, stale

    @staticmethod
    def render(findings: list[Finding]) -> dict:
        """The JSON document grandfathering exactly ``findings``."""
        return {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.rel_path,
                    "fingerprint": f.fingerprint,
                    "line": f.line,
                    "message": f.message,
                }
                for f in sorted(findings)
            ],
        }

    def write(self, findings: list[Finding], path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.render(findings), indent=2) + "\n")
