"""Repo-specific static analysis: ``repro check``.

An AST-based rule engine (:mod:`repro.analysis.engine`) plus the rule
set (:mod:`repro.analysis.rules`) encoding the invariants this codebase
has repeatedly paid for in review: RNG seed discipline, hash-order
iteration, falsy-zero defaulting, float equality, validate-before-
persist write ordering in the service layer, and lock discipline for
annotated shared attributes.

Findings can be silenced two ways (see ``docs/static-analysis.md``):

* inline — a ``# repro: allow[rule-id]`` comment on (or immediately
  above) the offending line, for deliberate violations that should stay
  visible at the call site;
* the committed ``analysis-baseline.json`` — grandfathered findings
  matched by content fingerprint, so the CI gate lands strict without a
  big-bang cleanup and any *new* finding still fails the build.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisEngine, Finding, Rule, run_check
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisEngine",
    "Baseline",
    "Finding",
    "Rule",
    "default_rules",
    "run_check",
]
