"""The ``repro check`` command.

Exit codes: 0 — clean (modulo baseline), 1 — new findings, 2 — usage
error.  ``--json`` emits a machine-readable report with a stable schema
(see :meth:`repro.analysis.findings.Finding.to_json`); CI consumes the
human form and the exit code.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.engine import run_check
from repro.analysis.rules import default_rules


def build_check_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report on stdout (stable schema)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE} "
        "in the current directory, when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather exactly the current findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline(args) -> Baseline:
    if args.no_baseline:
        return Baseline.empty()
    path = args.baseline
    if path is None and os.path.exists(DEFAULT_BASELINE):
        path = DEFAULT_BASELINE
    if path is None:
        return Baseline.empty()
    if not os.path.exists(path):
        if args.baseline is not None and not args.update_baseline:
            raise FileNotFoundError(f"baseline {path!r} does not exist")
        return Baseline(path=path)
    return Baseline.load(path)


def cmd_check(args) -> int:
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:24s} {rule.description}")
        return 0
    try:
        baseline = _resolve_baseline(args)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        result = run_check(args.paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        path = args.baseline or baseline.path or DEFAULT_BASELINE
        all_findings = sorted(result.new + result.grandfathered)
        Baseline.empty().write(all_findings, path)
        print(f"wrote {path} grandfathering {len(all_findings)} finding(s)")
        return 0

    if args.as_json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "files": result.n_files,
                    "findings": [f.to_json() for f in result.new],
                    "grandfathered": [f.to_json() for f in result.grandfathered],
                    "stale_baseline": result.stale_baseline,
                    "exit_code": result.exit_code,
                },
                indent=2,
            )
        )
        return result.exit_code

    for finding in result.new:
        print(finding.format())
    summary = (
        f"checked {result.n_files} file(s): {len(result.new)} finding(s)"
    )
    if result.grandfathered:
        summary += f", {len(result.grandfathered)} grandfathered by the baseline"
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    print(summary)
    for entry in result.stale_baseline:
        print(
            f"  stale baseline entry: [{entry.get('rule')}] {entry.get('path')} "
            f"({entry['fingerprint']}) — fixed? remove it or run --update-baseline"
        )
    return result.exit_code
