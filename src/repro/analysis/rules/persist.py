"""validate-before-persist: store writes come after validation.

The rehydration-poisoning bug: tenant registration persisted its
metadata *before* a settings value was validated, so an invalid value
landed in ``app.json``, the session constructor raised, and every later
restart of the whole service crashed re-reading the poisoned record.
The fix (and the invariant since): within any ``service/`` function
that both validates and writes, every store write must come after the
last guarding ``_validate_*`` call.

A "write" is a call to a known durable-write method whose receiver
mentions ``store`` (``self.store.append_many``, ``store.register_app``,
...) or the store's own ``self._write_json``; a "validator" is any call
whose name starts with ``_validate`` or ``validate_``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

#: Durable-write entry points of HistoryStore (and its meta files).
WRITE_METHODS = frozenset(
    {
        "append",
        "append_many",
        "append_trace",
        "append_winners",
        "register_app",
        "save_artifacts",
        "save_deployment",
        "save_fingerprint",
        "save_transfer",
        "_write_json",
    }
)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_validator(func: ast.expr) -> bool:
    name = _call_name(func)
    return name is not None and (
        name.startswith("_validate") or name.startswith("validate_")
    )


def _is_store_write(func: ast.expr) -> bool:
    if not isinstance(func, ast.Attribute) or func.attr not in WRITE_METHODS:
        return False
    if func.attr == "_write_json":
        # The store's own serializer helper: any receiver counts.
        return True
    receiver = ast.unparse(func.value)
    return "store" in receiver


class ValidateBeforePersistRule(Rule):
    rule_id = "validate-before-persist"
    description = (
        "in service/ code, HistoryStore/meta writes may not precede the "
        "function's _validate_* call (rehydration poisoning)"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        if "service/" not in module.rel_path:
            return []
        findings: list[Finding] = []
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes: list[ast.Call] = []
            validator_lines: list[int] = []
            for node in ast.walk(scope):
                if node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not isinstance(node, ast.Call):
                    continue
                if _is_validator(node.func):
                    validator_lines.append(node.lineno)
                elif _is_store_write(node.func):
                    writes.append(node)
            if not validator_lines:
                continue
            last_validation = max(validator_lines)
            for write in writes:
                if write.lineno < last_validation:
                    name = _call_name(write.func)
                    findings.append(
                        module.finding(
                            write,
                            self.rule_id,
                            f"store write {name}(...) precedes a _validate_* call "
                            "in the same function; a failure after the write "
                            "poisons the store and every later rehydration",
                        )
                    )
        return findings
