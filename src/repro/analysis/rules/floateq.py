"""float-eq: ``==``/``!=`` between float-typed expressions.

Exact float comparison is only correct for sentinel round-trips (a
value stored and compared unmodified); anything that went through
arithmetic diverges across BLAS builds and optimization levels.  The
rule flags comparisons where a side is statically float-typed: a float
literal, a ``float(...)`` call, or a name/parameter annotated ``float``.
Deliberate sentinel comparisons carry ``# repro: allow[float-eq]`` with
the justification visible at the call site.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule, walk_scope
from repro.analysis.findings import Finding


def _float_annotated(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if isinstance(arg.annotation, ast.Name) and arg.annotation.id == "float":
                names.add(arg.arg)
    for node in walk_scope(scope):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if isinstance(node.annotation, ast.Name) and node.annotation.id == "float":
                names.add(node.target.id)
    return names


def _is_float_typed(node: ast.expr, float_names: set[str]) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_typed(node.operand, float_names)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.Name):
        return node.id in float_names
    return False


class FloatEqRule(Rule):
    rule_id = "float-eq"
    description = (
        "exact ==/!= between floats is build-dependent once arithmetic is "
        "involved; compare with a tolerance or annotate the sentinel"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        scopes = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]
        for scope in scopes:
            float_names = _float_annotated(scope)
            for node in walk_scope(scope):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                operands = [node.left, *node.comparators]
                if any(_is_float_typed(o, float_names) for o in operands):
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            "exact float ==/!= comparison; use a tolerance "
                            "(math.isclose / abs diff) or, for a true sentinel "
                            "round-trip, annotate `# repro: allow[float-eq]`",
                        )
                    )
        return findings
