"""rng-discipline: every generator flows through ``ensure_rng``.

Two determinism subsystems depend on this bit-for-bit: the replay
evaluator pins recorded seed-sequence draws, and the shadow gate pairs
arms under common random numbers.  A stdlib ``random`` draw or a naked
``np.random.*`` construction is invisible to both, so:

* importing the stdlib ``random`` module in library code is flagged;
* calling anything under ``np.random`` / ``numpy.random`` directly is
  flagged (``stats/sampling.py`` is the one blessed call site — that is
  where ``ensure_rng``/``spawn`` live);
* module-level ``*_SALT`` integer constants must be unique across the
  whole tree, guarding the ``REPLAY_SEED_SALT`` / ``SHADOW_SEED_SALT``
  disjointness that keeps the two subsystems' streams independent.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

#: The module allowed to construct generators directly.
BLESSED_SUFFIXES = ("repro/stats/sampling.py",)


def _is_np_random(func: ast.expr) -> bool:
    """True for ``np.random.X`` / ``numpy.random.X`` attribute chains."""
    if not isinstance(func, ast.Attribute):
        return False
    value = func.value
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    )


class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    description = (
        "stdlib random / naked np.random.* bypass ensure_rng's seed-sequence "
        "discipline; seed-salt constants must be globally unique"
    )

    def __init__(self):
        #: salt value -> [(module rel_path, constant name, Finding)].
        self._salts: dict[int, list[tuple[str, str, Finding]]] = {}

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        self._collect_salts(module)
        if module.rel_path.endswith(BLESSED_SUFFIXES):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            module.finding(
                                node,
                                self.rule_id,
                                "stdlib random is not seed-sequence reproducible; "
                                "use a numpy Generator from stats.sampling.ensure_rng",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            "stdlib random is not seed-sequence reproducible; "
                            "use a numpy Generator from stats.sampling.ensure_rng",
                        )
                    )
            elif isinstance(node, ast.Call) and _is_np_random(node.func):
                name = node.func.attr  # type: ignore[union-attr]
                findings.append(
                    module.finding(
                        node,
                        self.rule_id,
                        f"np.random.{name}(...) constructs RNG state outside "
                        "stats.sampling.ensure_rng; pass the seed (or seed "
                        "sequence) through ensure_rng instead",
                    )
                )
        return findings

    def _collect_salts(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                continue
            name = node.targets[0].id
            if not name.endswith("_SALT"):
                continue
            if not isinstance(node.value, ast.Constant) or not isinstance(
                node.value.value, int
            ):
                continue
            if self.rule_id in module.allowed_rules(node.lineno):
                continue
            finding = module.finding(
                node,
                self.rule_id,
                f"seed salt {name} = {node.value.value:#x} duplicates a salt "
                "defined elsewhere; every *_SALT must be unique so derived "
                "seed-sequence streams never collide",
            )
            self._salts.setdefault(int(node.value.value), []).append(
                (module.rel_path, name, finding)
            )

    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for owners in self._salts.values():
            if len(owners) > 1:
                # Every colliding definition is flagged — there is no
                # principled "first owner" across an arbitrary file list.
                findings.extend(finding for _, _, finding in owners)
        return findings
