"""The shipped rule set for ``repro check``.

Every rule encodes an invariant this codebase has paid for at least
once; ``docs/static-analysis.md`` records the motivating bug for each.
Rules hold per-run state (the seed-salt registry), so callers get a
fresh instance list from :func:`default_rules` for every run.
"""

from repro.analysis.rules.falsyzero import FalsyZeroRule
from repro.analysis.rules.floateq import FloatEqRule
from repro.analysis.rules.hashiter import HashIterationRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.persist import ValidateBeforePersistRule
from repro.analysis.rules.rng import RngDisciplineRule


def default_rules():
    """Fresh instances of every shipped rule, in report order."""
    return [
        RngDisciplineRule(),
        HashIterationRule(),
        FalsyZeroRule(),
        FloatEqRule(),
        ValidateBeforePersistRule(),
        LockDisciplineRule(),
    ]


__all__ = [
    "FalsyZeroRule",
    "FloatEqRule",
    "HashIterationRule",
    "LockDisciplineRule",
    "RngDisciplineRule",
    "ValidateBeforePersistRule",
    "default_rules",
]
