"""lock-discipline: guarded state only moves under its lock.

A lightweight static race detector.  State shared across threads is
*declared* at its initial assignment with a ``# guarded-by:`` comment:

    self._jobs = {}          # guarded-by: _lock
    self._busy = set()       # guarded-by: _lock, _cond
    cursor = 0               # guarded-by: cursor_lock   (function-local)

After declaration, every read or write of the attribute (outside the
declaring ``__init__``) must sit lexically inside a ``with self._lock:``
block naming one of the declared guards — ``with self._cond:`` counts
when ``_cond`` is listed (a Condition wrapping the lock), as does a
subscripted guard table ``with self._locks[shard]:``.  Methods whose
name ends in ``_locked`` are exempt by convention: they document that
the caller already holds the lock.

The function-local form guards closure state: a variable declared in an
outer function may only be touched by nested functions inside a
``with <guard>:`` block; the declaring function's own straight-line
setup is exempt, like ``__init__``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import GUARDED_BY_RE, ModuleInfo, Rule, parents, walk_scope
from repro.analysis.findings import Finding


def _declared_guards(module: ModuleInfo, lineno: int) -> frozenset[str] | None:
    match = GUARDED_BY_RE.search(module.line(lineno))
    if match is None:
        return None
    return frozenset(part.strip() for part in match.group(1).split(",") if part.strip())


def _with_guards_attr(node: ast.With) -> set[str]:
    """Guard attribute names this with-statement acquires via ``self.X``."""
    guards: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):
            expr = expr.value  # with self._locks[shard]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            guards.add(expr.attr)
    return guards


def _with_guards_name(node: ast.With) -> set[str]:
    """Guard names acquired via a bare ``with lock:`` / ``with locks[i]:``."""
    guards: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Name):
            guards.add(expr.id)
    return guards


def _held_guards(node: ast.AST, attr_form: bool) -> set[str]:
    """Guards lexically held at ``node``, within its innermost function.

    The walk stops at the first enclosing function/lambda boundary: a
    ``with`` block in an *outer* function does not protect code that
    runs later inside a closure.
    """
    held: set[str] = set()
    for ancestor in parents(node):
        if isinstance(ancestor, ast.With):
            held |= _with_guards_attr(ancestor) if attr_form else _with_guards_name(ancestor)
        elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
    return held


class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "attributes declared `# guarded-by: <lock>` may only be touched "
        "inside a `with self.<lock>:` block (methods named *_locked exempt)"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_closures(module, node))
        return findings

    # ------------------------------------------------------------------
    # self.<attr> guarded state
    # ------------------------------------------------------------------
    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> list[Finding]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []
        guarded: dict[str, frozenset[str]] = {}
        for node in ast.walk(init):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards = _declared_guards(module, node.lineno)
                    if guards:
                        guarded[target.attr] = guards
        if not guarded:
            return []
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for node in ast.walk(method):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                ):
                    continue
                guards = guarded[node.attr]
                if not (_held_guards(node, attr_form=True) & guards):
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            f"self.{node.attr} is declared guarded-by "
                            f"{'/'.join(sorted(guards))} but is touched in "
                            f"{method.name}() outside a `with self.<guard>:` "
                            "block",
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    # function-local guarded state shared with closures
    # ------------------------------------------------------------------
    def _check_closures(
        self, module: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        guarded: dict[str, frozenset[str]] = {}
        for stmt in fn.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    guards = _declared_guards(module, stmt.lineno)
                    if guards:
                        guarded[target.id] = guards
        if not guarded:
            return []
        findings: list[Finding] = []
        nested = [
            node
            for node in ast.walk(fn)
            if node is not fn
            and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for closure in nested:
            if closure.name.endswith("_locked"):
                continue
            for node in walk_scope(closure):
                if not (isinstance(node, ast.Name) and node.id in guarded):
                    continue
                if not isinstance(node.ctx, (ast.Load, ast.Store, ast.Del)):
                    continue
                guards = guarded[node.id]
                if node.id in guards:
                    continue  # the guard object itself (with cursor_lock:)
                if not (_held_guards(node, attr_form=False) & guards):
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            f"{node.id!r} is declared guarded-by "
                            f"{'/'.join(sorted(guards))} but is touched in "
                            f"closure {closure.name}() outside a "
                            "`with <guard>:` block",
                        )
                    )
        return findings
