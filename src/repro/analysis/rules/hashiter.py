"""hash-iteration: no ordering-sensitive iteration over hash containers.

Iterating a ``set``/``frozenset`` visits elements in PYTHONHASHSEED-
dependent order, so any downstream float accumulation or tie-break
becomes process-dependent (the ``_polish`` frozenset bug: tuned configs
differed across machines).  ``dict.keys()`` iteration is flagged too —
insertion order is deterministic only when every code path builds the
dict identically, which is exactly the assumption that rots.

Flagged: ``for``-loops and comprehensions whose iterable is statically
set-typed (a set literal / comprehension, a ``set()``/``frozenset()``
call, or a local name only ever bound to one of those) or a bare
``.keys()`` call, plus ``list()``/``tuple()`` over set-typed arguments.
Wrapping the iterable in ``sorted()`` resolves the finding.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule, walk_scope
from repro.analysis.findings import Finding

_ORDER_SENSITIVE_WRAPPERS = ("list", "tuple")


def _is_set_literalish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _ScopeNames:
    """Names in one scope bound *only* to set-typed expressions."""

    def __init__(self, scope: ast.AST):
        bound: dict[str, bool] = {}
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    is_set = _is_set_literalish(node.value)
                    bound[target.id] = bound.get(target.id, True) and is_set
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None:
                    is_set = _is_set_literalish(node.value)
                    bound[node.target.id] = bound.get(node.target.id, True) and is_set
        self.set_names = {name for name, is_set in bound.items() if is_set}


class HashIterationRule(Rule):
    rule_id = "hash-iteration"
    description = (
        "iterating sets/frozensets (or bare .keys()) without sorted() makes "
        "downstream order PYTHONHASHSEED-dependent"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        scopes = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]
        for scope in scopes:
            names = _ScopeNames(scope)
            for node in walk_scope(scope):
                findings.extend(self._check_node(module, node, names))
        return findings

    def _check_node(
        self, module: ModuleInfo, node: ast.AST, names: _ScopeNames
    ) -> list[Finding]:
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_WRAPPERS
            and len(node.args) == 1
        ):
            iterables.append(node.args[0])
        findings = []
        for iterable in iterables:
            kind = self._unordered_kind(iterable, names)
            if kind is not None:
                findings.append(
                    module.finding(
                        iterable,
                        self.rule_id,
                        f"iteration over {kind} has no stable order; wrap the "
                        "iterable in sorted(...) (or iterate a list kept in a "
                        "deliberate order)",
                    )
                )
        return findings

    @staticmethod
    def _unordered_kind(node: ast.expr, names: _ScopeNames) -> str | None:
        if _is_set_literalish(node):
            return "a set/frozenset"
        if isinstance(node, ast.Name) and node.id in names.set_names:
            return f"a set/frozenset ({node.id!r})"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        ):
            return ".keys()"
        return None
