"""falsy-zero: ``x or default`` on values where 0 is legitimate.

The online controller's ``duration_s or predicted`` bug: a genuine
0.0-second measurement silently became the model's prediction, because
``or`` cannot tell "absent" from "zero".  Flagged:

* ``name or <expr>`` where ``name`` is a parameter or annotated
  variable of Optional-numeric type (``float | None``, ``Optional[int]``,
  ...) — the value's own contract says 0 is a real value and None is
  the absence marker, so the test must be ``is None``;
* ``<obj>.get(key) or <numeric literal>`` — one-argument ``dict.get``
  returns None for a missing key, and the ``or`` collapses a stored
  0/0.0 into the default.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule, walk_scope
from repro.analysis.findings import Finding

_NUMERIC_NAMES = ("int", "float")


def _is_optional_numeric(annotation: ast.expr | None) -> bool:
    """True for ``float | None`` / ``Optional[int]`` style annotations."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        sides = (annotation.left, annotation.right)
        has_none = any(
            isinstance(s, ast.Constant) and s.value is None for s in sides
        )
        has_numeric = any(
            isinstance(s, ast.Name) and s.id in _NUMERIC_NAMES for s in sides
        ) or any(
            # Nested unions: int | float | None
            _is_optional_numeric(s) or _is_numeric_union(s) for s in sides
        )
        return has_none and has_numeric
    if isinstance(annotation, ast.Subscript) and isinstance(annotation.value, ast.Name):
        if annotation.value.id == "Optional":
            inner = annotation.slice
            return isinstance(inner, ast.Name) and inner.id in _NUMERIC_NAMES
    return False


def _is_numeric_union(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _NUMERIC_NAMES
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_numeric_union(node.left) or _is_numeric_union(node.right)
    return False


def _optional_numeric_names(scope: ast.AST) -> set[str]:
    """Parameter / annotated-variable names of Optional-numeric type."""
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _is_optional_numeric(arg.annotation):
                names.add(arg.arg)
    for node in walk_scope(scope):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_optional_numeric(node.annotation):
                names.add(node.target.id)
    return names


def _is_single_arg_get(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and len(node.args) == 1
        and not node.keywords
    )


def _is_numeric_constant(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


class FalsyZeroRule(Rule):
    rule_id = "falsy-zero"
    description = (
        "`x or default` on Optional-numeric values silently replaces a "
        "legitimate 0/0.0; test `is None` instead"
    )

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        scopes = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]
        for scope in scopes:
            optional_names = _optional_numeric_names(scope)
            for node in walk_scope(scope):
                if not (isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or)):
                    continue
                first = node.values[0]
                if isinstance(first, ast.Name) and first.id in optional_names:
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            f"{first.id!r} is Optional-numeric: `or` replaces a "
                            "legitimate 0/0.0 with the default; use an explicit "
                            "`is None` check",
                        )
                    )
                elif _is_single_arg_get(first) and any(
                    _is_numeric_constant(v) for v in node.values[1:]
                ):
                    findings.append(
                        module.finding(
                            node,
                            self.rule_id,
                            ".get(key) or <number> collapses a stored 0/0.0 into "
                            "the default; use .get(key, default) only if 0 really "
                            "means absent, else an explicit `is None` check",
                        )
                    )
        return findings
