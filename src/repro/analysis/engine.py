"""The rule engine behind ``repro check``.

Each rule is an AST pass over one parsed module (plus an optional
cross-module ``finalize`` for project-wide invariants such as seed-salt
uniqueness).  The engine owns everything rules should not reimplement:
file discovery, parsing, parent links on AST nodes, test-file
classification, inline ``# repro: allow[rule-id]`` suppressions, and
baseline matching.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.findings import Finding

#: Inline suppression: ``# repro: allow[rule-id]`` or
#: ``# repro: allow[rule-a, rule-b]``.  On its own line, the comment
#: covers the following line (for statements with no trailing room).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-zA-Z0-9_\-, ]+)\]")

#: Attribute annotation consumed by the lock-discipline rule:
#: ``self._jobs = {}  # guarded-by: _lock`` (commas list alternates).
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z0-9_,\- ]+)")


class ParentVisitor(ast.NodeVisitor):
    """Annotates every node with ``repro_parent`` for upward walks."""

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child.repro_parent = node  # type: ignore[attr-defined]
        super().generic_visit(node)


def parents(node: ast.AST):
    """The ancestor chain of ``node``, innermost first."""
    current = getattr(node, "repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "repro_parent", None)


def walk_scope(scope: ast.AST):
    """Yield ``scope``'s descendants without entering nested functions.

    ``ast.walk`` has no pruning: skipping a nested ``FunctionDef`` node
    still visits everything inside it, so per-scope rules would report
    each nested finding once per enclosing scope.  This walker treats a
    nested function/lambda as opaque — it is yielded (so a rule can
    recurse deliberately) but its body is not.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: str  # as the user named it (printed in findings)
    rel_path: str  # repo-relative posix form (baseline fingerprints)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    is_test: bool = False

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, node_or_line, rule: str, message: str) -> Finding:
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line, col = node_or_line.lineno, node_or_line.col_offset
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            rel_path=self.rel_path,
            fingerprint=fingerprint(rule, self.rel_path, self.line(line)),
        )

    def allowed_rules(self, lineno: int) -> set[str]:
        """Rule ids suppressed on ``lineno`` by inline allow comments."""
        allowed: set[str] = set()
        for candidate in (lineno, lineno - 1):
            text = self.line(candidate)
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            if candidate == lineno - 1 and not text.lstrip().startswith("#"):
                continue  # only a standalone comment covers the next line
            allowed.update(part.strip() for part in match.group(1).split(","))
        return allowed


class Rule:
    """Base class: one invariant, one stable ``rule_id``."""

    rule_id: str = ""
    description: str = ""
    #: Most invariants are about production determinism/concurrency and
    #: deliberately do not apply to tests (which poke at edge cases).
    applies_to_tests: bool = False

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        return []

    def finalize(self) -> list[Finding]:
        """Cross-module findings, emitted after every file was visited."""
        return []


def _is_test_path(rel_path: str) -> bool:
    parts = Path(rel_path).parts
    name = Path(rel_path).name
    return (
        "tests" in parts
        or name.startswith("test_")
        or name == "conftest.py"
        or name.startswith("bench_")
        or "benchmarks" in parts
    )


class AnalysisEngine:
    """Runs a rule set over a file list and applies suppressions."""

    def __init__(self, rules: list[Rule], root: str | Path | None = None):
        ids = [rule.rule_id for rule in rules]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate rule ids: {sorted(ids)}")
        self.rules = list(rules)
        #: Fingerprint/baseline paths are computed relative to this
        #: directory (the baseline file's home, normally the repo root),
        #: so matching does not depend on the invocation directory.
        self.root = Path(root).resolve() if root is not None else Path.cwd()

    # ------------------------------------------------------------------
    def collect_files(self, paths: list[str]) -> list[str]:
        files: list[str] = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(str(f) for f in sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(str(p))
            else:
                raise FileNotFoundError(f"{path}: not a .py file or directory")
        seen: set[str] = set()
        unique = []
        for f in files:
            resolved = str(Path(f).resolve())
            if resolved not in seen:
                seen.add(resolved)
                unique.append(f)
        return unique

    def load_module(self, path: str) -> ModuleInfo | Finding:
        source = Path(path).read_text()
        try:
            resolved = Path(path).resolve().relative_to(self.root)
            rel_path = resolved.as_posix()
        except ValueError:
            rel_path = Path(path).as_posix()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
                rel_path=rel_path,
                fingerprint=fingerprint("syntax-error", rel_path, ""),
            )
        ParentVisitor().visit(tree)
        return ModuleInfo(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            is_test=_is_test_path(rel_path),
        )

    def check_paths(self, paths: list[str]) -> list[Finding]:
        """All non-suppressed findings from ``paths``, sorted."""
        findings: list[Finding] = []
        for path in self.collect_files(paths):
            loaded = self.load_module(path)
            if isinstance(loaded, Finding):
                findings.append(loaded)
                continue
            for rule in self.rules:
                if loaded.is_test and not rule.applies_to_tests:
                    continue
                for finding in rule.check_module(loaded):
                    allowed = loaded.allowed_rules(finding.line)
                    if finding.rule not in allowed and "*" not in allowed:
                        findings.append(finding)
        for rule in self.rules:
            findings.extend(rule.finalize())
        return sorted(findings)


@dataclass
class CheckResult:
    """Outcome of one ``repro check`` run."""

    new: list[Finding]
    grandfathered: list[Finding]
    stale_baseline: list[dict]
    n_files: int

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def run_check(
    paths: list[str],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
) -> CheckResult:
    """Run the default (or given) rule set and apply the baseline."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    if baseline is None:
        baseline = Baseline.empty()
    if root is None and baseline.path is not None:
        root = Path(baseline.path).resolve().parent
    engine = AnalysisEngine(rules, root=root)
    files = engine.collect_files(paths)
    findings = engine.check_paths(paths)
    new, grandfathered, stale = baseline.split(findings)
    return CheckResult(
        new=new,
        grandfathered=grandfathered,
        stale_baseline=stale,
        n_files=len(files),
    )
