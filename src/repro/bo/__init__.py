"""Bayesian optimization substrate built from scratch on numpy/scipy.

Implements everything LOCAT's DAGP needs (paper section 3.4): Gaussian
process regression with ARD kernels, Latin hypercube start points,
expected improvement, and EI-MCMC (slice-sampling marginalization of the
GP hyper-parameters, following Snoek et al. 2012).
"""

from repro.bo.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.bo.lhs import latin_hypercube
from repro.bo.mcmc import slice_sample_chain, slice_sample_hyperparameters
from repro.bo.optimize import maximize_acquisition

__all__ = [
    "GaussianProcess",
    "Matern52Kernel",
    "RBFKernel",
    "expected_improvement",
    "latin_hypercube",
    "maximize_acquisition",
    "probability_of_improvement",
    "slice_sample_chain",
    "slice_sample_hyperparameters",
    "upper_confidence_bound",
]
