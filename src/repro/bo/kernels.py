"""Covariance kernels for Gaussian process regression.

Kernels expose their hyper-parameters as a flat log-space vector (``theta``)
so the slice sampler in :mod:`repro.bo.mcmc` can treat every kernel
uniformly.  Layout: ``theta = [log signal_variance, log lengthscale_1, ...,
log lengthscale_d]`` (ARD: one lengthscale per input dimension).
"""

from __future__ import annotations

import numpy as np

_SQRT5 = np.sqrt(5.0)


def _sq_dists(x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling."""
    a = x1 / lengthscales
    b = x2 / lengthscales
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    sq = aa + bb - 2.0 * a @ b.T
    return np.maximum(sq, 0.0)


class RBFKernel:
    """Squared-exponential kernel with ARD lengthscales."""

    def __init__(self, dim: int, signal_variance: float = 1.0, lengthscale: float = 0.5):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.signal_variance = float(signal_variance)
        self.lengthscales = np.full(dim, float(lengthscale))

    @property
    def n_params(self) -> int:
        return 1 + self.dim

    def get_theta(self) -> np.ndarray:
        return np.concatenate(([np.log(self.signal_variance)], np.log(self.lengthscales)))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} parameters, got {theta.shape}")
        self.signal_variance = float(np.exp(theta[0]))
        self.lengthscales = np.exp(theta[1:])

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.signal_variance * np.exp(-0.5 * sq)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(x).shape[0], self.signal_variance)

    def clone(self) -> "RBFKernel":
        kernel = RBFKernel(self.dim, self.signal_variance)
        kernel.lengthscales = self.lengthscales.copy()
        return kernel


class Matern52Kernel:
    """Matern 5/2 kernel with ARD lengthscales.

    The standard choice for hyper-parameter/configuration tuning because
    it does not assume the unrealistic infinite smoothness of the RBF
    (Snoek et al. 2012).
    """

    def __init__(self, dim: int, signal_variance: float = 1.0, lengthscale: float = 0.5):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.signal_variance = float(signal_variance)
        self.lengthscales = np.full(dim, float(lengthscale))

    @property
    def n_params(self) -> int:
        return 1 + self.dim

    def get_theta(self) -> np.ndarray:
        return np.concatenate(([np.log(self.signal_variance)], np.log(self.lengthscales)))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} parameters, got {theta.shape}")
        self.signal_variance = float(np.exp(theta[0]))
        self.lengthscales = np.exp(theta[1:])

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        r = np.sqrt(sq)
        term = 1.0 + _SQRT5 * r + (5.0 / 3.0) * sq
        return self.signal_variance * term * np.exp(-_SQRT5 * r)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(x).shape[0], self.signal_variance)

    def clone(self) -> "Matern52Kernel":
        kernel = Matern52Kernel(self.dim, self.signal_variance)
        kernel.lengthscales = self.lengthscales.copy()
        return kernel


def stacked_cross(kernels: list, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Cross-covariances of several same-family ARD kernels in one pass.

    Returns a ``(len(kernels), n1, n2)`` tensor whose slice ``s`` equals
    ``kernels[s](x1, x2)`` exactly: the broadcast computation applies the
    identical per-dimension scaling, distance clipping, and covariance
    formula as the scalar ``__call__`` paths above, so per-slice floats
    match bit for bit.  This is the surrogate engine's vectorized
    multi-model evaluation (:class:`repro.surrogate.stack.ModelStack`):
    one distance tensor serves all of EI-MCMC's hyper-parameter samples
    instead of one kernel build per sampled model.

    Kernels of mixed or unknown families fall back to a per-kernel loop
    (still exact, just not batched).
    """
    proto = kernels[0]
    if not isinstance(proto, (RBFKernel, Matern52Kernel)) or not all(
        type(k) is type(proto) for k in kernels
    ):
        return np.stack([k(x1, x2) for k in kernels])
    x1 = np.atleast_2d(x1)
    x2 = np.atleast_2d(x2)
    ls = np.stack([k.lengthscales for k in kernels])  # (S, d)
    sv = np.array([k.signal_variance for k in kernels])  # (S,)
    a = x1[None, :, :] / ls[:, None, :]  # (S, n1, d)
    b = x2[None, :, :] / ls[:, None, :]  # (S, n2, d)
    aa = np.sum(a * a, axis=2)[:, :, None]
    bb = np.sum(b * b, axis=2)[:, None, :]
    sq = np.maximum(aa + bb - 2.0 * np.matmul(a, b.transpose(0, 2, 1)), 0.0)
    if isinstance(proto, RBFKernel):
        return sv[:, None, None] * np.exp(-0.5 * sq)
    r = np.sqrt(sq)
    term = 1.0 + _SQRT5 * r + (5.0 / 3.0) * sq
    return sv[:, None, None] * term * np.exp(-_SQRT5 * r)
