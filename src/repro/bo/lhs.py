"""Latin hypercube sampling.

LOCAT starts BO with three LHS samples (paper section 3.4, "Start
points").  LHS stratifies every dimension into ``n`` equal bins and
places exactly one sample per bin per dimension, giving far better
space-filling than iid uniform sampling for small ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.stats.sampling import ensure_rng


def latin_hypercube(
    n: int,
    dim: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """``n`` LHS points in the unit hypercube ``[0, 1]^dim``.

    Each column is an independent random permutation of the ``n`` strata
    with uniform jitter inside each stratum.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if dim <= 0:
        raise ValueError("dim must be positive")
    gen = ensure_rng(rng)
    samples = np.empty((n, dim), dtype=float)
    strata = (np.arange(n, dtype=float) + 0.0) / n
    for j in range(dim):
        jitter = gen.random(n) / n
        samples[:, j] = gen.permutation(strata) + jitter
    return np.clip(samples, 0.0, 1.0)
