"""Slice sampling over GP hyper-parameters (the "MCMC" of EI-MCMC).

LOCAT uses expected improvement with MCMC hyper-parameter
marginalization (Snoek et al. 2012): instead of optimizing the GP
hyper-parameters to a point estimate, acquisition values are averaged
over posterior samples of the hyper-parameters, which removes the need
for external GP tuning (paper section 3.4, "Acquisition function").

The sampler is univariate slice sampling with step-out, applied
coordinate-wise to the log hyper-parameter vector, under independent
Gaussian priors in log space.

Two engine-level properties of this implementation:

* **No GP mutation.**  Posterior evaluations go through the GP's
  non-mutating, per-theta memoized ``log_marginal_likelihood`` — the
  chain never refactorizes the model's own state, and re-evaluating the
  current chain state (once per coordinate update) is a cache hit.
* **Warm starts.**  :func:`slice_sample_chain` accepts the final state
  of a previous chain (``initial_theta``) and returns its own final
  state.  A surrogate that extends its training set by one observation
  between BO iterations resumes the chain near the posterior mode, so
  the burn-in can be slashed from tens of steps to a handful (see
  :class:`repro.core.dagp.DatasizeAwareGP`'s incremental path).
"""

from __future__ import annotations

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.stats.sampling import ensure_rng

#: Prior over each log hyper-parameter: N(mean, std^2) in log space.
_PRIOR_MEAN = -1.0
_PRIOR_STD = 2.0


def _log_prior(theta: np.ndarray) -> float:
    z = (theta - _PRIOR_MEAN) / _PRIOR_STD
    return float(-0.5 * np.sum(z * z))


def _log_posterior(gp: GaussianProcess, theta: np.ndarray) -> float:
    try:
        lml = gp.log_marginal_likelihood(theta)
    except np.linalg.LinAlgError:
        return -np.inf
    if not np.isfinite(lml):
        return -np.inf
    return lml + _log_prior(theta)


def _slice_sample_coordinate(
    gp: GaussianProcess,
    theta: np.ndarray,
    index: int,
    rng: np.random.Generator,
    width: float = 1.0,
    max_steps: int = 8,
) -> np.ndarray:
    """One univariate slice-sampling update of ``theta[index]``."""
    log_p0 = _log_posterior(gp, theta)
    log_y = log_p0 + np.log(max(rng.random(), 1e-300))

    left = theta.copy()
    right = theta.copy()
    offset = rng.random() * width
    left[index] = theta[index] - offset
    right[index] = theta[index] + (width - offset)

    for _ in range(max_steps):  # step out
        if _log_posterior(gp, left) <= log_y:
            break
        left[index] -= width
    for _ in range(max_steps):
        if _log_posterior(gp, right) <= log_y:
            break
        right[index] += width

    proposal = theta.copy()
    for _ in range(32):  # shrink
        proposal[index] = rng.uniform(left[index], right[index])
        if _log_posterior(gp, proposal) > log_y:
            return proposal
        if proposal[index] < theta[index]:
            left[index] = proposal[index]
        else:
            right[index] = proposal[index]
    return theta  # degenerate slice: keep the current point


def slice_sample_chain(
    gp: GaussianProcess,
    n_samples: int = 10,
    burn_in: int = 20,
    thin: int = 2,
    rng: int | np.random.Generator | None = None,
    initial_theta: np.ndarray | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Run one slice-sampling chain; returns ``(samples, final_state)``.

    ``initial_theta`` warm-starts the chain (defaults to the GP's
    current hyper-parameters); the returned ``final_state`` is the
    chain's last state, which a later call can resume from with a much
    smaller ``burn_in``.  The GP is never mutated.

    The chain runs ``burn_in + n_samples * thin`` coordinate updates and
    collects every ``thin``-th state after burn-in.  If that schedule
    ever yields fewer than ``n_samples`` (it cannot under the standard
    arithmetic, but the guard used to pad with *duplicates* of the last
    state), the chain is simply run further — every returned sample is a
    genuinely fresh chain state, deterministically under the same seed.
    """
    if not gp.is_fitted:
        raise RuntimeError("GP must be fitted before sampling hyper-parameters")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if thin < 1:
        raise ValueError("thin must be at least 1")
    if burn_in < 0:
        raise ValueError("burn_in must be non-negative")
    gen = ensure_rng(rng)
    if initial_theta is None:
        theta = gp.get_theta().copy()
    else:
        theta = np.asarray(initial_theta, dtype=float).copy()
        if theta.shape != (gp.n_hyperparameters,):
            raise ValueError(f"initial_theta must have {gp.n_hyperparameters} entries")
    samples: list[np.ndarray] = []

    def advance() -> None:
        nonlocal theta
        index = int(gen.integers(0, theta.shape[0]))
        theta = _slice_sample_coordinate(gp, theta, index, gen)

    total = burn_in + n_samples * thin
    for step in range(total):
        advance()
        if step >= burn_in and (step - burn_in) % thin == 0:
            samples.append(theta.copy())
    while len(samples) < n_samples:  # extend the chain if thinning undershot
        for _ in range(thin):
            advance()
        samples.append(theta.copy())
    return samples[:n_samples], theta.copy()


def slice_sample_hyperparameters(
    gp: GaussianProcess,
    n_samples: int = 10,
    burn_in: int = 20,
    thin: int = 2,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Posterior samples of the GP hyper-parameter vector.

    Returns ``n_samples`` log-space vectors; the chain starts from the
    GP's current hyper-parameters and the GP's state is never touched.
    Thin wrapper over :func:`slice_sample_chain` for callers that do not
    track warm-start state.
    """
    samples, _ = slice_sample_chain(
        gp, n_samples=n_samples, burn_in=burn_in, thin=thin, rng=rng
    )
    return samples
