"""Slice sampling over GP hyper-parameters (the "MCMC" of EI-MCMC).

LOCAT uses expected improvement with MCMC hyper-parameter
marginalization (Snoek et al. 2012): instead of optimizing the GP
hyper-parameters to a point estimate, acquisition values are averaged
over posterior samples of the hyper-parameters, which removes the need
for external GP tuning (paper section 3.4, "Acquisition function").

The sampler is univariate slice sampling with step-out, applied
coordinate-wise to the log hyper-parameter vector, under independent
Gaussian priors in log space.
"""

from __future__ import annotations

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.stats.sampling import ensure_rng

#: Prior over each log hyper-parameter: N(mean, std^2) in log space.
_PRIOR_MEAN = -1.0
_PRIOR_STD = 2.0


def _log_prior(theta: np.ndarray) -> float:
    z = (theta - _PRIOR_MEAN) / _PRIOR_STD
    return float(-0.5 * np.sum(z * z))


def _log_posterior(gp: GaussianProcess, theta: np.ndarray) -> float:
    try:
        lml = gp.log_marginal_likelihood(theta)
    except np.linalg.LinAlgError:
        return -np.inf
    if not np.isfinite(lml):
        return -np.inf
    return lml + _log_prior(theta)


def _slice_sample_coordinate(
    gp: GaussianProcess,
    theta: np.ndarray,
    index: int,
    rng: np.random.Generator,
    width: float = 1.0,
    max_steps: int = 8,
) -> np.ndarray:
    """One univariate slice-sampling update of ``theta[index]``."""
    log_p0 = _log_posterior(gp, theta)
    log_y = log_p0 + np.log(max(rng.random(), 1e-300))

    left = theta.copy()
    right = theta.copy()
    offset = rng.random() * width
    left[index] = theta[index] - offset
    right[index] = theta[index] + (width - offset)

    for _ in range(max_steps):  # step out
        if _log_posterior(gp, left) <= log_y:
            break
        left[index] -= width
    for _ in range(max_steps):
        if _log_posterior(gp, right) <= log_y:
            break
        right[index] += width

    proposal = theta.copy()
    for _ in range(32):  # shrink
        proposal[index] = rng.uniform(left[index], right[index])
        if _log_posterior(gp, proposal) > log_y:
            return proposal
        if proposal[index] < theta[index]:
            left[index] = proposal[index]
        else:
            right[index] = proposal[index]
    return theta  # degenerate slice: keep the current point


def slice_sample_hyperparameters(
    gp: GaussianProcess,
    n_samples: int = 10,
    burn_in: int = 20,
    thin: int = 2,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Posterior samples of the GP hyper-parameter vector.

    Returns ``n_samples`` log-space vectors; the GP's state is restored
    afterwards.  The chain starts from the GP's current hyper-parameters.
    """
    if not gp.is_fitted:
        raise RuntimeError("GP must be fitted before sampling hyper-parameters")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    gen = ensure_rng(rng)
    saved = gp.get_theta()
    theta = saved.copy()
    samples: list[np.ndarray] = []
    total = burn_in + n_samples * thin
    try:
        for step in range(total):
            index = int(gen.integers(0, theta.shape[0]))
            theta = _slice_sample_coordinate(gp, theta, index, gen)
            if step >= burn_in and (step - burn_in) % thin == 0:
                samples.append(theta.copy())
    finally:
        gp.set_theta(saved)
    while len(samples) < n_samples:  # pad if thinning undershot
        samples.append(theta.copy())
    return samples[:n_samples]
