"""Acquisition functions for minimization-oriented BO.

All functions take posterior means/stds at candidate points and the best
(lowest) observed value, and return scores to *maximize*.  ``xi`` is the
usual exploration offset.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

#: ``scipy.stats.norm`` dispatches every ``cdf``/``pdf`` call through the
#: generic rv_continuous machinery (argument reduction, broadcasting,
#: bounds handling) — measurable overhead on the BO hot path, which
#: scores thousands of candidates per iteration.  ``ndtr`` and the
#: explicit density below are the exact computations norm.cdf/norm.pdf
#: bottom out in, so the results are bit-identical.
_PDF_NORMALIZER = np.sqrt(2.0 * np.pi)


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-(z**2) / 2.0) / _PDF_NORMALIZER


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: float,
    xi: float = 0.0,
) -> np.ndarray:
    """EI for minimization: ``E[max(best - f(x) - xi, 0)]``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    return improvement * ndtr(z) + std * _norm_pdf(z)


def probability_of_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: float,
    xi: float = 0.0,
) -> np.ndarray:
    """PI for minimization: ``P(f(x) < best - xi)``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return ndtr((best - mean - xi) / std)


def constant_liar(observed: np.ndarray, strategy: str = "min") -> float:
    """The "lie" value for constant-liar batch (q-EI) proposals.

    Greedy batch construction (Ginsbourger et al.) pretends each pending
    point has already returned ``lie`` and refits the surrogate before
    picking the next point.  For minimization, ``"min"`` (lie = best
    observed value) is the optimistic liar: the surrogate mean near a
    pending point drops to the incumbent, EI there collapses, and the
    next proposal is pushed toward genuinely new regions.  ``"mean"``
    and ``"max"`` are the usual milder/pessimistic variants.
    """
    observed = np.asarray(observed, dtype=float).ravel()
    if observed.size == 0:
        raise ValueError("constant_liar needs at least one observation")
    if strategy == "min":
        return float(np.min(observed))
    if strategy == "mean":
        return float(np.mean(observed))
    if strategy == "max":
        return float(np.max(observed))
    raise ValueError(f"unknown constant-liar strategy {strategy!r}")


def upper_confidence_bound(
    mean: np.ndarray,
    std: np.ndarray,
    best: float = 0.0,
    kappa: float = 2.0,
) -> np.ndarray:
    """GP-LCB for minimization, negated so callers always maximize.

    ``best`` is accepted (and ignored) so all acquisition functions share
    one signature.
    """
    del best
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    return -(mean - kappa * std)
