"""Acquisition maximization over the unit hypercube.

A two-phase scheme: dense random candidates (plus perturbations of the
incumbent optimum) scored in one vectorized pass, followed by a short
coordinate-descent refinement of the best candidate.  This is robust for
the modest dimensionalities LOCAT searches (a handful of KPCA components
plus the datasize coordinate).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.stats.sampling import ensure_rng


def maximize_acquisition(
    score: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n_candidates: int = 512,
    anchors: np.ndarray | None = None,
    refine_steps: int = 20,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, float]:
    """Maximize ``score`` (vectorized over rows) on ``[0, 1]^dim``.

    ``anchors`` are promising points (e.g. the best configurations seen);
    Gaussian perturbations around them join the random candidate pool so
    exploitation near the incumbent is always represented.
    """
    if dim <= 0:
        raise ValueError("dim must be positive")
    gen = ensure_rng(rng)

    pools = [gen.random((n_candidates, dim))]
    if anchors is not None and len(anchors) > 0:
        anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
        repeats = max(1, n_candidates // (4 * anchors.shape[0]))
        jitter = gen.normal(0.0, 0.08, size=(anchors.shape[0] * repeats, dim))
        pools.append(np.clip(np.repeat(anchors, repeats, axis=0) + jitter, 0.0, 1.0))
    candidates = np.vstack(pools)

    values = np.asarray(score(candidates), dtype=float)
    best_index = int(np.argmax(values))
    best_x = candidates[best_index].copy()
    best_v = float(values[best_index])

    # Coordinate refinement with a shrinking step.  Each sweep scores all
    # 2*dim single-coordinate perturbations in one vectorized call.
    step = 0.1
    for _ in range(refine_steps):
        trials = np.repeat(best_x[None, :], 2 * dim, axis=0)
        rows = np.arange(dim)
        trials[rows, rows] = np.clip(trials[rows, rows] + step, 0.0, 1.0)
        trials[dim + rows, rows] = np.clip(trials[dim + rows, rows] - step, 0.0, 1.0)
        trial_values = np.asarray(score(trials), dtype=float)
        top = int(np.argmax(trial_values))
        if trial_values[top] > best_v:
            best_x = trials[top].copy()
            best_v = float(trial_values[top])
        else:
            step *= 0.5
            if step < 1e-3:
                break
    return best_x, best_v


def propose_batch(
    score_for: Callable[[list[np.ndarray]], Callable[[np.ndarray], np.ndarray]],
    dim: int,
    q: int,
    n_candidates: int = 512,
    anchors: np.ndarray | None = None,
    refine_steps: int = 20,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedily propose ``q`` points for one concurrent evaluation batch.

    ``score_for(pending)`` must return the acquisition function to
    maximize given the unit points already chosen for this batch —
    typically a constant-liar surrogate refit (see
    :func:`repro.bo.acquisition.constant_liar`).  With an empty
    ``pending`` it must be the true acquisition, so the first returned
    value is the exact single-point EI maximum and batch callers can
    apply their stop rule to it unchanged.

    Returns ``(points, values)``: a ``(q, dim)`` array of unit points
    and the acquisition value each maximization achieved.
    """
    if q < 1:
        raise ValueError("q must be at least 1")
    batch: list[np.ndarray] = []
    values: list[float] = []
    for _ in range(q):
        score = score_for(list(batch))
        point, value = maximize_acquisition(
            score,
            dim,
            n_candidates=n_candidates,
            anchors=anchors,
            refine_steps=refine_steps,
            rng=rng,
        )
        batch.append(point)
        values.append(float(value))
    return np.stack(batch), np.asarray(values)
