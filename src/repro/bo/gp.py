"""Gaussian process regression (paper equations (8)-(10)).

The GP models the (standardized) objective with a zero mean and a chosen
covariance kernel plus observation noise.  Prediction follows equation
(10): posterior mean ``K*^T (K + s^2 I)^-1 y`` and covariance
``K** - K*^T (K + s^2 I)^-1 K*`` computed via Cholesky factorization.

The class implements the surrogate-engine lifecycle
(:class:`repro.surrogate.protocol.Surrogate`): besides ``fit`` /
``predict`` it supports ``extend`` — an algebraically exact O(n^2 k)
rank-k append of new observations (the covariance factor grows by the
block-Cholesky formula, targets are re-standardized, and only the
O(n^2) ``alpha`` solve is redone) — and a memoized, *non-mutating*
``log_marginal_likelihood(theta)``: evaluating the LML at a candidate
hyper-parameter vector builds a throwaway factorization instead of
refactorizing the model twice (set + restore), and repeated evaluations
at bit-identical thetas (the common case inside univariate slice
sampling) return the cached float.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky

from repro.bo.acquisition import expected_improvement
from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.surrogate.incremental import LMLCache, cholesky_append, cholesky_downdate

_JITTER = 1e-8


class GaussianProcess:
    """GP regressor with internal target standardization.

    ``noise_variance`` is expressed in *standardized* target units; the
    default 1e-4 matches a few-percent measurement noise on execution
    times.  Hyper-parameters live in the kernel plus ``log_noise``, and
    the combined vector used by MCMC is
    ``[kernel theta..., log noise_variance]``.

    ``fit`` optionally takes per-observation *extra* noise variances
    (also in standardized units), added on top of ``noise_variance`` on
    the covariance diagonal.  This is the heteroscedastic hook the
    transfer prior uses: low-fidelity observations borrowed from another
    application carry inflated noise so they shape the posterior without
    ever outvoting the target's own data.  The extra noise is training
    data, not a hyper-parameter — MCMC never resamples it.
    """

    def __init__(self, kernel: RBFKernel | Matern52Kernel, noise_variance: float = 1e-4):
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self._x: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._extra_noise: np.ndarray | None = None
        self._chol = None
        self._chol_lower: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._lml_cache = LMLCache()

    # ------------------------------------------------------------------
    # Fitting and prediction
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    # Read-only views for the engine (ModelStack builds per-sample
    # factorizations over the same training set).
    @property
    def training_inputs(self) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("GP is not fitted")
        return self._x

    @property
    def standardized_targets(self) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("GP is not fitted")
        return self._y

    @property
    def target_mean(self) -> float:
        return self._y_mean

    @property
    def target_std(self) -> float:
        return self._y_std

    @property
    def extra_noise_vector(self) -> np.ndarray | None:
        return self._extra_noise

    @property
    def chol_lower(self) -> np.ndarray:
        """The (clean) lower Cholesky factor of the training covariance."""
        if self._chol_lower is None:
            raise RuntimeError("GP is not fitted")
        return self._chol_lower

    @staticmethod
    def _validate_extra_noise(extra_noise, n_rows: int) -> np.ndarray | None:
        if extra_noise is None:
            return None
        extra_noise = np.asarray(extra_noise, dtype=float).ravel()
        if extra_noise.shape[0] != n_rows:
            raise ValueError("extra_noise must have one value per observation")
        if np.any(extra_noise < 0) or not np.all(np.isfinite(extra_noise)):
            raise ValueError("extra_noise must be finite and non-negative")
        return extra_noise

    def _validate_xy(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[1] != self.kernel.dim:
            raise ValueError(f"kernel expects dim {self.kernel.dim}, got {x.shape[1]}")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("training data contains non-finite values")
        return x, y

    def _standardize(self, y_raw: np.ndarray) -> None:
        self._y_raw = y_raw
        self._y_mean = float(np.mean(y_raw))
        self._y_std = float(np.std(y_raw))
        if self._y_std < 1e-12:
            self._y_std = 1.0
        self._y = (y_raw - self._y_mean) / self._y_std

    def fit(
        self, x: np.ndarray, y: np.ndarray, extra_noise: np.ndarray | None = None
    ) -> "GaussianProcess":
        """Fit on (x, y); ``extra_noise`` is optional per-row additional
        noise variance (standardized units, non-negative) added to the
        covariance diagonal — zero rows behave exactly as before."""
        x, y = self._validate_xy(x, y)
        self._extra_noise = self._validate_extra_noise(extra_noise, y.shape[0])
        self._x = x
        self._standardize(y)
        self._refactor()
        self._lml_cache.clear()
        return self

    def extend(
        self, x: np.ndarray, y: np.ndarray, extra_noise: np.ndarray | None = None
    ) -> "GaussianProcess":
        """Append observations without a from-scratch refit.

        Algebraically exact: the covariance factor grows by the block
        (rank-k) Cholesky update at the current hyper-parameters, the
        target standardization is recomputed over the concatenated
        targets (the covariance is target-free, so only the O(n^2)
        ``alpha`` solve depends on it), and the posterior equals a
        ``fit`` on the concatenated data up to floating-point round-off.
        Cost: O(n^2 k) for k new rows instead of O((n+k)^3).

        On an unfitted model this simply delegates to :meth:`fit`.
        """
        if not self.is_fitted:
            return self.fit(x, y, extra_noise=extra_noise)
        x, y = self._validate_xy(x, y)
        extra_new = self._validate_extra_noise(extra_noise, y.shape[0])
        if self._extra_noise is None and extra_new is None:
            extra_all = None
        else:
            extra_all = np.concatenate([
                self._extra_noise if self._extra_noise is not None else np.zeros(self.n_samples),
                extra_new if extra_new is not None else np.zeros(y.shape[0]),
            ])

        k_cross = self.kernel(self._x, x)
        k_new = self.kernel(x, x)
        k_new[np.diag_indices_from(k_new)] += self.noise_variance + _JITTER
        if extra_new is not None:
            k_new[np.diag_indices_from(k_new)] += extra_new
        self._chol_lower = cholesky_append(self._chol_lower, k_cross, k_new)
        self._chol = (self._chol_lower, True)
        self._x = np.vstack([self._x, x])
        self._extra_noise = extra_all
        self._standardize(np.concatenate([self._y_raw, y]))
        self._alpha = cho_solve(self._chol, self._y, check_finite=False)
        self._lml_cache.clear()
        return self

    def remove_rows(self, indices) -> "GaussianProcess":
        """Delete observations without a from-scratch refit.

        The covariance factor shrinks by one O(n^2) Cholesky downdate
        per removed row, the target standardization is recomputed over
        the remaining targets, and the posterior equals a ``fit`` on the
        reduced data up to floating-point round-off.  ``indices`` refer
        to the current training matrix; duplicates are ignored.
        """
        if not self.is_fitted:
            raise RuntimeError("remove_rows() called before fit()")
        idx = sorted({int(i) % self.n_samples for i in np.atleast_1d(indices)})
        if not idx:
            return self
        if len(idx) >= self.n_samples:
            raise ValueError("cannot remove every training row")
        # Remove from the highest index down so lower indices stay valid.
        for i in reversed(idx):
            self._chol_lower = cholesky_downdate(self._chol_lower, i)
        self._chol = (self._chol_lower, True)
        keep = np.ones(self.n_samples, dtype=bool)
        keep[idx] = False
        self._x = self._x[keep]
        if self._extra_noise is not None:
            self._extra_noise = self._extra_noise[keep]
        self._standardize(self._y_raw[keep])
        self._alpha = cho_solve(self._chol, self._y, check_finite=False)
        self._lml_cache.clear()
        return self

    def drop_oldest(self, k: int = 1) -> "GaussianProcess":
        """Remove the ``k`` earliest observations (sliding-window step)."""
        if k <= 0:
            return self
        return self.remove_rows(range(min(k, max(self.n_samples - 1, 0))))

    def lml_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the per-theta LML memo."""
        return self._lml_cache.stats()

    def _refactor(self) -> None:
        """Recompute the Cholesky factor for the current hyper-parameters."""
        assert self._x is not None and self._y is not None
        k = self.kernel(self._x, self._x)
        k[np.diag_indices_from(k)] += self.noise_variance + _JITTER
        if self._extra_noise is not None:
            k[np.diag_indices_from(k)] += self._extra_noise
        self._chol_lower = cholesky(k, lower=True, check_finite=False)
        self._chol = (self._chol_lower, True)
        self._alpha = cho_solve(self._chol, self._y, check_finite=False)

    def predict(self, x_star: np.ndarray, return_std: bool = True):
        """Posterior mean (and optionally standard deviation) at ``x_star``.

        Outputs are de-standardized back to raw target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)
        mean = k_star.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, k_star, check_finite=False)
        var = self.kernel.diag(x_star) + self.noise_variance - np.sum(k_star * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    def acquisition(self, x_star: np.ndarray, best: float, xi: float = 0.0) -> np.ndarray:
        """Expected improvement (to maximize) against the incumbent ``best``."""
        mean, std = self.predict(x_star)
        return expected_improvement(mean, std, best, xi=xi)

    # ------------------------------------------------------------------
    # Hyper-parameters (for EI-MCMC)
    # ------------------------------------------------------------------
    @property
    def n_hyperparameters(self) -> int:
        return self.kernel.n_params + 1

    def get_theta(self) -> np.ndarray:
        return np.concatenate((self.kernel.get_theta(), [np.log(self.noise_variance)]))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_hyperparameters,):
            raise ValueError(f"expected {self.n_hyperparameters} hyper-parameters")
        self.kernel.set_theta(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))
        if self.is_fitted:
            self._refactor()

    def _lml_from(self, lower: np.ndarray, alpha: np.ndarray) -> float:
        assert self._y is not None
        log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
        n = self._y.shape[0]
        return float(-0.5 * self._y @ alpha - 0.5 * log_det - 0.5 * n * np.log(2.0 * np.pi))

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        """LML of the (standardized) training targets.

        With ``theta`` given, evaluates at those hyper-parameters
        *without touching the model state*: a temporary kernel and
        factorization are built instead of mutating and restoring the
        model (which used to cost two refactorizations per evaluation).
        Results are memoized per exact theta until the training data
        changes, so slice sampling's repeated evaluations at the current
        chain state are free — and return bit-identical floats.
        """
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() called before fit()")
        if theta is None:
            assert self._chol is not None and self._alpha is not None
            return self._lml_from(self._chol[0], self._alpha)
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_hyperparameters,):
            raise ValueError(f"expected {self.n_hyperparameters} hyper-parameters")
        cached = self._lml_cache.get(theta)
        if cached is not None:
            return cached
        kernel = self.kernel.clone()
        kernel.set_theta(theta[:-1])
        noise = float(np.exp(theta[-1]))
        k = kernel(self._x, self._x)
        k[np.diag_indices_from(k)] += noise + _JITTER
        if self._extra_noise is not None:
            k[np.diag_indices_from(k)] += self._extra_noise
        chol = cho_factor(k, lower=True, check_finite=False)
        alpha = cho_solve(chol, self._y, check_finite=False)
        value = self._lml_from(chol[0], alpha)
        self._lml_cache.put(theta, value)
        return value

    def clone_with_theta(self, theta: np.ndarray) -> "GaussianProcess":
        """An independent fitted copy at the given hyper-parameters."""
        gp = GaussianProcess(self.kernel.clone(), self.noise_variance)
        if self.is_fitted:
            gp.fit(self._x, self._y_raw, extra_noise=self._extra_noise)
        gp.set_theta(np.asarray(theta, dtype=float))
        return gp

    def shallow_copy(self) -> "GaussianProcess":
        """A cheap copy sharing training arrays but with independent state.

        The copy can be :meth:`extend`-ed without touching this model:
        ``extend`` rebinds (never mutates) the training arrays, the
        kernel is cloned, and the copy gets its own LML cache.  This is
        what constant-liar batch proposals build their "pretend"
        surrogates from — one exact rank-1 extend per lie instead of a
        from-scratch refit per pending point.
        """
        copy = GaussianProcess(self.kernel.clone(), self.noise_variance)
        copy._x = self._x
        copy._y_raw = self._y_raw
        copy._y = self._y
        copy._y_mean = self._y_mean
        copy._y_std = self._y_std
        copy._extra_noise = self._extra_noise
        copy._chol = self._chol
        copy._chol_lower = self._chol_lower
        copy._alpha = self._alpha
        return copy
