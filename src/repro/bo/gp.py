"""Gaussian process regression (paper equations (8)-(10)).

The GP models the (standardized) objective with a zero mean and a chosen
covariance kernel plus observation noise.  Prediction follows equation
(10): posterior mean ``K*^T (K + s^2 I)^-1 y`` and covariance
``K** - K*^T (K + s^2 I)^-1 K*`` computed via Cholesky factorization.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky

from repro.bo.kernels import Matern52Kernel, RBFKernel

_JITTER = 1e-8


class GaussianProcess:
    """GP regressor with internal target standardization.

    ``noise_variance`` is expressed in *standardized* target units; the
    default 1e-4 matches a few-percent measurement noise on execution
    times.  Hyper-parameters live in the kernel plus ``log_noise``, and
    the combined vector used by MCMC is
    ``[kernel theta..., log noise_variance]``.

    ``fit`` optionally takes per-observation *extra* noise variances
    (also in standardized units), added on top of ``noise_variance`` on
    the covariance diagonal.  This is the heteroscedastic hook the
    transfer prior uses: low-fidelity observations borrowed from another
    application carry inflated noise so they shape the posterior without
    ever outvoting the target's own data.  The extra noise is training
    data, not a hyper-parameter — MCMC never resamples it.
    """

    def __init__(self, kernel: RBFKernel | Matern52Kernel, noise_variance: float = 1e-4):
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self._x: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._extra_noise: np.ndarray | None = None
        self._chol = None
        self._alpha: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting and prediction
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(
        self, x: np.ndarray, y: np.ndarray, extra_noise: np.ndarray | None = None
    ) -> "GaussianProcess":
        """Fit on (x, y); ``extra_noise`` is optional per-row additional
        noise variance (standardized units, non-negative) added to the
        covariance diagonal — zero rows behave exactly as before."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[1] != self.kernel.dim:
            raise ValueError(f"kernel expects dim {self.kernel.dim}, got {x.shape[1]}")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("training data contains non-finite values")
        if extra_noise is not None:
            extra_noise = np.asarray(extra_noise, dtype=float).ravel()
            if extra_noise.shape[0] != y.shape[0]:
                raise ValueError("extra_noise must have one value per observation")
            if np.any(extra_noise < 0) or not np.all(np.isfinite(extra_noise)):
                raise ValueError("extra_noise must be finite and non-negative")
        self._extra_noise = extra_noise
        self._x = x
        self._y_raw = y
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y))
        if self._y_std < 1e-12:
            self._y_std = 1.0
        self._y = (y - self._y_mean) / self._y_std
        self._refactor()
        return self

    def _refactor(self) -> None:
        """Recompute the Cholesky factor for the current hyper-parameters."""
        assert self._x is not None and self._y is not None
        k = self.kernel(self._x, self._x)
        k[np.diag_indices_from(k)] += self.noise_variance + _JITTER
        if self._extra_noise is not None:
            k[np.diag_indices_from(k)] += self._extra_noise
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, self._y)

    def predict(self, x_star: np.ndarray, return_std: bool = True):
        """Posterior mean (and optionally standard deviation) at ``x_star``.

        Outputs are de-standardized back to raw target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)
        mean = k_star.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, k_star)
        var = self.kernel.diag(x_star) + self.noise_variance - np.sum(k_star * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    # ------------------------------------------------------------------
    # Hyper-parameters (for EI-MCMC)
    # ------------------------------------------------------------------
    @property
    def n_hyperparameters(self) -> int:
        return self.kernel.n_params + 1

    def get_theta(self) -> np.ndarray:
        return np.concatenate((self.kernel.get_theta(), [np.log(self.noise_variance)]))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_hyperparameters,):
            raise ValueError(f"expected {self.n_hyperparameters} hyper-parameters")
        self.kernel.set_theta(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))
        if self.is_fitted:
            self._refactor()

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        """LML of the (standardized) training targets.

        With ``theta`` given, evaluates at those hyper-parameters without
        permanently changing the model state.
        """
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() called before fit()")
        if theta is not None:
            saved = self.get_theta()
            try:
                self.set_theta(np.asarray(theta, dtype=float))
                return self.log_marginal_likelihood()
            finally:
                self.set_theta(saved)
        assert self._chol is not None and self._alpha is not None and self._y is not None
        lower = self._chol[0]
        log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
        n = self._y.shape[0]
        return float(-0.5 * self._y @ self._alpha - 0.5 * log_det - 0.5 * n * np.log(2.0 * np.pi))

    def clone_with_theta(self, theta: np.ndarray) -> "GaussianProcess":
        """An independent fitted copy at the given hyper-parameters."""
        gp = GaussianProcess(self.kernel.clone(), self.noise_variance)
        if self.is_fitted:
            gp.fit(self._x, self._y_raw, extra_noise=self._extra_noise)
        gp.set_theta(np.asarray(theta, dtype=float))
        return gp
