"""Reproduction of LOCAT (SIGMOD 2022).

LOCAT: Low-Overhead Online Configuration Auto-Tuning of Spark SQL
Applications — Jinhan Xin, Kai Hwang, Zhibin Yu.

Public entry points:

* :class:`repro.LOCAT` — the tuner (QCSA + IICP + DAGP).
* :func:`repro.sparksim.get_application` — TPC-DS / TPC-H / HiBench apps.
* :class:`repro.sparksim.SparkSQLSimulator` — the cluster substrate.
* :mod:`repro.baselines` — Tuneful, DAC, GBO-RL, QTune.
* :mod:`repro.harness.figures` — one driver per paper figure/table.
"""

from repro.core import LOCAT
from repro.sparksim import (
    SparkSQLSimulator,
    arm_cluster,
    get_application,
    x86_cluster,
)

__version__ = "1.0.0"

__all__ = [
    "LOCAT",
    "SparkSQLSimulator",
    "__version__",
    "arm_cluster",
    "get_application",
    "x86_cluster",
]
