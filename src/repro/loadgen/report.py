"""Turning request records into the canonical load report.

The reporting shape follows the topology-scale replication convention:
one ``run_table.csv`` with a row per swept configuration and the
columns ``throughput_rps`` / ``p95_latency_ms`` / ``failure_rate`` (plus
context columns), so successive PRs can diff the service's perf curve
directly.

``observe_throughput_rps`` counts *observations landed per second* —
a batched request carrying 32 observations contributes 32 — because
ingest capacity is what sharding is supposed to scale; plain
``throughput_rps`` counts requests.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

from repro.loadgen.driver import RequestRecord

#: Column order of ``run_table.csv``.
RUN_TABLE_COLUMNS = (
    "mode",
    "workers",
    "tenants",
    "clients",
    "batch_size",
    "mix",
    "duration_s",
    "requests",
    "throughput_rps",
    "observe_throughput_rps",
    "p50_latency_ms",
    "p95_latency_ms",
    "p99_latency_ms",
    "failure_rate",
    "rejected_rate",
)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[rank - 1]


@dataclass(frozen=True)
class LoadSummary:
    """Aggregate view of one measured load window."""

    requests: int
    window_s: float
    throughput_rps: float
    observe_throughput_rps: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    failure_rate: float
    rejected_rate: float
    by_op: dict[str, int]

    def to_json(self) -> dict:
        return {
            "requests": self.requests,
            "window_s": self.window_s,
            "throughput_rps": self.throughput_rps,
            "observe_throughput_rps": self.observe_throughput_rps,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "failure_rate": self.failure_rate,
            "rejected_rate": self.rejected_rate,
            "by_op": dict(self.by_op),
        }


def summarize(
    records: list[RequestRecord], duration_s: float, warmup_s: float = 0.0
) -> LoadSummary:
    """Aggregate a run, discarding the first ``warmup_s`` of requests.

    Warmup trimming drops the window in which connection pools fill and
    caches warm; rates are computed over the remaining window
    (``duration_s - warmup_s``), not over the span of surviving
    requests, so an idle tail counts against throughput.
    """
    if warmup_s >= duration_s:
        raise ValueError(f"warmup ({warmup_s}s) must be shorter than the run ({duration_s}s)")
    kept = [record for record in records if record.scheduled_at >= warmup_s]
    window = duration_s - warmup_s
    ok = [record for record in kept if record.outcome == "ok"]
    rejected = [record for record in kept if record.outcome == "rejected"]
    errors = [record for record in kept if record.outcome == "error"]
    latencies = [record.latency_s * 1000.0 for record in ok]
    by_op: dict[str, int] = {}
    for record in kept:
        by_op[record.op] = by_op.get(record.op, 0) + 1
    return LoadSummary(
        requests=len(kept),
        window_s=window,
        throughput_rps=len(ok) / window,
        observe_throughput_rps=sum(record.n_observations for record in ok) / window,
        p50_latency_ms=percentile(latencies, 50),
        p95_latency_ms=percentile(latencies, 95),
        p99_latency_ms=percentile(latencies, 99),
        failure_rate=len(errors) / len(kept) if kept else math.nan,
        rejected_rate=len(rejected) / len(kept) if kept else math.nan,
        by_op=by_op,
    )


def run_table_row(summary: LoadSummary, **context) -> dict:
    """One ``run_table.csv`` row: context columns + summary metrics."""
    row = {
        "duration_s": summary.window_s,
        "requests": summary.requests,
        "throughput_rps": round(summary.throughput_rps, 2),
        "observe_throughput_rps": round(summary.observe_throughput_rps, 2),
        "p50_latency_ms": round(summary.p50_latency_ms, 2),
        "p95_latency_ms": round(summary.p95_latency_ms, 2),
        "p99_latency_ms": round(summary.p99_latency_ms, 2),
        "failure_rate": round(summary.failure_rate, 4),
        "rejected_rate": round(summary.rejected_rate, 4),
    }
    row.update(context)
    unknown = set(row) - set(RUN_TABLE_COLUMNS)
    if unknown:
        raise ValueError(f"unknown run-table columns: {sorted(unknown)}")
    return {column: row.get(column, "") for column in RUN_TABLE_COLUMNS}


def write_run_table(path: str | Path, rows: list[dict]) -> Path:
    """Write the canonical CSV; rows come from :func:`run_table_row`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(RUN_TABLE_COLUMNS))
        writer.writeheader()
        writer.writerows(rows)
    return path


def format_report(rows: list[dict]) -> str:
    """Human-readable table of run-table rows for CLI/benchmark output."""
    columns = [
        "mode",
        "workers",
        "tenants",
        "clients",
        "batch_size",
        "throughput_rps",
        "observe_throughput_rps",
        "p95_latency_ms",
        "failure_rate",
        "rejected_rate",
    ]
    header = [column.replace("_latency_ms", "_ms").replace("_throughput", "_tput") for column in columns]
    table = [header] + [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    for i, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
