"""Closed- and open-loop load drivers.

Closed loop: ``clients`` threads, each with its own keep-alive
:class:`~repro.service.client.TuningClient` connection and its own
tenant subset, issuing requests back to back.  Throughput is whatever
the service sustains; latency excludes client-side think time (there is
none).

Open loop: arrivals are pre-generated from a Poisson process at the
target rate and handed to a dispatcher pool.  Each request's latency is
measured from its *scheduled* arrival, not from when a worker thread
got around to sending it — when the service falls behind, queueing
delay lands in the recorded latency instead of silently disappearing
(the coordinated-omission trap).

Both drivers classify every request: ``ok``, ``rejected`` (HTTP 429
backpressure), or ``error`` (anything else).  Rejections are a distinct
outcome because a loaded service answering 429-with-Retry-After is
behaving correctly; conflating them with failures would punish
backpressure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.loadgen.workload import OpMix, TenantPlan
from repro.service.client import ServiceError, TuningClient
from repro.stats.sampling import ensure_rng

#: Salt for every load-generation stream; disjoint from
#: REPLAY_SEED_SALT and SHADOW_SEED_SALT so a shared base seed cannot
#: correlate load arrivals with replay or shadow draws.
LOADGEN_SEED_SALT = 0x10AD


@dataclass(frozen=True)
class RequestRecord:
    """One load-driver request and what became of it."""

    op: str
    tenant: str
    #: Seconds since run start at which the request was (scheduled to
    #: be) issued — the latency clock starts here.
    scheduled_at: float
    latency_s: float
    outcome: str  # "ok" | "rejected" | "error"
    status: int | None
    #: Observations carried (1 for observe, batch size for batches,
    #: 0 for reads).
    n_observations: int


def _issue(
    client: TuningClient,
    plan: TenantPlan,
    op: str,
    rng: np.random.Generator,
    batch_size: int,
) -> tuple[str, int | None, int]:
    """Run one operation; returns (outcome, http_status, n_observations)."""
    n_observations = 0
    try:
        if op == "observe":
            if batch_size > 1:
                observations = [
                    {
                        "datasize_gb": plan.datasize_gb,
                        "duration_s": plan.sample_duration(rng),
                    }
                    for _ in range(batch_size)
                ]
                client.observe_batch(plan.app_id, observations)
                n_observations = batch_size
            else:
                client.observe(
                    plan.app_id,
                    datasize_gb=plan.datasize_gb,
                    duration_s=plan.sample_duration(rng),
                )
                n_observations = 1
        elif op == "status":
            client.app(plan.app_id)
        elif op == "config":
            client.config(plan.app_id)
        else:
            raise ValueError(f"unknown op {op!r}")
        return "ok", 200, n_observations
    except ServiceError as exc:
        outcome = "rejected" if exc.status == 429 else "error"
        return outcome, exc.status, 0
    except OSError:
        return "error", None, 0


def run_closed_loop(
    base_url: str,
    tenants: list[TenantPlan],
    mix: OpMix,
    duration_s: float,
    clients: int = 4,
    batch_size: int = 1,
    seed: int = 1,
    clock=time.monotonic,
) -> list[RequestRecord]:
    """Drive back-to-back requests from ``clients`` threads.

    Tenants are pinned ``tenants[i::clients]`` to each client so two
    threads never interleave observes for the same tenant — the
    service's per-app job ordering would serialize them anyway, and the
    pinning keeps the measured concurrency honest.

    ``clock`` is injectable (default ``time.monotonic``) so tests can
    drive the run deadline from a controllable fake clock.
    """
    if not tenants:
        raise ValueError("no tenants to drive")
    clients = min(clients, len(tenants))
    records: list[list[RequestRecord]] = [[] for _ in range(clients)]
    start = clock()
    deadline = start + duration_s

    def client_loop(index: int) -> None:
        rng = ensure_rng((LOADGEN_SEED_SALT, seed, 1, index))
        mine = tenants[index::clients]
        client = TuningClient(base_url)
        try:
            while True:
                now = clock()
                if now >= deadline:
                    break
                op = mix.sample(rng)
                plan = mine[rng.integers(len(mine))]
                outcome, status, n_obs = _issue(client, plan, op, rng, batch_size)
                records[index].append(
                    RequestRecord(
                        op=op,
                        tenant=plan.app_id,
                        scheduled_at=now - start,
                        latency_s=clock() - now,
                        outcome=outcome,
                        status=status,
                        n_observations=n_obs,
                    )
                )
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [record for bucket in records for record in bucket]


def run_open_loop(
    base_url: str,
    tenants: list[TenantPlan],
    mix: OpMix,
    duration_s: float,
    rate_rps: float,
    batch_size: int = 1,
    seed: int = 1,
    max_dispatchers: int = 32,
    clock=time.monotonic,
    sleep=time.sleep,
) -> list[RequestRecord]:
    """Drive Poisson arrivals at ``rate_rps`` regardless of completion.

    The whole arrival schedule (time, op, tenant) is generated up front
    from ``seed``; dispatcher threads pull arrivals in order, sleep
    until each scheduled instant, and issue the request.  Latency runs
    from the scheduled instant, so dispatcher lag and service queueing
    both count against the service.

    ``clock``/``sleep`` are injectable (defaults ``time.monotonic`` /
    ``time.sleep``) so tests can drive the dispatch schedule from a
    controllable fake clock instead of asserting against wall time.
    """
    if not tenants:
        raise ValueError("no tenants to drive")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = ensure_rng((LOADGEN_SEED_SALT, seed, 2))
    schedule: list[tuple[float, str, TenantPlan]] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            break
        schedule.append((t, mix.sample(rng), tenants[rng.integers(len(tenants))]))

    n_dispatchers = min(max_dispatchers, max(len(schedule), 1))
    records: list[list[RequestRecord]] = [[] for _ in range(n_dispatchers)]
    cursor_lock = threading.Lock()
    cursor = 0  # guarded-by: cursor_lock
    start = clock()

    def dispatcher(index: int) -> None:
        nonlocal cursor
        rng_local = ensure_rng((LOADGEN_SEED_SALT, seed, 3, index))
        client = TuningClient(base_url)
        try:
            while True:
                with cursor_lock:
                    if cursor >= len(schedule):
                        break
                    my_index = cursor
                    cursor += 1
                scheduled_at, op, plan = schedule[my_index]
                delay = start + scheduled_at - clock()
                if delay > 0:
                    sleep(delay)
                issued = clock()
                outcome, status, n_obs = _issue(client, plan, op, rng_local, batch_size)
                records[index].append(
                    RequestRecord(
                        op=op,
                        tenant=plan.app_id,
                        scheduled_at=scheduled_at,
                        # From the *scheduled* arrival: queueing in the
                        # dispatcher pool counts, coordinated omission
                        # does not happen.
                        latency_s=(clock() - issued)
                        + max(issued - (start + scheduled_at), 0.0),
                        outcome=outcome,
                        status=status,
                        n_observations=n_obs,
                    )
                )
        finally:
            client.close()

    threads = [
        threading.Thread(target=dispatcher, args=(i,), daemon=True)
        for i in range(n_dispatchers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    merged = [record for bucket in records for record in bucket]
    merged.sort(key=lambda record: record.scheduled_at)
    return merged
