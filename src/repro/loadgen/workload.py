"""Workload definition: operation mixes and tenant provisioning.

A load run needs tenants that are *past* their bootstrap — the first
observe of a fresh tenant runs a whole tuning session, which would
swamp steady-state numbers.  :func:`provision_tenants` registers each
tenant with a deliberately small tuner, pays that bootstrap up front,
and records the resulting baseline duration; during the measured run
every reported duration wobbles a couple of percent around the
baseline, and the tenants' drift detectors are configured loose enough
(``drift_factor`` far above the wobble) that the service never retunes
mid-measurement.  What remains is exactly the steady-state serving
path: ingest, persist, status, config.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.service.sharding.shard import stable_slot

#: Operations a mix may weight.
OPS = ("observe", "status", "config")

#: Small-but-real tuner for load-test tenants: a full QCSA/IICP/BO
#: pass, sized so the one-off bootstrap costs well under a second.
LOADGEN_TUNER = {
    "n_qcsa": 8,
    "n_iicp": 6,
    "max_iterations": 4,
    "min_iterations": 2,
    "n_mcmc": 0,
    "use_polish": False,
}

#: Drift settings that cannot fire on the ±2% steady-state wobble, so
#: no retune contaminates the measured window.
LOADGEN_CONTROLLER = {
    "detector": "ratio",
    "drift_factor": 8.0,
    "drift_patience": 1_000_000,
}


@dataclass(frozen=True)
class OpMix:
    """Normalized operation weights, sampled per request."""

    weights: tuple[tuple[str, float], ...]

    @classmethod
    def parse(cls, spec: str) -> "OpMix":
        """Parse ``"observe=0.90,status=0.05,config=0.05"``.

        Weights are normalized, so they need not sum to one; unknown
        operations and non-positive totals are rejected.
        """
        weights: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep or name not in OPS:
                raise ValueError(
                    f"bad mix component {part!r}: expected <op>=<weight> with op in {OPS}"
                )
            weights[name] = weights.get(name, 0.0) + float(value)
        total = sum(weights.values())
        if total <= 0:
            raise ValueError(f"mix {spec!r} has no positive weight")
        return cls(tuple((op, weights[op] / total) for op in OPS if weights.get(op, 0) > 0))

    def sample(self, rng: np.random.Generator) -> str:
        """Draw one operation according to the weights."""
        u = rng.random()
        acc = 0.0
        for op, weight in self.weights:
            acc += weight
            if u < acc:
                return op
        return self.weights[-1][0]

    def __str__(self) -> str:
        return ",".join(f"{op}={weight:g}" for op, weight in self.weights)


#: The canonical mix for the service-load benchmark: ingest-dominated
#: with a trickle of status and config reads.
OBSERVE_HEAVY = OpMix.parse("observe=0.90,status=0.05,config=0.05")


@dataclass(frozen=True)
class TenantPlan:
    """One provisioned tenant, ready for steady-state load."""

    app_id: str
    benchmark: str
    datasize_gb: float
    #: The deployed configuration's runtime from the bootstrap —
    #: steady-state observes report small wobbles around it.
    baseline_duration_s: float

    def sample_duration(self, rng: np.random.Generator, wobble: float = 0.02) -> float:
        """A plausible production runtime for the next observe."""
        return self.baseline_duration_s * rng.uniform(1.0 - wobble, 1.0 + wobble)


def balanced_tenant_ids(n: int, prefix: str = "tenant", balance_over: int = 4) -> list[str]:
    """Tenant ids whose shard slots cycle round-robin mod ``balance_over``.

    Generated ids are filtered by :func:`stable_slot` so that for any
    worker count dividing ``balance_over`` the tenants spread evenly
    across shards — a worker-count sweep then measures scaling, not the
    luck of the hash draw.
    """
    ids: list[str] = []
    candidate = 0
    while len(ids) < n:
        app_id = f"{prefix}-{candidate:04d}"
        candidate += 1
        if stable_slot(app_id) % balance_over == len(ids) % balance_over:
            ids.append(app_id)
    return ids


def provision_tenants(
    client,
    n_tenants: int,
    benchmark: str = "join",
    datasize_gb: float = 10.0,
    seed: int = 1,
    tuner: dict | None = None,
    controller: dict | None = None,
    prefix: str = "tenant",
    balance_over: int = 4,
    concurrency: int = 8,
) -> list[TenantPlan]:
    """Register ``n_tenants`` and pay their bootstraps up front.

    Returns one :class:`TenantPlan` per tenant with the baseline
    duration extracted from the bootstrap decision.  Bootstraps run
    ``concurrency`` at a time — on a sharded service they land on
    different workers and overlap.
    """
    tenant_ids = balanced_tenant_ids(n_tenants, prefix=prefix, balance_over=balance_over)
    tuner = dict(LOADGEN_TUNER if tuner is None else tuner)
    controller = dict(LOADGEN_CONTROLLER if controller is None else controller)
    for i, app_id in enumerate(tenant_ids):
        client.register_app(
            app_id,
            benchmark=benchmark,
            seed=seed + i,
            tuner=tuner,
            controller=controller,
        )

    plans: list[TenantPlan | None] = [None] * n_tenants
    errors: list[Exception] = []
    semaphore = threading.Semaphore(max(concurrency, 1))

    def bootstrap(index: int, app_id: str) -> None:
        with semaphore:
            try:
                job = client.observe(app_id, datasize_gb=datasize_gb)
                baseline = job["decision"]["tuning"]["best_duration_s"]
                plans[index] = TenantPlan(
                    app_id=app_id,
                    benchmark=benchmark,
                    datasize_gb=datasize_gb,
                    baseline_duration_s=float(baseline),
                )
            except Exception as exc:  # propagate after joining
                errors.append(exc)

    threads = [
        threading.Thread(target=bootstrap, args=(i, app_id), daemon=True)
        for i, app_id in enumerate(tenant_ids)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise RuntimeError(f"{len(errors)} tenant bootstraps failed: {errors[0]}") from errors[0]
    return [plan for plan in plans if plan is not None]
