"""Load generation for the tuning service.

A small harness for driving a running service (plain or sharded) with a
configurable multi-tenant operation mix and measuring what it sustains:

* :mod:`repro.loadgen.workload` — the operation mix
  (observe / status / config weights), tenant provisioning with
  shard-balanced ids, and per-tenant steady-state run parameters;
* :mod:`repro.loadgen.driver` — closed-loop (N clients, back-to-back
  requests) and open-loop (Poisson arrivals at a target rate) drivers
  recording one :class:`~repro.loadgen.driver.RequestRecord` per
  request, with latency measured from the *scheduled* arrival time in
  open-loop mode so queueing delay is not silently dropped
  (coordinated omission);
* :mod:`repro.loadgen.report` — warmup trimming, nearest-rank
  percentiles, and the canonical ``run_table.csv`` row schema
  (``throughput_rps`` / ``p95_latency_ms`` / ``failure_rate`` per
  configuration).

``benchmarks/bench_service_load.py`` composes these into the repo's
standing service-performance curve; ``python -m repro loadgen`` exposes
the same harness against any URL.
"""

from repro.loadgen.driver import RequestRecord, run_closed_loop, run_open_loop
from repro.loadgen.report import (
    RUN_TABLE_COLUMNS,
    LoadSummary,
    format_report,
    percentile,
    run_table_row,
    summarize,
    write_run_table,
)
from repro.loadgen.workload import OBSERVE_HEAVY, OpMix, TenantPlan, provision_tenants

__all__ = [
    "OBSERVE_HEAVY",
    "LoadSummary",
    "OpMix",
    "RUN_TABLE_COLUMNS",
    "RequestRecord",
    "TenantPlan",
    "format_report",
    "percentile",
    "provision_tenants",
    "run_closed_loop",
    "run_table_row",
    "run_open_loop",
    "summarize",
    "write_run_table",
]
