"""Stacked multi-model state for EI-MCMC acquisition.

EI-MCMC (Snoek et al. 2012) marginalizes the acquisition function over
``n_mcmc`` posterior samples of the GP hyper-parameters.  The historic
implementation materialized one fitted :class:`~repro.bo.gp.GaussianProcess`
clone per sample and looped over them in Python for every acquisition
call — hundreds of calls per BO iteration, each paying per-clone kernel
builds and Python dispatch.

:class:`ModelStack` keeps the per-sample state as stacked arrays
(``thetas``, Cholesky factors, ``alpha`` vectors) over one shared
training set and evaluates all models' posteriors in a single
vectorized pass: the cross-covariance tensors for every sample are built
with one broadcast distance computation, and only the per-sample BLAS
calls (one gemv for the mean, one triangular solve for the variance —
kept per-model so the floats match the historic per-clone predictions
exactly) remain a tiny loop.  It also supports the engine's incremental
contract: ``extend`` performs the exact rank-k Cholesky append *per
sample*, so appending observations never refits any of the ``n_mcmc``
models.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky

from repro.bo.acquisition import expected_improvement
from repro.bo.kernels import stacked_cross
from repro.surrogate.incremental import cholesky_append, cholesky_downdate

_JITTER = 1e-8


class ModelStack:
    """``n_mcmc`` GP posteriors at sampled hyper-parameters, stacked.

    All models share the training inputs and (standardized) targets;
    they differ only in their hyper-parameter vector ``theta = [log
    signal, log lengthscales..., log noise]``.  Construction factorizes
    each model once; afterwards prediction and acquisition are
    vectorized over the sample axis and ``extend`` appends observations
    with exact rank-k updates.
    """

    def __init__(
        self,
        kernels: list,
        noises: np.ndarray,
        lowers: list[np.ndarray],
        alphas: list[np.ndarray],
        x: np.ndarray,
        y_mean: float,
        y_std: float,
        thetas: list[np.ndarray],
        precisions: list[np.ndarray] | None = None,
    ):
        self.kernels = kernels
        self.noises = np.asarray(noises, dtype=float)
        self.lowers = lowers
        self.alphas = alphas
        self._x = np.asarray(x, dtype=float)
        self._y_mean = float(y_mean)
        self._y_std = float(y_std)
        self.thetas = [np.asarray(t, dtype=float) for t in thetas]
        #: Fast mode: per-model precision matrices K^-1, letting
        #: prediction run as pure batched matmuls (no per-model
        #: triangular solves).  None = exact mode, whose floats match
        #: the historic per-clone loop bit for bit.
        self.precisions = precisions

    @property
    def fast(self) -> bool:
        """True when precision matrices power batched-matmul prediction."""
        return self.precisions is not None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_gp(cls, gp, thetas: list[np.ndarray], fast: bool = False) -> "ModelStack":
        """Factorize the GP's training set at each hyper-parameter sample.

        Equivalent to ``[gp.clone_with_theta(t) for t in thetas]`` — each
        model's ``(chol, alpha)`` is computed from the same covariance a
        fitted clone would build — without constructing GP objects.

        ``fast=True`` additionally materializes each model's precision
        matrix (one O(n^3/3) triangular solve per model, paid once per
        MCMC refresh) so every later acquisition call is a batched
        matmul instead of per-model triangular solves.  Fast-mode
        posteriors are mathematically identical but not bit-identical to
        the exact mode; the engine uses it only on the incremental path,
        never on the bit-for-bit ``surrogate_mode="full"`` path.
        """
        if not gp.is_fitted:
            raise RuntimeError("ModelStack requires a fitted GP")
        if not thetas:
            raise ValueError("ModelStack needs at least one hyper-parameter sample")
        x = gp.training_inputs
        y = gp.standardized_targets
        extra = gp.extra_noise_vector
        kernels, noises, lowers, alphas = [], [], [], []
        precisions: list[np.ndarray] | None = [] if fast else None
        for theta in thetas:
            theta = np.asarray(theta, dtype=float)
            kernel = gp.kernel.clone()
            kernel.set_theta(theta[:-1])
            noise = float(np.exp(theta[-1]))
            k = kernel(x, x)
            k[np.diag_indices_from(k)] += noise + _JITTER
            if extra is not None:
                k[np.diag_indices_from(k)] += extra
            lower = cholesky(k, lower=True, check_finite=False)
            kernels.append(kernel)
            noises.append(noise)
            lowers.append(lower)
            alphas.append(cho_solve((lower, True), y, check_finite=False))
            if precisions is not None:
                precisions.append(
                    cho_solve((lower, True), np.eye(x.shape[0]), check_finite=False)
                )
        return cls(
            kernels, np.asarray(noises), lowers, alphas,
            x, gp.target_mean, gp.target_std, list(thetas),
            precisions=precisions,
        )

    @property
    def n_models(self) -> int:
        return len(self.lowers)

    @property
    def n_samples(self) -> int:
        return self._x.shape[0]

    # ------------------------------------------------------------------
    # Vectorized kernel evaluation over the sample axis
    # ------------------------------------------------------------------
    def _cross(self, x2: np.ndarray) -> np.ndarray:
        """Cross-covariance tensor ``(n_models, n_train, n_query)``.

        Delegates to :func:`repro.bo.kernels.stacked_cross` — the
        covariance formulas live next to their scalar counterparts, and
        per-slice results match each kernel's own ``__call__`` exactly.
        """
        return stacked_cross(self.kernels, self._x, x2)

    # ------------------------------------------------------------------
    # Posterior and acquisition
    # ------------------------------------------------------------------
    def predict(self, x_star: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std per model, ``(n_models, n_query)`` each.

        Outputs are de-standardized to raw target units, matching
        ``GaussianProcess.predict`` model by model.
        """
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self._cross(x_star)  # (S, n, m)
        signal = np.array([k.signal_variance for k in self.kernels])
        if self.precisions is not None:
            # Fast mode: quadratic forms through the precision matrices —
            # two batched matmuls, zero per-model scipy dispatch.
            v_stack = np.stack(self.precisions)
            quad = np.sum(k_star * np.matmul(v_stack, k_star), axis=1)  # (S, m)
            means = np.einsum("snm,sn->sm", k_star, np.stack(self.alphas))
            means = means * self._y_std + self._y_mean
            var = signal[:, None] + self.noises[:, None] - quad
            stds = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
            return means, stds
        means = np.empty((self.n_models, x_star.shape[0]))
        stds = np.empty_like(means)
        for s in range(self.n_models):
            # Per-model BLAS gemv keeps the accumulation order (and thus
            # the exact floats) of the historic per-clone predictions;
            # the expensive part — the kernel tensor — is built once
            # above for all models.
            means[s] = k_star[s].T @ self.alphas[s] * self._y_std + self._y_mean
            v = cho_solve((self.lowers[s], True), k_star[s], check_finite=False)
            var = signal[s] + self.noises[s] - np.sum(k_star[s] * v, axis=0)
            stds[s] = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return means, stds

    def acquisition(self, x_star: np.ndarray, best: float) -> np.ndarray:
        """EI averaged over the hyper-parameter samples (to maximize)."""
        means, stds = self.predict(x_star)
        total = np.zeros(means.shape[1])
        for s in range(self.n_models):
            total += expected_improvement(means[s], stds[s], best)
        return total / self.n_models

    # ------------------------------------------------------------------
    # Incremental extension
    # ------------------------------------------------------------------
    def extend(
        self,
        x_new: np.ndarray,
        y_standardized: np.ndarray,
        y_mean: float,
        y_std: float,
        extra_noise_new: np.ndarray | None = None,
    ) -> "ModelStack":
        """Append observations to every stacked model, rank-k, in place.

        ``y_standardized`` is the *full* standardized target vector after
        the append (appending shifts the shared target standardization,
        which only touches the ``alpha`` solves — the covariance factors
        are target-free).  ``extra_noise_new`` is per-new-row additional
        observation noise (standardized units), mirroring
        :meth:`repro.bo.gp.GaussianProcess.extend`.
        """
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_standardized = np.asarray(y_standardized, dtype=float).ravel()
        if y_standardized.shape[0] != self.n_samples + x_new.shape[0]:
            raise ValueError("y_standardized must cover old and new rows")
        n_new = x_new.shape[0]
        for s in range(self.n_models):
            kernel = self.kernels[s]
            b = kernel(self._x, x_new)
            c = kernel(x_new, x_new)
            c[np.diag_indices_from(c)] += self.noises[s] + _JITTER
            if extra_noise_new is not None:
                c[np.diag_indices_from(c)] += np.asarray(extra_noise_new, dtype=float).ravel()
            self.lowers[s] = cholesky_append(self.lowers[s], b, c)
            self.alphas[s] = cho_solve((self.lowers[s], True), y_standardized, check_finite=False)
            if self.precisions is not None:
                # Block-inverse update, O(n^2 k): with W = K^-1 B and the
                # Schur complement S = C - B^T W,
                #   [[K, B], [B^T, C]]^-1 =
                #   [[V + W S^-1 W^T, -W S^-1], [-S^-1 W^T, S^-1]].
                v = self.precisions[s]
                w = v @ b
                schur = c - b.T @ w
                schur_chol = cholesky(schur, lower=True, check_finite=False)
                schur_inv = cho_solve((schur_chol, True), np.eye(n_new), check_finite=False)
                ws = w @ schur_inv
                grown = np.block([[v + ws @ w.T, -ws], [-ws.T, schur_inv]])
                # Keep the quadratic forms stable across many rank-k
                # updates: the formula is symmetric, round-off is not.
                self.precisions[s] = (grown + grown.T) / 2.0
        self._x = np.vstack([self._x, x_new])
        self._y_mean = float(y_mean)
        self._y_std = float(y_std)
        return self

    def remove_row(self, index: int) -> "ModelStack":
        """Delete one training row from every stacked model, O(n^2) each.

        Mirrors :meth:`extend`: the per-model Cholesky factors shrink by
        a downdate, and in fast mode the precision matrices shrink by
        the exact block-inverse reduction
        ``(K w/o row i)^-1 = P' - p_i p_i^T / P_ii`` (``P'`` = P without
        row/column i).  The ``alpha`` vectors are left *stale* — row
        removal shifts the shared target standardization, so callers
        must follow up with :meth:`extend` (the sliding-window case:
        removals only ever happen because new rows arrived) or
        :meth:`set_targets` before predicting.
        """
        n = self.n_samples
        if not -n <= index < n:
            raise IndexError(f"index {index} out of range for {n} rows")
        i = index % n
        for s in range(self.n_models):
            self.lowers[s] = cholesky_downdate(self.lowers[s], i)
            if self.precisions is not None:
                p = self.precisions[s]
                p_col = np.delete(p[:, i], i)
                p_ii = p[i, i]
                reduced = np.delete(np.delete(p, i, axis=0), i, axis=1)
                reduced = reduced - np.outer(p_col, p_col) / p_ii
                self.precisions[s] = (reduced + reduced.T) / 2.0
        self._x = np.delete(self._x, i, axis=0)
        return self

    def set_targets(
        self, y_standardized: np.ndarray, y_mean: float, y_std: float
    ) -> "ModelStack":
        """Re-solve every model's ``alpha`` against new shared targets.

        Completes a :meth:`remove_row` sequence when no :meth:`extend`
        follows (the factors are already correct; only the target-side
        solves were stale).
        """
        y_standardized = np.asarray(y_standardized, dtype=float).ravel()
        if y_standardized.shape[0] != self.n_samples:
            raise ValueError("y_standardized must have one value per row")
        for s in range(self.n_models):
            self.alphas[s] = cho_solve(
                (self.lowers[s], True), y_standardized, check_finite=False
            )
        self._y_mean = float(y_mean)
        self._y_std = float(y_std)
        return self
