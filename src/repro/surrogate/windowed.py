"""Sliding-window GP backend with a high-information coreset.

An exact GP pays O(n^2) per appended row and O(n^3) per refit, which is
fine for a 60-evaluation tuning session but not for a long-lived tenant
whose history keeps growing.  :class:`WindowedGP` bounds the *active*
training set: the most recent ``window`` observations stay exact (recent
rows carry the most information about the current optimum and any
drifted regime), plus up to ``coreset`` older rows kept because the
model would be most uncertain without them.

The active set slides in O(W^2) per step using the
:func:`~repro.surrogate.incremental.cholesky_append` /
:func:`~repro.surrogate.incremental.cholesky_downdate` pair — no refits:

* A new observation is appended rank-1.
* When the window overflows, the oldest window row either *graduates*
  into the coreset (free — a relabel) or competes with the existing
  coreset rows on leave-one-out posterior variance
  ``1 / [K^-1]_jj`` (one O(W^2) triangular solve per candidate): the
  most redundant row — the one the model could best reconstruct from
  the others — is evicted.  High LOO variance means the model knows
  nothing about that region without the row, which is exactly the
  greedy max-posterior-variance coreset criterion.

The class wraps an inner :class:`~repro.bo.gp.GaussianProcess` over the
active set and exposes the same engine surface (``fit`` / ``extend`` /
``predict`` / ``acquisition``, hyper-parameter access, LML), so
EI-MCMC slice sampling and :class:`~repro.surrogate.stack.ModelStack`
construction work unchanged — their cost is now bounded by the active
set size, not the history length.  Removals performed during ``extend``
are logged (:meth:`pop_removed_indices`) so a caller maintaining a
parallel :class:`ModelStack` can mirror them with
:meth:`~repro.surrogate.stack.ModelStack.remove_row` instead of
refitting the stack.

The full raw history is retained (arrays, rebind-only updates) so a
degenerate batch larger than the window, or a policy-driven backend
switch, can always refit from scratch.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel, RBFKernel


class WindowedGP:
    """Bounded-cost GP: recent ``window`` rows exact + ``coreset`` keepers.

    ``candidate_pool`` bounds how many older rows the one-off greedy
    coreset selection in :meth:`fit` scores (an evenly-strided subsample
    of the pre-window history), keeping the fit cost O(pool * W^2)
    rather than O(n * W^2) on a 50k-row history.
    """

    supports_mcmc = True

    def __init__(
        self,
        kernel: RBFKernel | Matern52Kernel,
        noise_variance: float = 1e-4,
        window: int = 256,
        coreset: int = 64,
        candidate_pool: int = 256,
    ):
        if window < 2:
            raise ValueError("window must be at least 2")
        if coreset < 0:
            raise ValueError("coreset must be non-negative")
        self.window = int(window)
        self.coreset = int(coreset)
        self.candidate_pool = max(int(candidate_pool), self.coreset)
        self._gp = GaussianProcess(kernel, noise_variance)
        self._hist_x: np.ndarray | None = None
        self._hist_y: np.ndarray | None = None
        self._hist_extra: np.ndarray | None = None
        # Per-active-row bookkeeping (aligned with the inner GP's rows;
        # GP row order is arbitrary, time lives in ``_seq``).
        self._seq: np.ndarray = np.empty(0, dtype=int)
        self._is_coreset: np.ndarray = np.empty(0, dtype=bool)
        self._next_seq = 0
        self._removed_log: list[int] = []

    # ------------------------------------------------------------------
    # Delegated engine surface (everything EI-MCMC / ModelStack needs)
    # ------------------------------------------------------------------
    @property
    def kernel(self):
        return self._gp.kernel

    @property
    def noise_variance(self) -> float:
        return self._gp.noise_variance

    @property
    def is_fitted(self) -> bool:
        return self._gp.is_fitted

    @property
    def n_samples(self) -> int:
        """Size of the *active* set (what every O(...) below is in)."""
        return self._gp.n_samples

    @property
    def n_total(self) -> int:
        """Total observations ever absorbed, active or expired."""
        return 0 if self._hist_y is None else int(self._hist_y.shape[0])

    @property
    def training_inputs(self) -> np.ndarray:
        return self._gp.training_inputs

    @property
    def standardized_targets(self) -> np.ndarray:
        return self._gp.standardized_targets

    @property
    def target_mean(self) -> float:
        return self._gp.target_mean

    @property
    def target_std(self) -> float:
        return self._gp.target_std

    @property
    def extra_noise_vector(self) -> np.ndarray | None:
        return self._gp.extra_noise_vector

    @property
    def chol_lower(self) -> np.ndarray:
        return self._gp.chol_lower

    @property
    def n_hyperparameters(self) -> int:
        return self._gp.n_hyperparameters

    def get_theta(self) -> np.ndarray:
        return self._gp.get_theta()

    def set_theta(self, theta: np.ndarray) -> None:
        self._gp.set_theta(theta)

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        return self._gp.log_marginal_likelihood(theta)

    def lml_cache_stats(self) -> dict[str, int]:
        return self._gp.lml_cache_stats()

    def predict(self, x_star: np.ndarray, return_std: bool = True):
        return self._gp.predict(x_star, return_std=return_std)

    def acquisition(self, x_star: np.ndarray, best: float, xi: float = 0.0) -> np.ndarray:
        return self._gp.acquisition(x_star, best, xi=xi)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fit(self, x, y, extra_noise=None) -> "WindowedGP":
        """Fit on the full history, selecting a bounded active set.

        With ``n <= window + coreset`` every row is active (and the
        posterior is identical to an exact GP's).  Above that, the most
        recent ``window`` rows are taken exact and the coreset is built
        greedily: starting from the window-only model, repeatedly add
        the older row with the highest posterior variance at its own
        input — the row the current model is most wrong to be missing.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        extra = None if extra_noise is None else np.asarray(extra_noise, dtype=float).ravel()
        self._hist_x = x
        self._hist_y = y
        self._hist_extra = extra
        self._removed_log = []
        n = y.shape[0]
        self._next_seq = n
        capacity = self.window + self.coreset

        def _extra_rows(idx):
            return None if extra is None else extra[idx]

        if n <= capacity:
            self._gp.fit(x, y, extra_noise=extra)
            self._seq = np.arange(n, dtype=int)
            # Rows older than the window are coreset by construction.
            self._is_coreset = self._seq < max(n - self.window, 0)
            return self

        recent = np.arange(n - self.window, n)
        self._gp.fit(x[recent], y[recent], extra_noise=_extra_rows(recent))
        active_idx = list(recent)
        coreset_flags = [False] * len(recent)
        # Evenly-strided candidate pool over the pre-window history.
        older = np.unique(
            np.linspace(0, n - self.window - 1, min(self.candidate_pool, n - self.window))
            .round()
            .astype(int)
        )
        pool = list(older)
        for _ in range(self.coreset):
            if not pool:
                break
            _, stds = self._gp.predict(x[pool])
            pick = pool.pop(int(np.argmax(stds)))
            self._gp.extend(
                x[pick : pick + 1], y[pick : pick + 1],
                extra_noise=_extra_rows(slice(pick, pick + 1)),
            )
            active_idx.append(pick)
            coreset_flags.append(True)
        self._seq = np.asarray(active_idx, dtype=int)
        self._is_coreset = np.asarray(coreset_flags, dtype=bool)
        return self

    def extend(self, x, y, extra_noise=None) -> "WindowedGP":
        """Absorb new observations at O(W^2) per row.

        Expired window rows are relabeled into the coreset while it has
        room, then compete on LOO posterior variance (see module
        docstring).  Expiry runs *before* the append so a caller
        mirroring the operations onto a :class:`ModelStack` sees
        removals whose indices are valid against the pre-append state,
        followed by one rank-k extend.
        """
        if not self.is_fitted:
            return self.fit(x, y, extra_noise=extra_noise)
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        extra = None if extra_noise is None else np.asarray(extra_noise, dtype=float).ravel()
        k = y.shape[0]
        hist_x = np.vstack([self._hist_x, x])
        hist_y = np.concatenate([self._hist_y, y])
        if self._hist_extra is None and extra is None:
            hist_extra = None
        else:
            hist_extra = np.concatenate([
                self._hist_extra if self._hist_extra is not None else np.zeros(self._hist_y.shape[0]),
                extra if extra is not None else np.zeros(k),
            ])
        if k >= self.window:
            # A batch as large as the window has no incremental path;
            # refit from the retained history (rare: batches are
            # normally a handful of parallel evaluations).
            return self.fit(hist_x, hist_y, extra_noise=hist_extra)
        self._hist_x = hist_x
        self._hist_y = hist_y
        self._hist_extra = hist_extra

        n_window_rows = int(np.count_nonzero(~self._is_coreset))
        while n_window_rows + k > self.window:
            self._expire_oldest_window_row()
            n_window_rows -= 1
        self._gp.extend(x, y, extra_noise=extra)
        self._seq = np.concatenate(
            [self._seq, np.arange(self._next_seq, self._next_seq + k)]
        )
        self._is_coreset = np.concatenate([self._is_coreset, np.zeros(k, dtype=bool)])
        self._next_seq += k
        return self

    def _expire_oldest_window_row(self) -> None:
        window_rows = np.flatnonzero(~self._is_coreset)
        oldest = int(window_rows[np.argmin(self._seq[window_rows])])
        n_coreset = int(np.count_nonzero(self._is_coreset))
        flags = self._is_coreset.copy()
        if n_coreset < self.coreset:
            flags[oldest] = True
            self._is_coreset = flags
            return
        if self.coreset == 0:
            evict = oldest
        else:
            candidates = np.append(np.flatnonzero(self._is_coreset), oldest)
            evict = int(candidates[np.argmin(self._loo_variance(candidates))])
        self._gp.remove_rows([evict])
        self._removed_log.append(evict)
        self._seq = np.delete(self._seq, evict)
        flags = np.delete(flags, evict)
        if evict != oldest:
            # The expiring window row survived the competition: it
            # graduates into the coreset in place of the evicted row.
            flags[oldest - (evict < oldest)] = True
        self._is_coreset = flags

    def _loo_variance(self, rows: np.ndarray) -> np.ndarray:
        """Leave-one-out posterior variance ``1 / [K^-1]_jj`` per row.

        The inverse-covariance diagonal comes from the existing factor:
        ``[K^-1]_jj = || L^-1 e_j ||^2`` — one O(n^2) triangular solve
        per candidate, no refits.
        """
        lower = self._gp.chol_lower
        basis = np.zeros((lower.shape[0], len(rows)))
        basis[rows, np.arange(len(rows))] = 1.0
        z = solve_triangular(lower, basis, lower=True, check_finite=False)
        return 1.0 / np.sum(z * z, axis=0)

    # ------------------------------------------------------------------
    # Caller-synchronization hooks
    # ------------------------------------------------------------------
    def pop_removed_indices(self) -> list[int]:
        """Active-set removals since the last pop, in application order.

        Each index is valid against the state the matrix had when that
        removal was applied (removals precede the appends of the same
        ``extend`` call), which is exactly the sequence a mirrored
        :meth:`ModelStack.remove_row` caller must replay.
        """
        removed = self._removed_log
        self._removed_log = []
        return removed

    def shallow_copy(self) -> "WindowedGP":
        """A cheap copy safe to extend independently (liar surrogates).

        The inner GP's shallow copy shares training arrays (rebind-only
        updates); the small per-row bookkeeping arrays are copied
        because relabeling mutates them in place.
        """
        copy = WindowedGP(
            self._gp.kernel.clone(),
            self._gp.noise_variance,
            window=self.window,
            coreset=self.coreset,
            candidate_pool=self.candidate_pool,
        )
        copy._gp = self._gp.shallow_copy()
        copy._hist_x = self._hist_x
        copy._hist_y = self._hist_y
        copy._hist_extra = self._hist_extra
        copy._seq = self._seq.copy()
        copy._is_coreset = self._is_coreset.copy()
        copy._next_seq = self._next_seq
        copy._removed_log = []
        return copy
