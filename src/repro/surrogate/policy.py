"""Backend selection policy for the surrogate engine.

Three backends implement the same ``Surrogate`` lifecycle with different
cost/fidelity trade-offs:

========  ==============================  ======================
backend   per-decision cost               posterior
========  ==============================  ======================
exact     O(n^2) extend, O(n^3) refit     exact
windowed  O(W^2), W = window + coreset    exact on the active set
sparse    O(m^2), m = inducing points     Nystrom/DTC approximation
========  ==============================  ======================

:class:`BackendPolicy` picks between them by history size: exact while
the history is small enough that nobody can tell the difference,
windowed once exact refits start to hurt, sparse once even a window
discards too much of a very long history.  The thresholds are
configurable per tenant; the defaults keep a tuning session (tens of
evaluations) on the exact backend — and therefore bit-for-bit identical
to the pre-policy engine — while a long-lived service tenant
transitions automatically as its history grows.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Accepted values for the ``surrogate_backend`` setting, everywhere it
#: appears (DAGP, BOLoop, LOCAT, the service tenant key, the CLI).
#: ``auto`` defers to a :class:`BackendPolicy`; the other three force
#: one backend unconditionally.
SURROGATE_BACKENDS = ("auto", "exact", "windowed", "sparse")


@dataclass(frozen=True)
class BackendPolicy:
    """Size thresholds and per-backend capacity knobs.

    ``select`` resolves a history size to a concrete backend:
    exact for ``n <= n_exact``, windowed for ``n <= n_window``, sparse
    above.  The capacity knobs (``window``/``coreset`` for the windowed
    backend, ``n_inducing`` for the sparse one) travel with the policy
    so a tenant's whole scaling behavior is one configuration object.
    """

    n_exact: int = 512
    n_window: int = 4096
    window: int = 256
    coreset: int = 64
    n_inducing: int = 128

    def __post_init__(self):
        if self.n_exact < 1:
            raise ValueError("n_exact must be positive")
        if self.n_window < self.n_exact:
            raise ValueError("n_window must be >= n_exact")
        if self.window < 2:
            raise ValueError("window must be at least 2")
        if self.coreset < 0:
            raise ValueError("coreset must be non-negative")
        if self.n_inducing < 2:
            raise ValueError("n_inducing must be at least 2")

    def select(self, n_observations: int) -> str:
        """The backend this policy prescribes for a history of size n."""
        if n_observations <= self.n_exact:
            return "exact"
        if n_observations <= self.n_window:
            return "windowed"
        return "sparse"


def validate_backend(backend: str) -> str:
    """Normalize and validate a ``surrogate_backend`` setting value."""
    if backend not in SURROGATE_BACKENDS:
        raise ValueError(
            f"surrogate_backend must be one of {SURROGATE_BACKENDS}, got {backend!r}"
        )
    return backend
