"""Inducing-point (Nystrom / subset-of-regressors) GP backend.

For the very-long-history regime even a sliding window wastes
information: tens of thousands of observations cover the configuration
space densely, and what limits accuracy is the *global* shape of the
surface, not the most recent rows.  :class:`SparseGP` compresses the
history through ``m`` inducing inputs Z and keeps only the m x m
sufficient statistics

    A = K_zn Lambda^-1 K_nz          (m x m)
    b = K_zn Lambda^-1 y~            (m)

where ``Lambda`` is the per-row noise (base plus heteroscedastic extra)
and ``y~`` the standardized targets.  Every statistic is a sum over
rows, so absorbing k new observations is a flat O(m^2 k) accumulation —
per-decision cost never grows with the history.  Target
re-standardization is exact at any time because ``b`` is kept in raw
pieces (``K_zn Lambda^-1 y`` and ``K_zn Lambda^-1 1``).

Prediction uses the deterministic-training-conditional (DTC) posterior

    mean(x*) = k*z (K_zz + A)^-1 b
    var(x*)  = k** - k*z K_zz^-1 k z* + k*z (K_zz + A)^-1 k z* + noise

whose variance — unlike plain SoR — does not collapse far from the
inducing set, which matters for expected improvement.

The inducing set is an evenly-strided subsample of the history,
re-selected (and the statistics rebuilt, O(n m^2)) whenever the history
doubles — amortized O(m^2) per row.  The backend is point-estimate only
(``supports_mcmc = False``): the engine skips hyper-parameter sampling
and uses plain EI, the same degraded-gracefully path it already takes
when no MCMC stack exists.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro.bo.acquisition import expected_improvement
from repro.bo.kernels import Matern52Kernel, RBFKernel

_JITTER = 1e-6


class SparseGP:
    """Bounded-memory GP over ``n_inducing`` Nystrom points.

    ``reselect_factor`` controls how often the inducing set chases the
    growing history: a rebuild triggers when the history exceeds that
    multiple of its size at the last selection.
    """

    supports_mcmc = False

    def __init__(
        self,
        kernel: RBFKernel | Matern52Kernel,
        noise_variance: float = 1e-4,
        n_inducing: int = 128,
        reselect_factor: float = 2.0,
    ):
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        if n_inducing < 2:
            raise ValueError("n_inducing must be at least 2")
        if reselect_factor <= 1.0:
            raise ValueError("reselect_factor must exceed 1")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.n_inducing = int(n_inducing)
        self.reselect_factor = float(reselect_factor)
        self._hist_x: np.ndarray | None = None
        self._hist_y: np.ndarray | None = None
        self._hist_extra: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self._n_at_select = 0
        self._a: np.ndarray | None = None
        self._b_y: np.ndarray | None = None
        self._b_1: np.ndarray | None = None
        self._kzz_chol: np.ndarray | None = None
        self._post_chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._z is not None

    @property
    def n_samples(self) -> int:
        """Total absorbed observations (memory stays O(m^2) regardless)."""
        return 0 if self._hist_y is None else int(self._hist_y.shape[0])

    n_total = n_samples

    @property
    def inducing_inputs(self) -> np.ndarray:
        if self._z is None:
            raise RuntimeError("SparseGP is not fitted")
        return self._z

    @property
    def target_mean(self) -> float:
        return self._y_mean

    @property
    def target_std(self) -> float:
        return self._y_std

    @property
    def n_hyperparameters(self) -> int:
        return self.kernel.n_params + 1

    def get_theta(self) -> np.ndarray:
        return np.concatenate((self.kernel.get_theta(), [np.log(self.noise_variance)]))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_hyperparameters,):
            raise ValueError(f"expected {self.n_hyperparameters} hyper-parameters")
        self.kernel.set_theta(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))
        if self.is_fitted:
            # Every statistic involves the kernel and the noise; rebuild.
            self._rebuild()

    # ------------------------------------------------------------------
    def _noise_rows(self, extra: np.ndarray | None, n: int) -> np.ndarray:
        lam = np.full(n, self.noise_variance)
        if extra is not None:
            lam = lam + extra
        return lam

    def _standardize(self) -> None:
        self._y_mean = float(np.mean(self._hist_y))
        self._y_std = float(np.std(self._hist_y))
        if self._y_std < 1e-12:
            self._y_std = 1.0

    def _select_inducing(self) -> None:
        n = self._hist_y.shape[0]
        idx = np.unique(np.linspace(0, n - 1, min(self.n_inducing, n)).round().astype(int))
        self._z = self._hist_x[idx]
        self._n_at_select = n

    def _rebuild(self) -> None:
        """Recompute A, b and factors from the full history, O(n m^2)."""
        x, y = self._hist_x, self._hist_y
        lam = self._noise_rows(self._hist_extra, y.shape[0])
        k_zn = self.kernel(self._z, x)  # (m, n)
        weighted = k_zn / lam
        self._a = weighted @ k_zn.T
        self._b_y = weighted @ y
        self._b_1 = np.sum(weighted, axis=1)
        self._standardize()
        self._refactor()

    def _refactor(self) -> None:
        m = self._z.shape[0]
        k_zz = self.kernel(self._z, self._z)
        k_zz[np.diag_indices_from(k_zz)] += _JITTER
        self._kzz_chol = cholesky(k_zz, lower=True, check_finite=False)
        post = k_zz + self._a
        post = (post + post.T) / 2.0
        post[np.diag_indices_from(post)] += _JITTER
        self._post_chol = cholesky(post, lower=True, check_finite=False)

    # ------------------------------------------------------------------
    def fit(self, x, y, extra_noise=None) -> "SparseGP":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self._hist_x = x
        self._hist_y = y
        self._hist_extra = (
            None if extra_noise is None else np.asarray(extra_noise, dtype=float).ravel()
        )
        self._select_inducing()
        self._rebuild()
        return self

    def extend(self, x, y, extra_noise=None) -> "SparseGP":
        """Absorb observations at flat O(m^2 k) — never grows with n.

        All updates rebind arrays (copy-on-write), so shallow copies can
        extend independently.
        """
        if not self.is_fitted:
            return self.fit(x, y, extra_noise=extra_noise)
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        extra = None if extra_noise is None else np.asarray(extra_noise, dtype=float).ravel()
        self._hist_x = np.vstack([self._hist_x, x])
        if self._hist_extra is not None or extra is not None:
            self._hist_extra = np.concatenate([
                self._hist_extra if self._hist_extra is not None else np.zeros(self._hist_y.shape[0]),
                extra if extra is not None else np.zeros(y.shape[0]),
            ])
        self._hist_y = np.concatenate([self._hist_y, y])
        if self._hist_y.shape[0] >= self.reselect_factor * max(self._n_at_select, 1):
            self._select_inducing()
            self._rebuild()
            return self
        lam = self._noise_rows(extra, y.shape[0])
        k_zk = self.kernel(self._z, x)  # (m, k)
        weighted = k_zk / lam
        self._a = self._a + weighted @ k_zk.T
        self._b_y = self._b_y + weighted @ y
        self._b_1 = self._b_1 + np.sum(weighted, axis=1)
        self._standardize()
        self._refactor()
        return self

    def predict(self, x_star: np.ndarray, return_std: bool = True):
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_sz = self.kernel(self._z, x_star)  # (m, q)
        b_std = (self._b_y - self._y_mean * self._b_1) / self._y_std
        mean = k_sz.T @ cho_solve((self._post_chol, True), b_std, check_finite=False)
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        q = solve_triangular(self._kzz_chol, k_sz, lower=True, check_finite=False)
        t = cho_solve((self._post_chol, True), k_sz, check_finite=False)
        var = (
            self.kernel.diag(x_star)
            + self.noise_variance
            - np.sum(q * q, axis=0)
            + np.sum(k_sz * t, axis=0)
        )
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    def acquisition(self, x_star: np.ndarray, best: float, xi: float = 0.0) -> np.ndarray:
        mean, std = self.predict(x_star)
        return expected_improvement(mean, std, best, xi=xi)

    def shallow_copy(self) -> "SparseGP":
        """A cheap copy safe to extend independently (liar surrogates)."""
        copy = SparseGP(
            self.kernel.clone(),
            self.noise_variance,
            n_inducing=self.n_inducing,
            reselect_factor=self.reselect_factor,
        )
        copy._hist_x = self._hist_x
        copy._hist_y = self._hist_y
        copy._hist_extra = self._hist_extra
        copy._z = self._z
        copy._n_at_select = self._n_at_select
        copy._a = self._a
        copy._b_y = self._b_y
        copy._b_1 = self._b_1
        copy._kzz_chol = self._kzz_chol
        copy._post_chol = self._post_chol
        copy._y_mean = self._y_mean
        copy._y_std = self._y_std
        return copy
