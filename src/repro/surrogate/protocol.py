"""The ``Surrogate`` protocol: what the BO loop requires of a model.

The loop (and every GP-backed consumer above it) needs exactly four
capabilities: train from scratch, append observations without a full
refit, predict, and score an acquisition function.  Anything providing
those — the plain :class:`~repro.bo.gp.GaussianProcess`, the
:class:`~repro.core.dagp.DatasizeAwareGP`, or a future multi-task or
neural surrogate — can drive a tuning session.

The protocol is *structural* (:pep:`544`): implementations do not
inherit from it, they just provide the methods.  Signatures are kept
loose on purpose — the GP takes ``(x, y)`` while the DAGP takes
``(config_points, datasizes_gb, durations_s)`` — because the loop is
always written against one concrete input convention; what the protocol
pins down is the *lifecycle*:

``fit``
    Train from scratch on the full observation set.  Always allowed;
    resets any incremental state.

``extend``
    Append observations to an already-fitted model.  Must be
    *algebraically exact*: the posterior after ``extend`` equals the
    posterior of a from-scratch ``fit`` on the concatenated data up to
    floating-point round-off (see
    :func:`~repro.surrogate.incremental.cholesky_append`).  Cost is
    O(n^2 k) for k new rows instead of the O(n^3) refit.

``predict``
    Posterior mean and standard deviation at query points.

``acquisition``
    Scores to *maximize* (expected improvement in this repository),
    marginalized over hyper-parameter posterior samples when the
    implementation carries them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Surrogate(Protocol):
    """Structural interface of every surrogate model in the engine."""

    @property
    def is_fitted(self) -> bool:
        """True once ``fit`` (or a fit-delegating ``extend``) has run."""
        ...

    def fit(self, *args, **kwargs):
        """Train from scratch; returns ``self``."""
        ...

    def extend(self, *args, **kwargs):
        """Append observations via exact incremental updates; returns ``self``."""
        ...

    def predict(self, *args, **kwargs):
        """Posterior mean (and optionally standard deviation) at query points."""
        ...

    def acquisition(self, *args, **kwargs):
        """Acquisition scores (to maximize) at query points."""
        ...
