"""Exact incremental linear algebra for Gaussian process surrogates.

Two small primitives with an outsized effect on optimizer time:

* :func:`cholesky_append` — the block (rank-k) Cholesky update.  Given
  the factor of the current training covariance, appending k
  observations costs O(n^2 k) instead of the O(n^3) refactorization,
  and the result is *algebraically identical* to factorizing the
  extended matrix from scratch (the block formula is exact; only
  floating-point round-off differs).
* :class:`LMLCache` — a per-theta memo for log-marginal-likelihood
  values.  Univariate slice sampling re-evaluates the posterior at the
  current state once per coordinate update (plus every step-out bound it
  revisits); each of those evaluations is a full kernel build and
  Cholesky factorization.  Memoizing by the exact hyper-parameter bytes
  returns the identical float for identical states, so the sampler's
  accept/reject decisions — and therefore its RNG draw sequence — are
  unchanged.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cholesky, solve_triangular


def cholesky_append(
    lower: np.ndarray, k_cross: np.ndarray, k_new: np.ndarray
) -> np.ndarray:
    """Extend a lower Cholesky factor by a block of new rows/columns.

    With ``lower @ lower.T == K`` (n x n), returns the lower factor of
    the extended covariance ``[[K, B], [B.T, C]]`` where ``B`` is
    ``k_cross`` (n x k, covariance between old and new inputs) and ``C``
    is ``k_new`` (k x k, covariance among the new inputs, observation
    noise already on its diagonal).

    The update solves one triangular system (O(n^2 k)) and factorizes
    the k x k Schur complement; it raises
    :class:`numpy.linalg.LinAlgError` if the extended matrix is not
    positive definite (same contract as a from-scratch factorization).
    """
    lower = np.asarray(lower, dtype=float)
    k_cross = np.atleast_2d(np.asarray(k_cross, dtype=float))
    k_new = np.atleast_2d(np.asarray(k_new, dtype=float))
    n = lower.shape[0]
    k = k_new.shape[0]
    if lower.shape != (n, n):
        raise ValueError("lower must be square")
    if k_cross.shape != (n, k):
        raise ValueError(f"k_cross must be ({n}, {k}), got {k_cross.shape}")
    if k_new.shape != (k, k):
        raise ValueError("k_new must be square and match k_cross columns")

    out = np.zeros((n + k, n + k))
    out[:n, :n] = np.tril(lower)
    z = solve_triangular(lower, k_cross, lower=True, check_finite=False)  # (n, k)
    out[n:, :n] = z.T
    schur = k_new - z.T @ z
    # scipy raises numpy.linalg.LinAlgError on a non-PD Schur complement,
    # the same contract as a from-scratch factorization.
    out[n:, n:] = cholesky(schur, lower=True, check_finite=False)
    return out


class LMLCache:
    """Memo of ``theta -> log marginal likelihood`` for one training set.

    Keys are the exact bytes of the hyper-parameter vector: two states
    are "the same" only when they are bit-identical, which is exactly
    the case slice sampling produces (it carries the accepted vector
    forward unchanged).  The cache MUST be cleared whenever the training
    data changes (``fit`` / ``extend``) — the value is a function of
    (theta, data), and only theta is in the key.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._values: dict[bytes, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

    @staticmethod
    def _key(theta: np.ndarray) -> bytes:
        return np.ascontiguousarray(theta, dtype=float).tobytes()

    def get(self, theta: np.ndarray) -> float | None:
        value = self._values.get(self._key(theta))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, theta: np.ndarray, value: float) -> None:
        if len(self._values) >= self.maxsize:
            # Chains are short-lived relative to the cap; a full reset is
            # simpler than LRU bookkeeping and amortizes to nothing.
            self._values.clear()
        self._values[self._key(theta)] = float(value)

    def clear(self) -> None:
        self._values.clear()
