"""Exact incremental linear algebra for Gaussian process surrogates.

Three small primitives with an outsized effect on optimizer time:

* :func:`cholesky_append` — the block (rank-k) Cholesky update.  Given
  the factor of the current training covariance, appending k
  observations costs O(n^2 k) instead of the O(n^3) refactorization,
  and the result is *algebraically identical* to factorizing the
  extended matrix from scratch (the block formula is exact; only
  floating-point round-off differs).
* :func:`cholesky_downdate` — the mirror operation: remove one
  row/column from a factored covariance in O(n^2) via a positive
  rank-1 Cholesky update of the trailing block.  Appending with
  :func:`cholesky_append` and downdating the oldest row slides a
  fixed-size window across an unbounded history at O(W^2) per step.
* :class:`LMLCache` — a bounded per-theta LRU memo for
  log-marginal-likelihood values.  Univariate slice sampling
  re-evaluates the posterior at the current state once per coordinate
  update (plus every step-out bound it revisits); each of those
  evaluations is a full kernel build and Cholesky factorization.
  Memoizing by the exact hyper-parameter bytes returns the identical
  float for identical states, so the sampler's accept/reject decisions
  — and therefore its RNG draw sequence — are unchanged.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cholesky, solve_triangular


def cholesky_append(
    lower: np.ndarray, k_cross: np.ndarray, k_new: np.ndarray
) -> np.ndarray:
    """Extend a lower Cholesky factor by a block of new rows/columns.

    With ``lower @ lower.T == K`` (n x n), returns the lower factor of
    the extended covariance ``[[K, B], [B.T, C]]`` where ``B`` is
    ``k_cross`` (n x k, covariance between old and new inputs) and ``C``
    is ``k_new`` (k x k, covariance among the new inputs, observation
    noise already on its diagonal).

    The update solves one triangular system (O(n^2 k)) and factorizes
    the k x k Schur complement; it raises
    :class:`numpy.linalg.LinAlgError` if the extended matrix is not
    positive definite (same contract as a from-scratch factorization).
    """
    lower = np.asarray(lower, dtype=float)
    k_cross = np.atleast_2d(np.asarray(k_cross, dtype=float))
    k_new = np.atleast_2d(np.asarray(k_new, dtype=float))
    n = lower.shape[0]
    k = k_new.shape[0]
    if lower.shape != (n, n):
        raise ValueError("lower must be square")
    if k_cross.shape != (n, k):
        raise ValueError(f"k_cross must be ({n}, {k}), got {k_cross.shape}")
    if k_new.shape != (k, k):
        raise ValueError("k_new must be square and match k_cross columns")

    out = np.zeros((n + k, n + k))
    out[:n, :n] = np.tril(lower)
    z = solve_triangular(lower, k_cross, lower=True, check_finite=False)  # (n, k)
    out[n:, :n] = z.T
    schur = k_new - z.T @ z
    # scipy raises numpy.linalg.LinAlgError on a non-PD Schur complement,
    # the same contract as a from-scratch factorization.
    out[n:, n:] = cholesky(schur, lower=True, check_finite=False)
    return out


def _rank_one_update(lower: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Return the lower Cholesky factor of ``L @ L.T + v @ v.T``.

    The classic Givens-style sweep: each step rotates the update vector
    into one column of the factor.  Adding a positive rank-1 term keeps
    the matrix positive definite, so — unlike the subtractive downdate —
    this never breaks down.  O(n^2).
    """
    out = np.array(lower, dtype=float, copy=True)
    v = np.array(v, dtype=float, copy=True)
    n = out.shape[0]
    for j in range(n):
        d = out[j, j]
        r = np.hypot(d, v[j])
        c = r / d
        s = v[j] / d
        out[j, j] = r
        if j + 1 < n:
            out[j + 1 :, j] = (out[j + 1 :, j] + s * v[j + 1 :]) / c
            v[j + 1 :] = c * v[j + 1 :] - s * out[j + 1 :, j]
    return out


def cholesky_downdate(lower: np.ndarray, index: int = 0) -> np.ndarray:
    """Remove one row/column from a lower Cholesky factor in O(n^2).

    With ``lower @ lower.T == K`` (n x n), returns the lower factor of
    ``K`` with row/column ``index`` deleted — the mirror of
    :func:`cholesky_append`.  The default ``index=0`` removes the
    *oldest* observation, which is the sliding-window case; an arbitrary
    index supports coreset eviction.

    Partitioning ``lower`` around row ``i`` as ``[[L11, 0, 0],
    [l21, l22, 0], [L31, l32, L33]]``, the reduced covariance keeps
    ``L11`` and ``L31`` unchanged while the trailing block satisfies
    ``L33' @ L33'.T == L33 @ L33.T + l32 @ l32.T`` — a positive rank-1
    update, performed by a Givens sweep.  The result is algebraically
    identical to factorizing the reduced matrix from scratch.
    """
    lower = np.asarray(lower, dtype=float)
    n = lower.shape[0]
    if lower.shape != (n, n):
        raise ValueError("lower must be square")
    if not -n <= index < n:
        raise IndexError(f"index {index} out of range for factor of size {n}")
    i = index % n
    out = np.zeros((n - 1, n - 1))
    out[:i, :i] = np.tril(lower[:i, :i])
    out[i:, :i] = lower[i + 1 :, :i]
    out[i:, i:] = _rank_one_update(lower[i + 1 :, i + 1 :], lower[i + 1 :, i])
    return out


class LMLCache:
    """Bounded LRU memo of ``theta -> log marginal likelihood``.

    Keys are the exact bytes of the hyper-parameter vector: two states
    are "the same" only when they are bit-identical, which is exactly
    the case slice sampling produces (it carries the accepted vector
    forward unchanged).  The cache MUST be cleared whenever the training
    data changes (``fit`` / ``extend``) — the value is a function of
    (theta, data), and only theta is in the key.

    Eviction is least-recently-used, one entry at a time, so a
    long-lived tenant whose chain revisits a small working set of states
    keeps those states hot instead of losing the whole memo at the cap.
    ``hits`` / ``misses`` / ``evictions`` persist across ``clear()`` so
    a benchmark can report totals over a whole session.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._values: dict[bytes, float] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._values)

    @staticmethod
    def _key(theta: np.ndarray) -> bytes:
        return np.ascontiguousarray(theta, dtype=float).tobytes()

    def get(self, theta: np.ndarray) -> float | None:
        key = self._key(theta)
        value = self._values.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
            # Dicts preserve insertion order; re-inserting marks the
            # entry most-recently-used.
            del self._values[key]
            self._values[key] = value
        return value

    def put(self, theta: np.ndarray, value: float) -> None:
        key = self._key(theta)
        if key not in self._values and len(self._values) >= self.maxsize:
            oldest = next(iter(self._values))
            del self._values[oldest]
            self.evictions += 1
        else:
            self._values.pop(key, None)
        self._values[key] = float(value)

    def clear(self) -> None:
        self._values.clear()

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus current occupancy, for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._values),
            "maxsize": self.maxsize,
        }
