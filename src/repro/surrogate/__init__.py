"""The surrogate engine: incremental GPs and vectorized EI-MCMC.

This layer sits between :mod:`repro.bo` (kernels, GP regression, slice
sampling) and :mod:`repro.core` (DAGP, the BO loop).  It packages the
three mechanisms that keep the optimizer time of a long tuning session
from being dominated by redundant O(n^3) refits:

* :class:`~repro.surrogate.protocol.Surrogate` — the structural
  interface (``fit`` / ``extend`` / ``predict`` / ``acquisition``) that
  :class:`~repro.bo.gp.GaussianProcess` and
  :class:`~repro.core.dagp.DatasizeAwareGP` implement and that the BO
  loop, LOCAT, and the GP-backed baselines consume.
* :func:`~repro.surrogate.incremental.cholesky_append` and
  :class:`~repro.surrogate.incremental.LMLCache` — the exact rank-k
  Cholesky update behind ``extend`` and the per-theta memo behind the
  slice sampler's log-marginal-likelihood evaluations.
* :class:`~repro.surrogate.stack.ModelStack` — the ``n_mcmc`` posterior
  hyper-parameter samples held as stacked ``(chol, alpha)`` state and
  evaluated in one vectorized pass, replacing the per-clone Python loop.
"""

from repro.surrogate.incremental import LMLCache, cholesky_append
from repro.surrogate.protocol import Surrogate
from repro.surrogate.stack import ModelStack

__all__ = [
    "LMLCache",
    "ModelStack",
    "Surrogate",
    "cholesky_append",
]
