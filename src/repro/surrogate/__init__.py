"""The surrogate engine: incremental GPs and vectorized EI-MCMC.

This layer sits between :mod:`repro.bo` (kernels, GP regression, slice
sampling) and :mod:`repro.core` (DAGP, the BO loop).  It packages the
mechanisms that keep the optimizer time of a long tuning session — and
of a long-lived service tenant — from being dominated by O(n^3) refits:

* :class:`~repro.surrogate.protocol.Surrogate` — the structural
  interface (``fit`` / ``extend`` / ``predict`` / ``acquisition``) that
  :class:`~repro.bo.gp.GaussianProcess` and
  :class:`~repro.core.dagp.DatasizeAwareGP` implement and that the BO
  loop, LOCAT, and the GP-backed baselines consume.
* :func:`~repro.surrogate.incremental.cholesky_append` /
  :func:`~repro.surrogate.incremental.cholesky_downdate` and
  :class:`~repro.surrogate.incremental.LMLCache` — the exact rank-k
  Cholesky update/downdate pair behind ``extend`` and sliding windows,
  and the bounded LRU per-theta memo behind the slice sampler's
  log-marginal-likelihood evaluations.
* :class:`~repro.surrogate.stack.ModelStack` — the ``n_mcmc`` posterior
  hyper-parameter samples held as stacked ``(chol, alpha)`` state and
  evaluated in one vectorized pass, replacing the per-clone Python loop.
* Scalable backends behind the same protocol:
  :class:`~repro.surrogate.windowed.WindowedGP` (recent window + greedy
  high-information coreset, O(W^2) per decision) and
  :class:`~repro.surrogate.sparse.SparseGP` (Nystrom inducing points,
  O(m^2) per decision), selected per history size by
  :class:`~repro.surrogate.policy.BackendPolicy`.
"""

from repro.surrogate.incremental import LMLCache, cholesky_append, cholesky_downdate
from repro.surrogate.policy import SURROGATE_BACKENDS, BackendPolicy, validate_backend
from repro.surrogate.protocol import Surrogate
from repro.surrogate.stack import ModelStack


def __getattr__(name: str):
    # The backend classes live above repro.bo (they wrap a
    # GaussianProcess) while repro.bo.gp imports this package's
    # incremental primitives — resolve them lazily to keep the package
    # importable from either direction.
    if name == "WindowedGP":
        from repro.surrogate.windowed import WindowedGP

        return WindowedGP
    if name == "SparseGP":
        from repro.surrogate.sparse import SparseGP

        return SparseGP
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BackendPolicy",
    "LMLCache",
    "ModelStack",
    "SURROGATE_BACKENDS",
    "SparseGP",
    "Surrogate",
    "WindowedGP",
    "cholesky_append",
    "cholesky_downdate",
    "validate_backend",
]
