"""Shared experiment runners.

These helpers centralise the seeded setup code every figure driver needs:
building simulators, collecting CV / IICP sample matrices, and running a
tuner comparison on one (application, datasize) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import DAC, GBORL, QTune, Tuneful
from repro.core import LOCAT, SparkSQLObjective
from repro.core.result import TuningResult
from repro.sparksim import SparkSQLSimulator, get_application
from repro.sparksim.cluster import get_cluster
from repro.sparksim.configspace import Configuration
from repro.stats.sampling import ensure_rng

BASELINE_CLASSES = (Tuneful, DAC, GBORL, QTune)
BASELINE_NAMES = tuple(cls.NAME for cls in BASELINE_CLASSES)


def make_simulator(cluster: str = "x86", noise: float = 0.04) -> SparkSQLSimulator:
    """A simulator for one of the paper's clusters (``"arm"`` / ``"x86"``)."""
    return SparkSQLSimulator(get_cluster(cluster), noise=noise)


def collect_cv_samples(
    benchmark: str = "tpcds",
    cluster: str = "arm",
    datasize_gb: float = 300.0,
    n_samples: int = 30,
    rng: int | np.random.Generator | None = 7,
) -> dict[str, list[float]]:
    """QCSA's sample matrix S: per-query times over N random configs."""
    from repro.core.qcsa import QCSA

    simulator = make_simulator(cluster)
    app = get_application(benchmark)
    objective = SparkSQLObjective(simulator, app, rng=ensure_rng(rng))
    return QCSA(n_samples=n_samples).collect(objective, datasize_gb, rng=objective.rng)


def collect_iicp_samples(
    benchmark: str = "tpcds",
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    n_samples: int = 50,
    rng: int | np.random.Generator | None = 7,
) -> tuple[list[Configuration], np.ndarray, SparkSQLSimulator]:
    """IICP's sample matrix S': (configs, durations) over LHS samples."""
    from repro.bo.lhs import latin_hypercube

    simulator = make_simulator(cluster)
    app = get_application(benchmark)
    gen = ensure_rng(rng)
    configs: list[Configuration] = []
    durations: list[float] = []
    for point in latin_hypercube(n_samples, simulator.space.dim, gen):
        config = simulator.space.decode(point)
        configs.append(config)
        durations.append(simulator.run(app, config, datasize_gb, rng=gen).duration_s)
    return configs, np.array(durations), simulator


@dataclass
class TunerComparison:
    """LOCAT vs the four baselines on one (benchmark, cluster, datasize)."""

    benchmark: str
    cluster: str
    datasize_gb: float
    results: dict[str, TuningResult] = field(default_factory=dict)

    @property
    def locat(self) -> TuningResult:
        return self.results["LOCAT"]

    def overhead_ratio(self, name: str) -> float:
        """Baseline optimization time divided by LOCAT's (Figures 11-12)."""
        return self.results[name].overhead_s / self.locat.overhead_s

    def speedup(self, name: str) -> float:
        """Baseline-tuned runtime divided by LOCAT-tuned (Figures 13-14)."""
        return self.results[name].best_duration_s / self.locat.best_duration_s


def compare_tuners(
    benchmark: str = "tpcds",
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    seed: int = 11,
    locat_iterations: int = 30,
    baselines: tuple = BASELINE_CLASSES,
) -> TunerComparison:
    """Tune one benchmark with LOCAT and each baseline at one datasize."""
    app = get_application(benchmark)
    comparison = TunerComparison(benchmark=benchmark, cluster=cluster, datasize_gb=datasize_gb)

    simulator = make_simulator(cluster)
    locat = LOCAT(simulator, app, rng=seed, max_iterations=locat_iterations)
    comparison.results["LOCAT"] = locat.tune(datasize_gb)

    for cls in baselines:
        tuner = cls(make_simulator(cluster), app, rng=seed)
        comparison.results[cls.NAME] = tuner.tune(datasize_gb)
    return comparison


def measure_config(
    simulator: SparkSQLSimulator,
    benchmark: str,
    config: Configuration,
    datasize_gb: float,
    repeats: int = 3,
    rng: int | np.random.Generator | None = 0,
) -> float:
    """Mean full-application runtime of a fixed configuration."""
    app = get_application(benchmark)
    gen = ensure_rng(rng)
    return float(
        np.mean([simulator.run(app, config, datasize_gb, rng=gen).duration_s for _ in range(repeats)])
    )
