"""One driver per paper figure/table (see DESIGN.md's experiment index).

Every driver returns a small result object carrying the measured values
plus the paper's reference numbers, and a ``render()`` method producing
the ASCII table the benchmarks print.  Budget arguments let benchmarks
trade fidelity for wall-clock; defaults reproduce the paper's settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import DAC, GBORL, QTune, Tuneful
from repro.core import LOCAT, SparkSQLObjective
from repro.core.iicp import IICP, run_cps, run_cpe
from repro.core.qcsa import analyze_samples
from repro.harness.experiment import (
    BASELINE_CLASSES,
    collect_cv_samples,
    collect_iicp_samples,
    compare_tuners,
    make_simulator,
)
from repro.harness.report import format_series, format_table
from repro.ml import (
    GradientBoostedRegressionTrees,
    KNNRegressor,
    KernelSVR,
    LinearRegression,
    LogisticRegression,
    mean_squared_error,
    train_test_split,
)
from repro.sparksim import get_application
from repro.sparksim.workloads import DISPLAY_NAMES
from repro.sparksim.workloads.tpcds import CSQ_SHUFFLE_FRACTIONS
from repro.stats import coefficient_of_variation
from repro.stats.sampling import ensure_rng

#: The paper's CSQ set for TPC-DS (section 5.2).
PAPER_CSQ = frozenset(CSQ_SHUFFLE_FRACTIONS)

#: Average optimization-time reductions (Figures 11-12) per cluster.
PAPER_OPT_TIME_REDUCTION = {
    "arm": {"Tuneful": 6.4, "DAC": 7.0, "GBO-RL": 4.1, "QTune": 9.7},
    "x86": {"Tuneful": 6.4, "DAC": 6.3, "GBO-RL": 4.0, "QTune": 9.2},
}

#: Average speedups of LOCAT-tuned configs (Figures 13-14) per cluster.
PAPER_SPEEDUP = {
    "arm": {"Tuneful": 2.4, "DAC": 2.2, "GBO-RL": 2.0, "QTune": 1.9},
    "x86": {"Tuneful": 2.8, "DAC": 2.6, "GBO-RL": 2.3, "QTune": 2.1},
}

#: Table 3: the paper's top-5 CPS parameters for TPC-DS at three sizes.
PAPER_TABLE3 = {
    100.0: [
        "sql.shuffle.partitions",
        "executor.memory",
        "executor.cores",
        "shuffle.compress",
        "executor.instances",
    ],
    500.0: [
        "sql.shuffle.partitions",
        "shuffle.compress",
        "executor.memory",
        "executor.instances",
        "executor.cores",
    ],
    1024.0: [
        "sql.shuffle.partitions",
        "shuffle.compress",
        "executor.memory",
        "executor.instances",
        "memory.offHeap.size",
    ],
}


# ----------------------------------------------------------------------
# Figure 2 — SOTA optimization overhead vs datasize
# ----------------------------------------------------------------------
@dataclass
class Fig02Result:
    datasizes: tuple[float, ...]
    overhead_hours: dict[str, list[float]]  # tuner -> per-datasize hours

    def render(self) -> str:
        return format_series(
            "datasize_gb",
            self.datasizes,
            self.overhead_hours,
            title="Figure 2: optimization overhead (hours) of SOTA tuners on TPC-DS",
        )


def fig02_sota_overhead(
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0, 500.0),
    seed: int = 7,
    benchmark: str = "tpcds",
) -> Fig02Result:
    """Each SOTA tuner's total sample-collection time per datasize.

    Paper observations to reproduce: every tuner needs tens-to-hundreds
    of hours even at 100 GB, and the cost grows steeply with datasize.
    """
    app = get_application(benchmark)
    overhead: dict[str, list[float]] = {cls.NAME: [] for cls in BASELINE_CLASSES}
    for cls in BASELINE_CLASSES:
        for ds in datasizes:
            tuner = cls(make_simulator(cluster), app, rng=seed)
            overhead[cls.NAME].append(tuner.tune(ds).overhead_hours)
    return Fig02Result(datasizes=datasizes, overhead_hours=overhead)


# ----------------------------------------------------------------------
# Figure 6 — KPCA kernel choice
# ----------------------------------------------------------------------
@dataclass
class Fig06Result:
    sd_by_kernel: dict[str, dict[str, float]]  # benchmark -> kernel -> SD

    def render(self) -> str:
        kernels = ("gaussian", "perceptron", "polynomial")
        rows = [
            [bench, *(self.sd_by_kernel[bench][k] for k in kernels)]
            for bench in self.sd_by_kernel
        ]
        return format_table(
            ["benchmark", *kernels],
            rows,
            title="Figure 6: SD of execution times by KPCA kernel (higher = better kernel)",
        )

    def gaussian_wins(self, benchmark: str) -> bool:
        sds = self.sd_by_kernel[benchmark]
        return sds["gaussian"] == max(sds.values())


def fig06_kernel_choice(
    benchmarks: tuple[str, ...] = ("tpcds", "tpch"),
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    n_samples: int = 30,
    n_probe: int = 20,
    seed: int = 7,
) -> Fig06Result:
    """Compare KPCA kernels by the SD of execution times they induce.

    Following section 3.3.2: configurations sampled through each kernel's
    latent space are executed; a larger SD means the kernel's components
    capture more performance-relevant structure.  The paper finds the
    Gaussian kernel wins on both TPC-DS and TPC-H.
    """
    out: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        configs, durations, simulator = collect_iicp_samples(
            benchmark, cluster, datasize_gb, n_samples=n_samples, rng=seed
        )
        app = get_application(benchmark)
        cps = run_cps(simulator.space, configs, durations)
        gen = ensure_rng(seed + 1)
        out[DISPLAY_NAMES[benchmark]] = {}
        for kernel in ("gaussian", "perceptron", "polynomial"):
            cpe = run_cpe(simulator.space, configs, cps, kernel=kernel, n_components=10)
            low, high = cpe.kpca.latent_bounds()
            times = []
            for _ in range(n_probe):
                z = low + gen.random(cpe.n_components) * (high - low)
                point = cpe.kpca.inverse_transform(z[None, :])[0]
                config = simulator.space.decode_subset(point, list(cps.selected))
                times.append(simulator.run(app, config, datasize_gb, rng=gen).duration_s)
            out[DISPLAY_NAMES[benchmark]][kernel] = float(np.std(times))
    return Fig06Result(sd_by_kernel=out)


# ----------------------------------------------------------------------
# Figure 7 — CV convergence vs N_QCSA
# ----------------------------------------------------------------------
@dataclass
class Fig07Result:
    sample_counts: tuple[int, ...]
    mean_cv: dict[str, list[float]]  # benchmark -> mean CV per N

    def render(self) -> str:
        return format_series(
            "N_QCSA",
            self.sample_counts,
            self.mean_cv,
            title="Figure 7: mean query CV vs number of QCSA samples (flat after ~30)",
        )

    def converged_after(self, benchmark: str, n: int = 30, tolerance: float = 0.12) -> bool:
        """CV change stays within ``tolerance`` (relative) beyond ``n``."""
        values = self.mean_cv[benchmark]
        tail = [v for c, v in zip(self.sample_counts, values) if c >= n]
        if len(tail) < 2:
            return True
        return (max(tail) - min(tail)) <= tolerance * max(max(tail), 1e-9)


def fig07_nqcsa(
    benchmarks: tuple[str, ...] = ("tpcds", "tpch"),
    cluster: str = "arm",
    datasize_gb: float = 300.0,
    sample_counts: tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50, 55),
    seed: int = 7,
) -> Fig07Result:
    """How the CV estimate changes as QCSA samples accumulate."""
    max_n = max(sample_counts)
    out: dict[str, list[float]] = {}
    for benchmark in benchmarks:
        samples = collect_cv_samples(benchmark, cluster, datasize_gb, n_samples=max_n, rng=seed)
        series = []
        for n in sample_counts:
            cvs = [coefficient_of_variation(times[:n]) for times in samples.values()]
            series.append(float(np.mean(cvs)))
        out[DISPLAY_NAMES[benchmark]] = series
    return Fig07Result(sample_counts=sample_counts, mean_cv=out)


# ----------------------------------------------------------------------
# Figure 8 — per-query CV for TPC-DS + the CSQ/CIQ split
# ----------------------------------------------------------------------
@dataclass
class Fig08Result:
    cvs: dict[str, float]
    csq: tuple[str, ...]
    ciq: tuple[str, ...]
    threshold: float

    @property
    def overlap_with_paper(self) -> int:
        return len(set(self.csq) & PAPER_CSQ)

    def render(self) -> str:
        ranked = sorted(self.cvs.items(), key=lambda kv: -kv[1])
        rows = [[name, cv, "CSQ" if name in self.csq else "CIQ"] for name, cv in ranked[:30]]
        table = format_table(
            ["query", "CV", "class"],
            rows,
            title="Figure 8 (top 30 by CV): TPC-DS query configuration sensitivity",
        )
        summary = (
            f"\nCSQ: {len(self.csq)} queries (paper: 23); overlap with the paper's set: "
            f"{self.overlap_with_paper}/23; threshold {self.threshold:.2f}"
        )
        return table + summary


def fig08_query_cv(
    cluster: str = "arm",
    datasize_gb: float = 300.0,
    n_samples: int = 30,
    seed: int = 42,
) -> Fig08Result:
    """Per-query CVs over N_QCSA=30 random configurations (TPC-DS)."""
    samples = collect_cv_samples("tpcds", cluster, datasize_gb, n_samples=n_samples, rng=seed)
    result = analyze_samples(samples)
    return Fig08Result(cvs=result.cvs, csq=result.csq, ciq=result.ciq, threshold=result.threshold)


# ----------------------------------------------------------------------
# Figure 9 — number of important parameters vs N_IICP
# ----------------------------------------------------------------------
@dataclass
class Fig09Result:
    sample_counts: tuple[int, ...]
    n_selected: dict[str, list[int]]  # benchmark -> CPS-selected count per N
    top5: dict[str, dict[int, list[str]]]  # benchmark -> N -> top-5 params

    def render(self) -> str:
        return format_series(
            "N_IICP",
            self.sample_counts,
            self.n_selected,
            title="Figure 9: CPS-selected parameter count vs sample count (stable after ~20)",
        )

    def stable_after(self, benchmark: str, n: int = 20, spread: int = 6) -> bool:
        values = [
            v for c, v in zip(self.sample_counts, self.n_selected[benchmark]) if c >= n
        ]
        return not values or (max(values) - min(values)) <= spread

    def head_overlap(self, benchmark: str, n_small: int = 20, n_large: int | None = None) -> int:
        """How many of the top-5 at ``n_small`` samples remain in the
        top-5 at the largest sample count — the ranking-head stability
        that makes N_IICP=20 sufficient for tuning."""
        per_n = self.top5[benchmark]
        if n_large is None:
            n_large = max(per_n)
        return len(set(per_n[n_small]) & set(per_n[n_large]))


def fig09_niicp(
    benchmarks: tuple[str, ...] = ("tpcds", "tpch", "join", "scan", "aggregation"),
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    sample_counts: tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    seed: int = 7,
) -> Fig09Result:
    """How the identified-important-parameter count varies with N_IICP."""
    max_n = max(sample_counts)
    out: dict[str, list[int]] = {}
    top5: dict[str, dict[int, list[str]]] = {}
    for benchmark in benchmarks:
        configs, durations, simulator = collect_iicp_samples(
            benchmark, cluster, datasize_gb, n_samples=max_n, rng=seed
        )
        series = []
        top5[DISPLAY_NAMES[benchmark]] = {}
        for n in sample_counts:
            cps = run_cps(simulator.space, configs[:n], durations[:n])
            series.append(len(cps.selected))
            top5[DISPLAY_NAMES[benchmark]][n] = cps.top(5)
        out[DISPLAY_NAMES[benchmark]] = series
    return Fig09Result(sample_counts=sample_counts, n_selected=out, top5=top5)


# ----------------------------------------------------------------------
# Figure 10 — parameter counts: original vs CPS vs CPE
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    counts: dict[str, tuple[int, int, int]]  # benchmark -> (orig, cps, cpe)

    def render(self) -> str:
        rows = [[b, *c] for b, c in self.counts.items()]
        return format_table(
            ["benchmark", "original", "CPS", "CPE"],
            rows,
            title="Figure 10: parameters kept by CPS and extracted by CPE (paper: 38 -> ~26-31 -> ~8-15)",
        )


def fig10_cps_cpe(
    benchmarks: tuple[str, ...] = ("tpcds", "tpch", "join", "scan", "aggregation"),
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    n_samples: int = 20,
    seed: int = 7,
) -> Fig10Result:
    """CPS keeps ~2/3 of the 38 parameters; CPE extracts ~1/3 of those."""
    counts: dict[str, tuple[int, int, int]] = {}
    for benchmark in benchmarks:
        configs, durations, simulator = collect_iicp_samples(
            benchmark, cluster, datasize_gb, n_samples=n_samples, rng=seed
        )
        cps = run_cps(simulator.space, configs, durations)
        cap = min(15, max(5, len(cps.selected) // 2))
        cpe = run_cpe(simulator.space, configs, cps, n_components=cap)
        counts[DISPLAY_NAMES[benchmark]] = (simulator.space.dim, len(cps.selected), cpe.n_components)
    return Fig10Result(counts=counts)


# ----------------------------------------------------------------------
# Table 3 — top-5 important parameters by datasize
# ----------------------------------------------------------------------
@dataclass
class Tab03Result:
    top5: dict[float, list[str]]  # datasize -> top-5 parameter names

    def render(self) -> str:
        rows = []
        for rank in range(5):
            row = [f"#{rank + 1}"]
            for ds in self.top5:
                row.append(self.top5[ds][rank])
            rows.append(row)
        headers = ["rank", *(f"{ds:.0f}GB" for ds in self.top5)]
        return format_table(headers, rows, title="Table 3: top-5 CPS parameters for TPC-DS")

    def overlap_with_paper(self, datasize_gb: float) -> int:
        return len(set(self.top5[datasize_gb]) & set(PAPER_TABLE3[datasize_gb]))


def tab03_top_params(
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 500.0, 1024.0),
    n_samples: int = 40,
    seed: int = 7,
) -> Tab03Result:
    """Top-5 parameters by |SCC| for TPC-DS at 100 GB / 500 GB / 1 TB."""
    top5: dict[float, list[str]] = {}
    for ds in datasizes:
        configs, durations, simulator = collect_iicp_samples(
            "tpcds", cluster, ds, n_samples=n_samples, rng=seed
        )
        cps = run_cps(simulator.space, configs, durations)
        top5[ds] = cps.top(5)
    return Tab03Result(top5=top5)


# ----------------------------------------------------------------------
# Figures 11/12 — optimization-time reduction per benchmark
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    cluster: str
    reductions: dict[str, dict[str, float]]  # benchmark -> baseline -> ratio

    def averages(self) -> dict[str, float]:
        names = next(iter(self.reductions.values())).keys()
        return {
            n: float(np.mean([self.reductions[b][n] for b in self.reductions]))
            for n in names
        }

    def render(self) -> str:
        names = list(next(iter(self.reductions.values())).keys())
        rows = [[b, *(self.reductions[b][n] for n in names)] for b in self.reductions]
        avg = self.averages()
        rows.append(["Average", *(avg[n] for n in names)])
        paper = PAPER_OPT_TIME_REDUCTION[self.cluster]
        rows.append(["Paper avg", *(paper[n] for n in names)])
        fig = "11" if self.cluster == "arm" else "12"
        return format_table(
            ["benchmark", *names],
            rows,
            title=f"Figure {fig}: optimization-time reduction vs LOCAT ({self.cluster} cluster)",
        )


def fig11_opt_time(
    cluster: str = "arm",
    benchmarks: tuple[str, ...] = ("tpcds", "tpch", "join", "scan", "aggregation"),
    datasize_gb: float = 300.0,
    seed: int = 11,
) -> Fig11Result:
    """Baseline optimization time divided by LOCAT's, per benchmark."""
    reductions: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        comparison = compare_tuners(benchmark, cluster, datasize_gb, seed=seed)
        reductions[DISPLAY_NAMES[benchmark]] = {
            name: comparison.overhead_ratio(name)
            for name in comparison.results
            if name != "LOCAT"
        }
    return Fig11Result(cluster=cluster, reductions=reductions)


def fig12_opt_time(**kwargs) -> Fig11Result:
    """Figure 12 is Figure 11 on the x86 cluster."""
    kwargs.setdefault("cluster", "x86")
    return fig11_opt_time(**kwargs)


# ----------------------------------------------------------------------
# Figures 13/14 — speedups over baseline-tuned configurations
# ----------------------------------------------------------------------
@dataclass
class Fig13Result:
    cluster: str
    speedups: dict[str, dict[float, dict[str, float]]]  # bench -> ds -> baseline -> x

    def averages(self) -> dict[str, float]:
        acc: dict[str, list[float]] = {}
        for per_ds in self.speedups.values():
            for per_baseline in per_ds.values():
                for name, value in per_baseline.items():
                    acc.setdefault(name, []).append(value)
        return {n: float(np.mean(v)) for n, v in acc.items()}

    def render(self) -> str:
        names = sorted(self.averages())
        rows = []
        for bench, per_ds in self.speedups.items():
            for ds, per_baseline in per_ds.items():
                rows.append([f"{bench}@{ds:.0f}GB", *(per_baseline[n] for n in names)])
        avg = self.averages()
        rows.append(["Average", *(avg[n] for n in names)])
        paper = PAPER_SPEEDUP[self.cluster]
        rows.append(["Paper avg", *(paper[n] for n in names)])
        fig = "13" if self.cluster == "arm" else "14"
        return format_table(
            ["pair", *names],
            rows,
            title=(
                f"Figure {fig}: speedup of LOCAT-tuned configs over baseline-tuned "
                f"({self.cluster}; baselines tuned once, LOCAT adapts across datasizes)"
            ),
        )


def fig13_speedup(
    cluster: str = "arm",
    benchmarks: tuple[str, ...] = ("tpcds", "tpch", "join", "scan", "aggregation"),
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0, 500.0),
    seed: int = 7,
    locat_iterations: int = 25,
) -> Fig13Result:
    """Speedups across the 25 program-input pairs.

    Baselines tune each benchmark once (at the smallest datasize — they
    cannot adapt to datasize changes, the paper's core critique), and
    their configuration is reused for the other sizes.  LOCAT tunes
    online: one bootstrap, then cheap DAGP adaptation per datasize.
    """
    speedups: dict[str, dict[float, dict[str, float]]] = {}
    for benchmark in benchmarks:
        app = get_application(benchmark)
        simulator = make_simulator(cluster)
        baseline_results = {
            cls.NAME: cls(make_simulator(cluster), app, rng=seed).tune(datasizes[0])
            for cls in BASELINE_CLASSES
        }
        locat = LOCAT(simulator, app, rng=seed, max_iterations=locat_iterations)
        gen = ensure_rng(seed + 1)
        per_ds: dict[float, dict[str, float]] = {}
        for ds in datasizes:
            locat_result = locat.tune(ds)
            per_baseline = {}
            for name, result in baseline_results.items():
                runtime = float(
                    np.mean(
                        [
                            simulator.run(app, result.best_config, ds, rng=gen).duration_s
                            for _ in range(3)
                        ]
                    )
                )
                per_baseline[name] = runtime / locat_result.best_duration_s
            per_ds[ds] = per_baseline
        speedups[DISPLAY_NAMES[benchmark]] = per_ds
    return Fig13Result(cluster=cluster, speedups=speedups)


def fig14_speedup(**kwargs) -> Fig13Result:
    """Figure 14 is Figure 13 on the x86 cluster."""
    kwargs.setdefault("cluster", "x86")
    return fig13_speedup(**kwargs)


# ----------------------------------------------------------------------
# Figure 15 — tuning all parameters (AP) vs important parameters (IP)
# ----------------------------------------------------------------------
@dataclass
class Fig15Result:
    datasizes: tuple[float, ...]
    ap_durations: list[float]
    ip_durations: list[float]

    @property
    def mean_improvement(self) -> float:
        return float(np.mean(np.array(self.ap_durations) / np.array(self.ip_durations)))

    def render(self) -> str:
        table = format_series(
            "datasize_gb",
            self.datasizes,
            {"AP (all 38)": self.ap_durations, "IP (important)": self.ip_durations},
            title="Figure 15: TPC-DS tuned with all parameters vs important parameters",
        )
        return table + f"\nIP beats AP by {self.mean_improvement:.2f}x on average (paper: 1.8x)"


def fig15_ap_vs_ip(
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0, 500.0),
    seed: int = 7,
    locat_iterations: int = 25,
) -> Fig15Result:
    """LOCAT with IICP (IP) vs the all-parameters ablation (AP).

    The final greedy polish is disabled for both variants: it operates in
    the raw configuration space and would mask the dimensionality effect
    this experiment isolates (BO over 38 dimensions vs over the IICP
    latents).
    """
    app = get_application("tpcds")
    ap = LOCAT(make_simulator(cluster), app, rng=seed, use_iicp=False,
               use_polish=False, max_iterations=locat_iterations)
    ip = LOCAT(make_simulator(cluster), app, rng=seed, use_polish=False,
               max_iterations=locat_iterations)
    ap_durations = [ap.tune(ds).best_duration_s for ds in datasizes]
    ip_durations = [ip.tune(ds).best_duration_s for ds in datasizes]
    return Fig15Result(datasizes=datasizes, ap_durations=ap_durations, ip_durations=ip_durations)


# ----------------------------------------------------------------------
# Figure 16 — performance-model accuracy comparison
# ----------------------------------------------------------------------
@dataclass
class Fig16Result:
    mse: dict[str, dict[str, float]]  # benchmark -> model -> MSE

    def model_names(self) -> list[str]:
        return list(next(iter(self.mse.values())).keys())

    def averages(self) -> dict[str, float]:
        names = self.model_names()
        return {n: float(np.mean([self.mse[b][n] for b in self.mse])) for n in names}

    def render(self) -> str:
        names = self.model_names()
        rows = [[b, *(self.mse[b][n] for n in names)] for b in self.mse]
        avg = self.averages()
        rows.append(["AVG", *(avg[n] for n in names)])
        return format_table(
            ["benchmark", *names],
            rows,
            title="Figure 16: model MSE on normalized times (paper: GBRT lowest, <0.15 avg)",
        )


def fig16_model_mse(
    benchmarks: tuple[str, ...] = ("tpcds", "tpch", "join", "scan", "aggregation"),
    cluster: str = "x86",
    datasize_gb: float = 300.0,
    n_samples: int = 60,
    seed: int = 7,
) -> Fig16Result:
    """Train GBRT/SVR/LinearR/LR/KNNAR on the same data, compare MSE.

    Targets are min-max normalized to [0, 1] (as the paper's sub-0.3 MSE
    values imply) and measured on a held-out quarter of the corpus.
    """
    out: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        configs, durations, simulator = collect_iicp_samples(
            benchmark, cluster, datasize_gb, n_samples=n_samples, rng=seed
        )
        x = np.stack([simulator.space.encode(c) for c in configs])
        y = np.log(durations)
        y = (y - y.min()) / max(y.max() - y.min(), 1e-9)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, rng=seed)
        models = {
            "GBRT": GradientBoostedRegressionTrees(n_estimators=120, max_depth=3, rng=seed),
            "SVR": KernelSVR(),
            "LinearR": LinearRegression(),
            "LR": LogisticRegression(),
            "KNNAR": KNNRegressor(n_neighbors=5),
        }
        out[DISPLAY_NAMES[benchmark]] = {}
        for name, model in models.items():
            model.fit(x_tr, y_tr)
            out[DISPLAY_NAMES[benchmark]][name] = mean_squared_error(y_te, model.predict(x_te))
    return Fig16Result(mse=out)


# ----------------------------------------------------------------------
# Figure 17 — IICP vs GBRT importance quality
# ----------------------------------------------------------------------
@dataclass
class Fig17Result:
    run_counts: tuple[int, ...]
    sd: dict[str, dict[str, list[float]]]  # benchmark -> method -> SD per count

    def render(self) -> str:
        blocks = []
        for benchmark, methods in self.sd.items():
            blocks.append(
                format_series(
                    "runs",
                    self.run_counts,
                    methods,
                    title=f"Figure 17 ({benchmark}): SD of times varying only the "
                    "identified-important parameters (higher = better identification)",
                )
            )
        return "\n\n".join(blocks)

    def iicp_wins(self, benchmark: str) -> bool:
        methods = self.sd[benchmark]
        return float(np.mean(methods["IICP"])) > float(np.mean(methods["GBRT"]))


def fig17_iicp_vs_gbrt(
    benchmarks: tuple[str, ...] = ("tpcds", "join"),
    cluster: str = "x86",
    datasize_gb: float = 100.0,
    run_counts: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    n_train: int = 20,
    top_k: int = 15,
    seed: int = 7,
) -> Fig17Result:
    """Vary only the top-k parameters chosen by IICP vs by GBRT importances.

    Higher SD of the resulting execution times means the chosen
    parameters matter more.  IICP gets the paper's N_IICP=20 samples;
    GBRT trains on the same 20 (its disadvantage: it needs far more).
    """
    out: dict[str, dict[str, list[float]]] = {}
    for benchmark in benchmarks:
        configs, durations, simulator = collect_iicp_samples(
            benchmark, cluster, datasize_gb, n_samples=n_train, rng=seed
        )
        space = simulator.space
        app = get_application(benchmark)
        cps = run_cps(space, configs, durations)
        iicp_params = cps.top(top_k)

        x = np.stack([space.encode(c) for c in configs])
        gbrt = GradientBoostedRegressionTrees(n_estimators=80, max_depth=3, rng=seed)
        gbrt.fit(x, np.log(durations))
        importances = gbrt.feature_importances_
        order = np.argsort(importances)[::-1]
        gbrt_params = [space.names[i] for i in order[:top_k]]

        gen = ensure_rng(seed + 2)
        out[DISPLAY_NAMES[benchmark]] = {"IICP": [], "GBRT": []}
        max_runs = max(run_counts)
        times: dict[str, list[float]] = {"IICP": [], "GBRT": []}
        # Probe configs vary only the identified parameters; the others
        # sit at the mid-range point (anchoring them at Spark defaults
        # would park every probe in the same pathological corner and the
        # measured SD would reflect that corner, not the identification).
        base = space.decode(np.full(space.dim, 0.5))
        for method, params in (("IICP", iicp_params), ("GBRT", gbrt_params)):
            for _ in range(max_runs):
                point = gen.random(len(params))
                config = space.decode_subset(point, params, base=base)
                times[method].append(
                    simulator.run(app, config, datasize_gb, rng=gen).duration_s
                )
        for n in run_counts:
            out[DISPLAY_NAMES[benchmark]]["IICP"].append(float(np.std(times["IICP"][:n])))
            out[DISPLAY_NAMES[benchmark]]["GBRT"].append(float(np.std(times["GBRT"][:n])))
    return Fig17Result(run_counts=run_counts, sd=out)


# ----------------------------------------------------------------------
# Figure 18 — CSQ vs CIQ execution-time split
# ----------------------------------------------------------------------
@dataclass
class Fig18Result:
    datasizes: tuple[float, ...]
    split: dict[str, dict[float, tuple[float, float]]]  # tuner -> ds -> (csq_s, ciq_s)

    def render(self) -> str:
        rows = []
        for tuner, per_ds in self.split.items():
            for ds, (csq_s, ciq_s) in per_ds.items():
                rows.append([tuner, f"{ds:.0f}GB", csq_s, ciq_s])
        return format_table(
            ["tuner", "datasize", "CSQ time (s)", "CIQ time (s)"],
            rows,
            title="Figure 18: execution time split between CSQ and CIQ after tuning",
        )

    def csq_reduction_dominates(self, tuner_a: str = "LOCAT", tuner_b: str = "QTune") -> bool:
        """The tuner gap should come mostly from CSQ time (section 5.8)."""
        gaps_csq, gaps_ciq = [], []
        for ds in self.datasizes:
            a_csq, a_ciq = self.split[tuner_a][ds]
            b_csq, b_ciq = self.split[tuner_b][ds]
            gaps_csq.append(b_csq - a_csq)
            gaps_ciq.append(b_ciq - a_ciq)
        return float(np.sum(gaps_csq)) >= float(np.sum(gaps_ciq))


def fig18_csq_ciq(
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0),
    seed: int = 11,
    locat_iterations: int = 25,
) -> Fig18Result:
    """CSQ/CIQ time split of TPC-DS tuned by each approach."""
    app = get_application("tpcds")
    simulator = make_simulator(cluster)

    locat = LOCAT(simulator, app, rng=seed, max_iterations=locat_iterations)
    tuned: dict[str, object] = {}
    locat_result = None
    for ds in datasizes:
        locat_result = locat.tune(ds)
    tuned["LOCAT"] = locat_result.best_config
    csq = set(locat.csq)
    for cls in BASELINE_CLASSES:
        tuned[cls.NAME] = cls(make_simulator(cluster), app, rng=seed).tune(datasizes[0]).best_config

    gen = ensure_rng(seed + 3)
    split: dict[str, dict[float, tuple[float, float]]] = {}
    for name, config in tuned.items():
        split[name] = {}
        for ds in datasizes:
            metrics = simulator.run(app, config, ds, rng=gen)
            csq_s = sum(q.duration_s for q in metrics.queries if q.name in csq)
            ciq_s = metrics.duration_s - csq_s
            split[name][ds] = (csq_s, ciq_s)
    return Fig18Result(datasizes=datasizes, split=split)


# ----------------------------------------------------------------------
# Figure 19 — GC time comparison
# ----------------------------------------------------------------------
@dataclass
class Fig19Result:
    datasizes: tuple[float, ...]
    gc_seconds: dict[str, dict[str, list[float]]]  # benchmark -> tuner -> per ds

    def render(self) -> str:
        blocks = []
        for benchmark, per_tuner in self.gc_seconds.items():
            blocks.append(
                format_series(
                    "datasize_gb",
                    self.datasizes,
                    per_tuner,
                    title=f"Figure 19 ({benchmark}): JVM GC seconds under each tuner's config",
                )
            )
        return "\n\n".join(blocks)

    def locat_lowest(self, benchmark: str) -> bool:
        per_tuner = self.gc_seconds[benchmark]
        locat_total = float(np.sum(per_tuner["LOCAT"]))
        return all(
            locat_total <= float(np.sum(v)) + 1e-9
            for k, v in per_tuner.items()
            if k != "LOCAT"
        )


def fig19_gc_time(
    benchmarks: tuple[str, ...] = ("tpcds", "join"),
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0, 500.0),
    seed: int = 11,
    locat_iterations: int = 25,
) -> Fig19Result:
    """GC time of each tuner's best config as datasize grows."""
    out: dict[str, dict[str, list[float]]] = {}
    for benchmark in benchmarks:
        app = get_application(benchmark)
        simulator = make_simulator(cluster)
        locat = LOCAT(simulator, app, rng=seed, max_iterations=locat_iterations)
        configs = {}
        result = None
        for ds in datasizes:
            result = locat.tune(ds)
        configs["LOCAT"] = result.best_config
        for cls in BASELINE_CLASSES:
            configs[cls.NAME] = (
                cls(make_simulator(cluster), app, rng=seed).tune(datasizes[0]).best_config
            )
        gen = ensure_rng(seed + 4)
        out[DISPLAY_NAMES[benchmark]] = {
            name: [simulator.run(app, cfg, ds, rng=gen).gc_s for ds in datasizes]
            for name, cfg in configs.items()
        }
    return Fig19Result(datasizes=datasizes, gc_seconds=out)


# ----------------------------------------------------------------------
# Figure 20 — tuning overhead when the input data size increases
# ----------------------------------------------------------------------
@dataclass
class Fig20Result:
    datasizes: tuple[float, ...]
    overhead_hours: dict[str, list[float]]

    def render(self) -> str:
        return format_series(
            "datasize_gb",
            self.datasizes,
            self.overhead_hours,
            title="Figure 20: tuning overhead (h) as datasize grows (LOCAT adapts, others re-tune)",
        )

    def locat_flattest(self) -> bool:
        """LOCAT's added overhead per new datasize is the smallest."""
        def growth(values: list[float]) -> float:
            return sum(values[1:])  # overhead paid after the first size

        locat_growth = growth(self.overhead_hours["LOCAT"])
        return all(
            locat_growth <= growth(v) + 1e-9
            for k, v in self.overhead_hours.items()
            if k != "LOCAT"
        )


def fig20_overhead_scaling(
    cluster: str = "x86",
    datasizes: tuple[float, ...] = (100.0, 200.0, 300.0),
    seed: int = 7,
    locat_iterations: int = 25,
) -> Fig20Result:
    """Overhead per datasize: LOCAT adapts online, baselines re-tune."""
    app = get_application("tpcds")
    overhead: dict[str, list[float]] = {"LOCAT": []}
    locat = LOCAT(make_simulator(cluster), app, rng=seed, max_iterations=locat_iterations)
    for ds in datasizes:
        overhead["LOCAT"].append(locat.tune(ds).overhead_hours)
    for cls in BASELINE_CLASSES:
        overhead[cls.NAME] = []
        for ds in datasizes:
            tuner = cls(make_simulator(cluster), app, rng=seed)
            overhead[cls.NAME].append(tuner.tune(ds).overhead_hours)
    return Fig20Result(datasizes=datasizes, overhead_hours=overhead)


# ----------------------------------------------------------------------
# Figure 21 — QCSA/IICP grafted onto the SOTA approaches
# ----------------------------------------------------------------------
@dataclass
class Fig21Result:
    variants: tuple[str, ...]
    duration: dict[str, dict[str, float]]  # tuner -> variant -> tuned duration
    overhead: dict[str, dict[str, float]]  # tuner -> variant -> hours

    def render(self) -> str:
        rows_d = [[t, *(self.duration[t][v] for v in self.variants)] for t in self.duration]
        rows_o = [[t, *(self.overhead[t][v] for v in self.variants)] for t in self.overhead]
        a = format_table(["tuner", *self.variants], rows_d,
                         title="Figure 21(a): tuned TPC-DS duration (s) by variant")
        b = format_table(["tuner", *self.variants], rows_o,
                         title="Figure 21(b): optimization overhead (h) by variant")
        return a + "\n\n" + b

    def qcsa_cuts_overhead(self, factor: float = 1.5) -> bool:
        """QCSA variants must cut overhead substantially (paper: 4.2x avg)."""
        ratios = [
            self.overhead[t]["APT"] / max(self.overhead[t]["QCSA"], 1e-9)
            for t in self.overhead
        ]
        return float(np.mean(ratios)) >= factor


def fig21_portability(
    cluster: str = "x86",
    datasize_gb: float = 500.0,
    seed: int = 11,
    baselines: tuple = (Tuneful, DAC),
) -> Fig21Result:
    """Apply QCSA and IICP sample reduction to the SOTA tuners.

    Variants: APT (all-parameter tuning, the vanilla baseline), IICP
    (tune only CPS-selected parameters), QCSA (evaluate only the RQA),
    and QIT (both).  The paper finds QCSA cuts overhead ~4.2x and the
    combination ~6.8x while also improving the tuned performance.

    The default hosts are Tuneful and DAC because their sample sets are
    search-independent (a fixed OAT design and a random corpus), so the
    QCSA discount shows up cleanly; search-coupled tuners like GBO-RL
    change their exploration path under the hook, which adds run-cost
    variance of the same order as the discount.
    """
    app = get_application("tpcds")
    simulator = make_simulator(cluster)

    # One shared QCSA + CPS analysis (as LOCAT would produce).
    samples = collect_cv_samples("tpcds", cluster, datasize_gb, n_samples=20, rng=seed)
    qcsa = analyze_samples(samples)
    configs, durations, sim2 = collect_iicp_samples(
        "tpcds", cluster, datasize_gb, n_samples=20, rng=seed
    )
    cps = run_cps(sim2.space, configs, durations)

    variants = ("APT", "IICP", "QCSA", "QIT")
    duration: dict[str, dict[str, float]] = {}
    overhead: dict[str, dict[str, float]] = {}
    gen = ensure_rng(seed + 5)
    for cls in baselines:
        duration[cls.NAME] = {}
        overhead[cls.NAME] = {}
        for variant in variants:
            kwargs = {}
            if variant in ("IICP", "QIT"):
                kwargs["subspace"] = list(cps.selected)
            if variant in ("QCSA", "QIT"):
                kwargs["rqa_queries"] = list(qcsa.csq)
            tuner = cls(make_simulator(cluster), app, rng=seed, **kwargs)
            result = tuner.tune(datasize_gb)
            measured = float(
                np.mean(
                    [
                        simulator.run(app, result.best_config, datasize_gb, rng=gen).duration_s
                        for _ in range(2)
                    ]
                )
            )
            duration[cls.NAME][variant] = measured
            overhead[cls.NAME][variant] = result.overhead_hours
    return Fig21Result(variants=variants, duration=duration, overhead=overhead)


# ----------------------------------------------------------------------
# Section 5.11 — why queries are configuration in/sensitive
# ----------------------------------------------------------------------
@dataclass
class Sec511Result:
    shuffle_gb: dict[str, float]
    cvs: dict[str, float]
    correlation: float

    def render(self) -> str:
        ranked = sorted(self.cvs, key=lambda q: -self.cvs[q])
        rows = [[q, self.shuffle_gb[q], self.cvs[q]] for q in ranked[:15]]
        table = format_table(
            ["query", "shuffle GB", "CV"],
            rows,
            title="Section 5.11: sensitivity tracks shuffle volume (top 15 by CV)",
        )
        return table + f"\nSpearman(shuffle volume, CV) = {self.correlation:.2f}"


def sec511_sensitivity_reasons(
    cluster: str = "arm",
    datasize_gb: float = 300.0,
    n_samples: int = 30,
    seed: int = 42,
) -> Sec511Result:
    """Correlate each query's shuffle volume with its CV."""
    from repro.stats.correlation import spearman

    app = get_application("tpcds")
    samples = collect_cv_samples("tpcds", cluster, datasize_gb, n_samples=n_samples, rng=seed)
    cvs = {name: coefficient_of_variation(times) for name, times in samples.items()}
    shuffle_gb = {q.name: q.total_shuffle_fraction * datasize_gb for q in app.queries}
    names = list(cvs)
    correlation = spearman([shuffle_gb[n] for n in names], [cvs[n] for n in names])
    return Sec511Result(shuffle_gb=shuffle_gb, cvs=cvs, correlation=correlation)
