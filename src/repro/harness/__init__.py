"""Experiment harness: one driver per paper figure/table, plus reporting.

Each ``figures.fig*`` function runs a complete (optionally scaled-down)
version of the corresponding experiment and returns a result object the
benchmarks print and assert on.  ``report`` renders ASCII tables with
paper-vs-measured columns; ``experiment`` holds shared runners.
"""

from repro.harness.experiment import (
    TunerComparison,
    collect_cv_samples,
    collect_iicp_samples,
    compare_tuners,
    make_simulator,
)
from repro.harness.report import format_series, format_table

__all__ = [
    "TunerComparison",
    "collect_cv_samples",
    "collect_iicp_samples",
    "compare_tuners",
    "format_series",
    "format_table",
    "make_simulator",
]
