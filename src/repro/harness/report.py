"""ASCII rendering of experiment results.

The harness prints every reproduced table/figure as plain text so a
bench run's output can be compared side by side with the paper.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render one row per x value with one column per named series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title)


def format_comparison(
    metric: str,
    paper: Mapping[str, float],
    measured: Mapping[str, float],
    title: str = "",
) -> str:
    """Paper-vs-measured table for a named metric."""
    headers = ["key", f"paper {metric}", f"measured {metric}"]
    rows = [[k, paper.get(k, float("nan")), measured.get(k, float("nan"))] for k in measured]
    return format_table(headers, rows, title=title)
