"""QTune (Li et al. 2018): query-aware deep reinforcement learning.

QTune featurizes the workload's queries and trains a DDPG-style
actor-critic whose continuous action is the configuration vector.  The
LOCAT paper's complaint — and the behaviour reproduced here — is sample
hunger: hundreds of real executions are needed before the actor's policy
beats a good heuristic, which makes QTune the slowest comparison point
(9-10x LOCAT's optimization time).

The networks are small two-layer MLPs implemented directly on numpy;
the query featurization is the application's operator mix and shuffle
profile, matching QTune's "query2vector" in spirit.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner
from repro.sparksim.configspace import Configuration
from repro.sparksim.query import Application


def featurize_application(app: Application, datasize_gb: float) -> np.ndarray:
    """QTune-style workload vector: operator mix + volumes + datasize."""
    n = len(app.queries)
    selection = sum(1 for q in app.queries if q.category == "selection") / n
    join = sum(1 for q in app.queries if q.category == "join") / n
    aggregation = sum(1 for q in app.queries if q.category == "aggregation") / n
    shuffle = sum(q.total_shuffle_fraction for q in app.queries) / n
    scan = sum(q.total_input_fraction for q in app.queries) / n
    return np.array([selection, join, aggregation, shuffle, scan, datasize_gb / 1024.0])


class _MLP:
    """Two-layer tanh MLP trained with plain SGD."""

    def __init__(self, n_in: int, n_hidden: int, n_out: int, rng: np.random.Generator,
                 out_sigmoid: bool = False):
        scale = 1.0 / np.sqrt(n_in)
        self.w1 = rng.normal(0, scale, size=(n_in, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.w2 = rng.normal(0, 1.0 / np.sqrt(n_hidden), size=(n_hidden, n_out))
        self.b2 = np.zeros(n_out)
        self.out_sigmoid = out_sigmoid

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.atleast_2d(x)
        self._h = np.tanh(self._x @ self.w1 + self.b1)
        z = self._h @ self.w2 + self.b2
        if self.out_sigmoid:
            self._z = 0.5 * (1.0 + np.tanh(0.5 * z))
            return self._z
        self._z = z
        return z

    def backward(self, grad_out: np.ndarray, lr: float) -> None:
        grad_out = np.atleast_2d(grad_out)
        if self.out_sigmoid:
            grad_out = grad_out * self._z * (1.0 - self._z)
        grad_w2 = self._h.T @ grad_out
        grad_b2 = grad_out.sum(axis=0)
        grad_h = grad_out @ self.w2.T * (1.0 - self._h**2)
        grad_w1 = self._x.T @ grad_h
        grad_b1 = grad_h.sum(axis=0)
        n = self._x.shape[0]
        self.w2 -= lr * grad_w2 / n
        self.b2 -= lr * grad_b2 / n
        self.w1 -= lr * grad_w1 / n
        self.b1 -= lr * grad_b1 / n


class QTune(BaselineTuner):
    """DDPG-style actor-critic over the configuration space."""

    NAME = "QTune"

    def __init__(
        self,
        *args,
        n_episodes: int = 170,
        batch_size: int = 16,
        exploration: float = 0.35,
        exploration_decay: float = 0.995,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.n_episodes = n_episodes
        self.batch_size = batch_size
        self.exploration = exploration
        self.exploration_decay = exploration_decay

    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        dim = self.search_dim
        state = featurize_application(self.app, datasize_gb)
        actor = _MLP(state.shape[0], 32, dim, self.rng, out_sigmoid=True)
        critic = _MLP(state.shape[0] + dim, 32, 1, self.rng)

        replay: list[tuple[np.ndarray, float]] = []
        best_point: np.ndarray | None = None
        best_duration = float("inf")
        sigma = self.exploration

        for episode in range(self.n_episodes):
            action = actor.forward(state)[0]
            noisy = np.clip(action + self.rng.normal(0.0, sigma, size=dim), 0.0, 1.0)
            duration = self.evaluate_point(noisy, datasize_gb)
            # Reward: negative log time (scale-free across datasizes).
            reward = -float(np.log(max(duration, 1e-9)))
            replay.append((noisy, reward))
            if duration < best_duration:
                best_point, best_duration = noisy.copy(), duration
            sigma *= self.exploration_decay

            if len(replay) >= self.batch_size:
                idx = self.rng.integers(0, len(replay), size=self.batch_size)
                actions = np.stack([replay[i][0] for i in idx])
                rewards = np.array([replay[i][1] for i in idx])
                states = np.repeat(state[None, :], self.batch_size, axis=0)
                # Critic regression toward observed rewards.
                q = critic.forward(np.hstack([states, actions]))[:, 0]
                critic.backward((q - rewards)[:, None], lr=0.01)
                # Actor ascent along the critic's action gradient.
                a = actor.forward(states)
                q = critic.forward(np.hstack([states, a]))
                grad_out = np.ones_like(q)
                grad_in = self._critic_action_grad(critic, np.hstack([states, a]), grad_out)
                actor.backward(-grad_in[:, state.shape[0]:], lr=0.005)

        assert best_point is not None
        return self.decode_point(best_point), {"n_episodes": self.n_episodes}

    @staticmethod
    def _critic_action_grad(critic: _MLP, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """d critic / d input (for deterministic policy gradient)."""
        h = np.tanh(x @ critic.w1 + critic.b1)
        grad_h = grad_out @ critic.w2.T * (1.0 - h**2)
        return grad_h @ critic.w1.T
