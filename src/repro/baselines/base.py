"""Shared scaffolding for baseline tuners.

Every baseline gets an objective with overhead accounting and two
optional grafting hooks used by the paper's portability study
(section 5.10, Figure 21):

* ``rqa_queries`` — evaluate only these queries during search (QCSA
  grafted onto the baseline); the final configuration is still validated
  on the full application.
* ``subspace`` — tune only these parameters, leaving the rest at their
  defaults (IICP's CPS selection grafted onto the baseline).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.objective import SparkSQLObjective
from repro.core.result import TuningResult
from repro.sparksim.configspace import Configuration
from repro.sparksim.engine import SparkSQLSimulator
from repro.sparksim.query import Application
from repro.stats.sampling import ensure_rng


class BaselineTuner(abc.ABC):
    """Base class: evaluation plumbing shared by all baseline tuners."""

    NAME = "baseline"

    def __init__(
        self,
        simulator: SparkSQLSimulator,
        app: Application,
        rng: int | np.random.Generator | None = None,
        rqa_queries: list[str] | None = None,
        subspace: list[str] | None = None,
    ):
        self.simulator = simulator
        self.app = app
        self.rng = ensure_rng(rng)
        self.rqa_queries = list(rqa_queries) if rqa_queries else None
        self.subspace = list(subspace) if subspace else None
        self.objective = SparkSQLObjective(simulator, app, rng=self.rng)

    # ------------------------------------------------------------------
    # Evaluation plumbing
    # ------------------------------------------------------------------
    @property
    def space(self):
        return self.simulator.space

    @property
    def search_dim(self) -> int:
        """Dimensionality of the (possibly restricted) search space."""
        return len(self.subspace) if self.subspace else self.space.dim

    def decode_point(self, point: np.ndarray) -> Configuration:
        """Unit-cube point -> configuration, honouring the subspace hook."""
        if self.subspace:
            return self.space.decode_subset(np.asarray(point, dtype=float), self.subspace)
        return self.space.decode(np.asarray(point, dtype=float))

    def evaluate(self, config: Configuration, datasize_gb: float) -> float:
        """One costed evaluation (full app, or the RQA when grafted)."""
        if self.rqa_queries:
            return self.objective.run_subset(config, datasize_gb, self.rqa_queries).duration_s
        return self.objective.run(config, datasize_gb).duration_s

    def evaluate_point(self, point: np.ndarray, datasize_gb: float) -> float:
        return self.evaluate(self.decode_point(point), datasize_gb)

    def sample_point(self) -> np.ndarray:
        return self.rng.random(self.search_dim)

    # ------------------------------------------------------------------
    # Template method
    # ------------------------------------------------------------------
    def tune(self, datasize_gb: float) -> TuningResult:
        """Run the tuner's search, then validate the best configuration."""
        overhead_before = self.objective.overhead_s
        evals_before = self.objective.n_evaluations

        best_config, details = self._optimize(datasize_gb)
        validation = self.objective.run(best_config, datasize_gb)
        best_duration = validation.duration_s
        if not self.rqa_queries:
            # Full-app search: an earlier trial may beat the validation rerun.
            incumbent = self.objective.best_trial(datasize_gb)
            if incumbent.duration_s < best_duration:
                best_config = incumbent.config
                best_duration = incumbent.duration_s

        return TuningResult(
            tuner=self.NAME,
            application=self.app.name,
            datasize_gb=float(datasize_gb),
            best_config=best_config,
            best_duration_s=best_duration,
            overhead_s=self.objective.overhead_s - overhead_before,
            evaluations=self.objective.n_evaluations - evals_before,
            details=details,
        )

    @abc.abstractmethod
    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        """Search for the best configuration; return it plus details."""
