"""Tuneful (Fekry et al. 2020): significance-aware incremental tuning.

Tuneful runs in two phases:

1. **Significance analysis** via one-at-a-time (OAT) perturbation: each
   parameter is swept over a few values while the others stay at their
   defaults, and the parameters whose sweep moves execution time the
   most are declared significant.  The paper (section 6.1) criticizes
   exactly this: the number of OAT runs grows linearly with the number
   of parameters, so the phase dominates the budget in high dimensions.
2. **GP-BO** over the significant subspace.

Tuneful is not datasize-aware: every (application, datasize) pair pays
the full two-phase cost.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner
from repro.core.tuner import BOLoop
from repro.sparksim.configspace import Configuration, PARAMETERS, PARAMETER_INDEX


class Tuneful(BaselineTuner):
    """OAT significance analysis + GP-BO over the significant parameters."""

    NAME = "Tuneful"

    def __init__(
        self,
        *args,
        oat_levels: int = 4,
        n_significant: int = 10,
        bo_iterations: int = 60,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if oat_levels < 2:
            raise ValueError("oat_levels must be at least 2")
        self.oat_levels = oat_levels
        self.n_significant = n_significant
        self.bo_iterations = bo_iterations

    # ------------------------------------------------------------------
    def _significance_analysis(self, datasize_gb: float) -> list[str]:
        """OAT sweep: one run per (parameter, level); rank by time range.

        The sweep is anchored at the lower-quartile point of every range
        — the modest starting configuration a user would deploy — rather
        than at Spark defaults (which describe a tiny cluster and would
        place every sweep run in the same pathological corner).
        """
        names = self.subspace if self.subspace else self.space.names
        base = self.space.decode(np.full(self.space.dim, 0.4))
        spans: dict[str, float] = {}
        for name in names:
            lo, hi = self.space.bounds(name)
            levels = np.linspace(lo, hi, self.oat_levels)
            durations = []
            param = PARAMETERS[PARAMETER_INDEX[name]]
            for level in levels:
                value = bool(level >= 0.5 * (lo + hi)) if param.kind == "bool" else level
                config = self.space.repair(base.replace(**{name: value}))
                durations.append(self.evaluate(config, datasize_gb))
            spans[name] = float(np.ptp(durations))
        ranked = sorted(spans, key=lambda n: -spans[n])
        return ranked[: self.n_significant]

    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        significant = self._significance_analysis(datasize_gb)

        def evaluate(point: np.ndarray, ds: float) -> float:
            config = self.space.decode_subset(point, significant)
            return self.evaluate(config, ds)

        loop = BOLoop(
            dim=len(significant),
            n_init=3,
            min_iterations=self.bo_iterations,
            max_iterations=self.bo_iterations,
            ei_threshold=0.0,
            n_mcmc=0,  # Tuneful uses point-estimate GP hyper-parameters
            # Long fixed-budget loop with no MCMC: the incremental engine
            # (exact rank-1 extends instead of per-iteration refits) is a
            # pure wall-clock win here.
            surrogate_mode="incremental",
            rng=self.rng,
        )
        trace = loop.minimize(evaluate, datasize_gb)
        best_point, _ = trace.best(datasize_gb)
        best_config = self.space.decode_subset(best_point, significant)
        return best_config, {"significant": significant}
