"""GBO-RL (Kunjir & Babu 2020): guided BO with an RL refinement phase.

GBO-RL accelerates Bayesian optimization with an analytical model of
Spark's memory management ("white-box") and refines with reinforcement
learning ("black-box").  Following the original: the analytical model
seeds the search with memory-sensible configurations, BO explores the
full parameter space, and an RL phase perturbs the incumbent with a
learned step preference.  LOCAT's paper notes the analytical model only
covers memory and the approach tunes the full space — both properties
are preserved here, which is why GBO-RL lands between LOCAT and the
sample-hungry baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner
from repro.core.tuner import BOLoop
from repro.sparksim.configspace import Configuration, PARAMETER_INDEX


class GBORL(BaselineTuner):
    """Analytical-memory seeding + full-space GP-BO + RL hill refinement."""

    NAME = "GBO-RL"

    def __init__(
        self,
        *args,
        bo_iterations: int = 100,
        rl_episodes: int = 40,
        rl_epsilon: float = 0.5,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.bo_iterations = bo_iterations
        self.rl_episodes = rl_episodes
        self.rl_epsilon = rl_epsilon

    # ------------------------------------------------------------------
    def _memory_model_seeds(self) -> list[np.ndarray]:
        """Analytical memory model: heap-healthy starting configurations.

        The model balances executor heap against expected per-task data:
        large memory / moderate cores / high shuffle parallelism, with and
        without off-heap.  Only memory-related parameters are informed;
        everything else stays at the encoded midpoint (the model is blind
        to them — the weakness LOCAT's paper points out).
        """
        names = self.subspace if self.subspace else self.space.names
        seeds = []
        for offheap in (0.0, 1.0):
            point = np.full(len(names), 0.5)
            prescription = {
                "executor.memory": 0.7,
                "executor.cores": 0.5,
                "executor.memoryOverhead": 0.25,
                "memory.fraction": 0.6,
                "memory.storageFraction": 0.1,
                "memory.offHeap.enabled": offheap,
                "memory.offHeap.size": 0.5 * offheap,
            }
            for name, value in prescription.items():
                if name in names:
                    point[names.index(name)] = value
            seeds.append(point)
        return seeds

    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        names = self.subspace if self.subspace else self.space.names

        evaluations: list[tuple[np.ndarray, float]] = []

        def evaluate(point: np.ndarray, ds: float) -> float:
            duration = self.evaluate_point(point, ds)
            evaluations.append((np.asarray(point, dtype=float), duration))
            return duration

        # Phase 1: analytical seeds (the "guided" part).
        for seed in self._memory_model_seeds():
            evaluate(seed, datasize_gb)

        # Phase 2: BO over the full space with the seeds as warm data.
        # GBO-RL's published surrogate is far cruder than a marginalized
        # GP; we model that by interleaving uniform exploration samples
        # with the BO proposals (every other evaluation), which matches
        # its reported sample behaviour in high-dimensional spaces.
        bo_budget = self.bo_iterations // 2
        warm_points = np.stack([p for p, _ in evaluations])
        warm_durations = np.array([d for _, d in evaluations])
        loop = BOLoop(
            dim=len(names),
            n_init=3,
            min_iterations=bo_budget,
            max_iterations=bo_budget,
            ei_threshold=0.0,
            n_mcmc=0,
            # Full-space point-estimate BO over a big fixed budget: reuse
            # one surrogate engine (rank-1 extends) across the loop.
            surrogate_mode="incremental",
            rng=self.rng,
        )
        loop.minimize(
            evaluate,
            datasize_gb,
            warm_points=warm_points,
            warm_datasizes=np.full(len(warm_durations), datasize_gb),
            warm_durations=warm_durations,
        )
        for _ in range(self.bo_iterations - bo_budget):
            evaluate(self.rng.random(len(names)), datasize_gb)

        # Phase 3: RL refinement — epsilon-greedy coordinate perturbation
        # with a preference value learned per coordinate/direction.  RL
        # exploration takes large steps; this is what makes the phase
        # expensive on a real cluster.
        best_point, best_duration = min(evaluations, key=lambda e: e[1])
        best_point = best_point.copy()
        q_values = np.zeros((len(names), 2))
        for _ in range(self.rl_episodes):
            if self.rng.random() < self.rl_epsilon:
                coord = int(self.rng.integers(0, len(names)))
                direction = int(self.rng.integers(0, 2))
                step = 0.35 * (1.0 if direction else -1.0)
            else:
                coord, direction = np.unravel_index(int(np.argmax(q_values)), q_values.shape)
                step = 0.12 * (1.0 if direction else -1.0)
            trial = best_point.copy()
            trial[coord] = float(np.clip(trial[coord] + step, 0.0, 1.0))
            duration = evaluate(trial, datasize_gb)
            reward = (best_duration - duration) / max(best_duration, 1e-9)
            q_values[coord, direction] = 0.7 * q_values[coord, direction] + 0.3 * reward
            if duration < best_duration:
                best_point, best_duration = trial, duration

        return self.decode_point(best_point), {
            "bo_iterations": self.bo_iterations,
            "rl_episodes": self.rl_episodes,
        }
