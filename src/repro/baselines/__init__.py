"""Reimplementations of the four SOTA tuners LOCAT is compared against.

* :mod:`repro.baselines.tuneful` — Tuneful [22]: one-at-a-time (OAT)
  significance analysis followed by GP-BO over the significant subspace.
* :mod:`repro.baselines.dac` — DAC [66]: a datasize-aware hierarchical
  regression-tree model trained on many random runs, searched with a
  genetic algorithm.
* :mod:`repro.baselines.gborl` — GBO-RL [36]: Bayesian optimization
  guided (bootstrapped) by an analytical memory model, followed by a
  reinforcement-learning refinement phase.
* :mod:`repro.baselines.qtune` — QTune [37]: query-aware deep
  reinforcement learning (DDPG-style actor-critic).

The reimplementations are faithful in *search behaviour and sample
complexity* — what the paper's optimization-time and speedup comparisons
measure — not line-by-line ports (no author code is public for most).
All share the :class:`~repro.baselines.base.BaselineTuner` interface and
support the QCSA/IICP grafting hooks used by Figure 21.
"""

from repro.baselines.base import BaselineTuner
from repro.baselines.dac import DAC
from repro.baselines.gborl import GBORL
from repro.baselines.qtune import QTune
from repro.baselines.random_search import RandomSearch
from repro.baselines.tuneful import Tuneful

ALL_BASELINES = (Tuneful, DAC, GBORL, QTune)

__all__ = [
    "ALL_BASELINES",
    "BaselineTuner",
    "DAC",
    "GBORL",
    "QTune",
    "RandomSearch",
    "Tuneful",
]
