"""DAC (Yu et al. 2018): datasize-aware model-based tuning.

DAC builds a hierarchical performance model from a large corpus of
random runs (the paper calls out its high sample-collection cost) and
searches the model with a genetic algorithm; only the GA's elite
candidates are validated on the real cluster.  We model the hierarchy
with gradient-boosted regression trees over (encoded config, datasize),
which matches DAC's regression-tree ensembles in both expressiveness and
training-data appetite.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner
from repro.ml.gbrt import GradientBoostedRegressionTrees
from repro.sparksim.configspace import Configuration


class DAC(BaselineTuner):
    """Random training corpus -> GBRT model -> genetic-algorithm search."""

    NAME = "DAC"

    def __init__(
        self,
        *args,
        n_training: int = 80,
        n_validation: int = 8,
        ga_generations: int = 30,
        ga_population: int = 60,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if n_training < 10:
            raise ValueError("n_training must be at least 10")
        self.n_training = n_training
        self.n_validation = n_validation
        self.ga_generations = ga_generations
        self.ga_population = ga_population

    # ------------------------------------------------------------------
    def _collect_corpus(self, datasize_gb: float) -> tuple[np.ndarray, np.ndarray]:
        points = np.empty((self.n_training, self.search_dim))
        durations = np.empty(self.n_training)
        for i in range(self.n_training):
            point = self.sample_point()
            points[i] = point
            durations[i] = self.evaluate(self.decode_point(point), datasize_gb)
        return points, durations

    def _genetic_search(self, model: GradientBoostedRegressionTrees) -> np.ndarray:
        """Minimize the model's predicted log time with a simple GA."""
        dim = self.search_dim
        population = self.rng.random((self.ga_population, dim))
        for _ in range(self.ga_generations):
            fitness = model.predict(population)
            order = np.argsort(fitness)  # ascending predicted time
            elite = population[order[: self.ga_population // 4]]
            children = []
            while len(children) < self.ga_population - len(elite):
                parents = elite[self.rng.integers(0, len(elite), size=2)]
                mask = self.rng.random(dim) < 0.5
                child = np.where(mask, parents[0], parents[1])
                mutate = self.rng.random(dim) < 0.1
                child = np.where(mutate, np.clip(child + self.rng.normal(0, 0.15, dim), 0, 1), child)
                children.append(child)
            population = np.vstack([elite, children])
        fitness = model.predict(population)
        order = np.argsort(fitness)
        return population[order[: self.n_validation]]

    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        points, durations = self._collect_corpus(datasize_gb)
        model = GradientBoostedRegressionTrees(
            n_estimators=150, learning_rate=0.08, max_depth=4, subsample=0.8, rng=self.rng
        )
        model.fit(points, np.log(np.maximum(durations, 1e-6)))

        candidates = self._genetic_search(model)
        best_config: Configuration | None = None
        best_duration = float("inf")
        for point in candidates:
            config = self.decode_point(point)
            duration = self.evaluate(config, datasize_gb)
            if duration < best_duration:
                best_config, best_duration = config, duration
        assert best_config is not None
        return best_config, {"n_training": self.n_training}
