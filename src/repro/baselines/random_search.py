"""Pure random search — the sanity baseline.

Not one of the paper's comparison points, but indispensable for testing:
any tuner worth its overhead must beat random search at equal budget.
"""

from __future__ import annotations

from repro.baselines.base import BaselineTuner
from repro.sparksim.configspace import Configuration


class RandomSearch(BaselineTuner):
    """Evaluate ``n_samples`` uniform configurations, keep the best."""

    NAME = "RandomSearch"

    def __init__(self, *args, n_samples: int = 50, **kwargs):
        super().__init__(*args, **kwargs)
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        self.n_samples = n_samples

    def _optimize(self, datasize_gb: float) -> tuple[Configuration, dict]:
        best_config: Configuration | None = None
        best_duration = float("inf")
        for _ in range(self.n_samples):
            config = self.decode_point(self.sample_point())
            duration = self.evaluate(config, datasize_gb)
            if duration < best_duration:
                best_config, best_duration = config, duration
        assert best_config is not None
        return best_config, {"n_samples": self.n_samples}
