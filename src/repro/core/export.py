"""Export tuned configurations in the formats Spark deployments consume.

A tuner's output is only useful once it reaches ``spark-submit`` or
``spark-defaults.conf``; this module renders a
:class:`~repro.sparksim.configspace.Configuration` both ways, restoring
the ``spark.`` prefix and the units Table 2 specifies (sizes carry their
``m``/``g``/``k`` suffixes, booleans become ``true``/``false``).
"""

from __future__ import annotations

from repro.sparksim.configspace import PARAMETERS, Configuration

#: Unit suffix appended to each parameter's value in Spark notation.
_UNIT_SUFFIX = {
    "MB": "m",
    "KB": "k",
    "GB": "g",
}

#: Parameters whose numeric value is dimensionless even though the
#: sibling parameters in their group carry units.
_SECONDS = {"locality.wait", "scheduler.revive.interval"}


def _spark_value(name: str, value) -> str:
    """Render one parameter value in spark-defaults notation."""
    param = next(p for p in PARAMETERS if p.name == name)
    if param.kind == "bool":
        return "true" if value else "false"
    if name in _SECONDS:
        return f"{int(value)}s"
    suffix = _UNIT_SUFFIX.get(param.unit, "")
    if param.kind == "float":
        return f"{float(value):g}"
    return f"{int(value)}{suffix}"


def to_spark_properties(config: Configuration) -> dict[str, str]:
    """Configuration -> {'spark.executor.memory': '16g', ...}."""
    return {f"spark.{name}": _spark_value(name, value) for name, value in config.items()}


def to_spark_defaults_conf(config: Configuration, header: str = "") -> str:
    """Render a spark-defaults.conf file body.

    ``header`` is an optional comment block (e.g. the tuning provenance).
    """
    lines = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    properties = to_spark_properties(config)
    width = max(len(k) for k in properties)
    for key in sorted(properties):
        lines.append(f"{key.ljust(width)}  {properties[key]}")
    return "\n".join(lines) + "\n"


def to_spark_submit_args(config: Configuration) -> list[str]:
    """Render ``--conf key=value`` arguments for spark-submit."""
    properties = to_spark_properties(config)
    args: list[str] = []
    for key in sorted(properties):
        args.extend(["--conf", f"{key}={properties[key]}"])
    return args


def diff_configs(base: Configuration, tuned: Configuration) -> dict[str, tuple[str, str]]:
    """Parameters whose values changed, as rendered Spark values.

    Returns ``{spark.<name>: (base_value, tuned_value)}`` — handy for
    reviewing what a tuning session actually decided.
    """
    out: dict[str, tuple[str, str]] = {}
    for name in base:
        if base[name] != tuned[name]:
            out[f"spark.{name}"] = (_spark_value(name, base[name]), _spark_value(name, tuned[name]))
    return out
