"""Shadow evaluation and A/B-gated candidate promotion.

A drift or datasize retune produces a *candidate* configuration from a
handful of noisy tuning evaluations — one lucky simulator draw can make
a worse config look like a winner.  Under ``promotion="shadow_ab"`` the
candidate is not deployed; it enters a **shadow** phase instead: on each
subsequent production run the controller measures both the deployed
incumbent and the challenger at the run's datasize under common random
numbers (identically seeded generators, so the pair shares its
environment draw), and a paired bootstrap test
(:mod:`repro.stats.abtest`) over the accumulated pairs decides:

* **promote** — the interval excludes zero in the challenger's favour;
* **reject** — the interval excludes zero in the incumbent's favour, or
  the shadow budget is exhausted without a significant win (the gate is
  deliberately conservative: "not provably better" means "not
  deployed");
* **extend** — keep shadowing.

An early stop fires before the minimum run count only on *clear
dominance*: every pair agrees in sign **and** the bootstrap interval
already excludes zero.

Every terminal decision yields a ``winners.json``-style provenance
record (searchforge orchestrator, SNIPPETS.md section 3): run id, both
configurations, the per-pair measurements, and the metric deltas with
confidence intervals.  :class:`ShadowState` round-trips through JSON so
an in-flight shadow survives process restarts via ``deployed.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparksim.configspace import Configuration
from repro.sparksim.serialize import config_from_dict, config_to_dict
from repro.stats.abtest import DEFAULT_N_BOOT, ABTestResult, paired_bootstrap

#: Valid values for ``OnlineController(promotion=...)`` and the
#: ``controller.promotion`` tenant key.
PROMOTION_MODES = ("immediate", "shadow_ab")

DECISION_PROMOTE = "promote"
DECISION_REJECT = "reject"
DECISION_EXTEND = "extend"

#: Seed-tuple salt for shadow measurement generators, keeping the CRN
#: streams disjoint from every other seeded subsystem.
SHADOW_SEED_SALT = 0x5AB0


@dataclass
class ShadowPair:
    """One common-random-number measurement of both arms."""

    datasize_gb: float
    incumbent_s: float
    challenger_s: float

    def to_json(self) -> dict:
        return {
            "datasize_gb": self.datasize_gb,
            "incumbent_s": self.incumbent_s,
            "challenger_s": self.challenger_s,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShadowPair":
        return cls(
            datasize_gb=float(payload["datasize_gb"]),
            incumbent_s=float(payload["incumbent_s"]),
            challenger_s=float(payload["challenger_s"]),
        )


@dataclass
class ShadowState:
    """An in-flight shadow evaluation (survives restarts via JSON)."""

    run_id: str
    #: What caused the retune that produced the challenger.
    trigger: str
    #: The retune's human-readable reason string.
    reason: str
    incumbent: Configuration
    challenger: Configuration
    #: Datasize of the retune itself — recorded as "tuned" on promote.
    origin_datasize_gb: float
    #: The candidate session's validation-run duration (diagnostics).
    challenger_duration_s: float
    #: Base of the CRN seed tuples; pair ``k`` of both arms is measured
    #: with ``default_rng((SHADOW_SEED_SALT, seed, k))``.
    seed: int
    pairs: list[ShadowPair] = field(default_factory=list)

    @property
    def deltas(self) -> np.ndarray:
        """Per-pair log-duration deltas, incumbent minus challenger."""
        inc = np.array([max(p.incumbent_s, 1e-9) for p in self.pairs])
        cha = np.array([max(p.challenger_s, 1e-9) for p in self.pairs])
        return np.log(inc) - np.log(cha)

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "trigger": self.trigger,
            "reason": self.reason,
            "incumbent": config_to_dict(self.incumbent),
            "challenger": config_to_dict(self.challenger),
            "origin_datasize_gb": self.origin_datasize_gb,
            "challenger_duration_s": self.challenger_duration_s,
            "seed": self.seed,
            "pairs": [p.to_json() for p in self.pairs],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShadowState":
        return cls(
            run_id=str(payload["run_id"]),
            trigger=str(payload["trigger"]),
            reason=str(payload["reason"]),
            incumbent=config_from_dict(payload["incumbent"]),
            challenger=config_from_dict(payload["challenger"]),
            origin_datasize_gb=float(payload["origin_datasize_gb"]),
            challenger_duration_s=float(payload["challenger_duration_s"]),
            seed=int(payload["seed"]),
            pairs=[ShadowPair.from_json(p) for p in payload.get("pairs", [])],
        )


class PromotionGate:
    """Decides promote / reject / extend over a shadow's paired runs.

    ``min_runs`` — pairs required before a regular significance verdict
    (early stop on clear dominance may fire sooner, but never before
    the bootstrap itself is meaningful).
    ``alpha`` — two-sided significance level of the bootstrap interval.
    ``max_runs`` — shadow budget; at this many pairs the gate forces a
    terminal decision, rejecting unless the challenger is significantly
    better (default ``3 * min_runs``).
    """

    def __init__(
        self,
        min_runs: int = 6,
        alpha: float = 0.05,
        max_runs: int | None = None,
        n_boot: int = DEFAULT_N_BOOT,
    ):
        if min_runs < 1:
            raise ValueError("min_runs must be at least 1")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        self.min_runs = int(min_runs)
        self.alpha = float(alpha)
        self.max_runs = int(max_runs) if max_runs is not None else 3 * self.min_runs
        if self.max_runs < self.min_runs:
            raise ValueError("max_runs must be at least min_runs")
        self.n_boot = int(n_boot)

    def test(self, shadow: ShadowState) -> ABTestResult:
        """The paired bootstrap over the shadow's current pairs.

        Seeded from the shadow's own seed and pair count, so the same
        shadow state always yields the same interval — across processes
        and restarts.
        """
        return paired_bootstrap(
            shadow.deltas,
            alpha=self.alpha,
            n_boot=self.n_boot,
            seed=(SHADOW_SEED_SALT, shadow.seed, len(shadow.pairs)),
        )

    def evaluate(self, shadow: ShadowState) -> tuple[str, ABTestResult | None, str]:
        """``(decision, test, reason)`` for the shadow as it stands."""
        n = len(shadow.pairs)
        if n == 0:
            return DECISION_EXTEND, None, "no shadow pairs measured yet"
        test = self.test(shadow)
        if n < self.min_runs:
            # Early stop only on clear dominance: unanimous per-pair
            # sign AND a significant interval.  Either alone is too
            # weak — three coin flips agree 25% of the time.
            if test.significant:
                deltas = shadow.deltas
                if test.winner == "challenger" and bool(np.all(deltas > 0.0)):
                    return (
                        DECISION_PROMOTE,
                        test,
                        f"early stop: challenger dominated all {n} shadow runs "
                        f"(CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] log-delta)",
                    )
                if test.winner == "baseline" and bool(np.all(deltas < 0.0)):
                    return (
                        DECISION_REJECT,
                        test,
                        f"early stop: incumbent dominated all {n} shadow runs "
                        f"(CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] log-delta)",
                    )
            return DECISION_EXTEND, test, f"{n}/{self.min_runs} shadow runs measured"
        if test.significant and test.winner == "challenger":
            return (
                DECISION_PROMOTE,
                test,
                f"challenger significantly faster over {n} shadow runs "
                f"(mean speedup {test.mean_speedup:.3f}x, "
                f"CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] log-delta)",
            )
        if test.significant and test.winner == "baseline":
            return (
                DECISION_REJECT,
                test,
                f"incumbent significantly faster over {n} shadow runs "
                f"(CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] log-delta)",
            )
        if n >= self.max_runs:
            return (
                DECISION_REJECT,
                test,
                f"no significant improvement within the {self.max_runs}-run "
                f"shadow budget (CI [{test.ci_low:+.4f}, {test.ci_high:+.4f}] "
                "log-delta straddles zero)",
            )
        return (
            DECISION_EXTEND,
            test,
            f"difference not yet significant after {n} shadow runs",
        )


def winner_record(
    shadow: ShadowState,
    decision: str,
    test: ABTestResult | None,
    reason: str,
) -> dict:
    """A ``winners.json``-style provenance record for a terminal decision.

    Field-by-field schema documented in ``docs/promotion.md``.  The
    store stamps ``decided_at`` on append, keeping this function pure.
    """
    pairs = shadow.pairs
    inc_mean = float(np.mean([p.incumbent_s for p in pairs])) if pairs else None
    cha_mean = float(np.mean([p.challenger_s for p in pairs])) if pairs else None
    return {
        "run_id": shadow.run_id,
        "decision": decision,
        "reason": reason,
        "trigger": shadow.trigger,
        "retune_reason": shadow.reason,
        "origin_datasize_gb": shadow.origin_datasize_gb,
        "n_pairs": len(pairs),
        "baseline": {
            "config": config_to_dict(shadow.incumbent),
            "mean_duration_s": inc_mean,
        },
        "challenger": {
            "config": config_to_dict(shadow.challenger),
            "mean_duration_s": cha_mean,
            "session_duration_s": shadow.challenger_duration_s,
        },
        "ab": None if test is None else test.to_json(),
        "pairs": [p.to_json() for p in pairs],
    }
