"""Result records returned by tuners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sparksim.configspace import Configuration


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning session.

    ``best_duration_s`` is the best *full-application* execution time
    observed for ``best_config``; ``overhead_s`` is the total simulated
    time spent collecting samples (the optimization cost the paper
    reports in hours); ``evaluations`` counts objective runs.
    ``details`` carries tuner-specific extras (QCSA split, selected
    parameters, iteration traces) for the figure harnesses.
    """

    tuner: str
    application: str
    datasize_gb: float
    best_config: Configuration
    best_duration_s: float
    overhead_s: float
    evaluations: int
    details: dict = field(default_factory=dict)

    @property
    def overhead_hours(self) -> float:
        return self.overhead_s / 3600.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.tuner} on {self.application}@{self.datasize_gb:.0f}GB: "
            f"best {self.best_duration_s:.1f}s after {self.evaluations} runs "
            f"({self.overhead_hours:.2f}h overhead)"
        )
