"""The LOCAT orchestrator (paper Figure 3).

Pipeline for the first tuning session:

1. **Bootstrap sampling** — run the full application ``n_qcsa`` times
   (3 LHS start points, then BO iterations over the full encoded space).
   These runs double as QCSA's matrix S and IICP's matrix S', exactly as
   the paper notes in sections 5.1 and 5.3 ("we leverage the samples
   performed by the BO iterations").
2. **QCSA** — per-query CVs over the bootstrap runs; drop the CIQ band;
   the survivors form the RQA.
3. **IICP** — CPS (Spearman over the first ``n_iicp`` samples) + CPE
   (Gaussian-kernel KPCA), producing the latent tuning space.
4. **DAGP BO** — EI-MCMC Bayesian optimization in the latent space,
   evaluating only the RQA, warm-started with the bootstrap samples
   (re-targeted to their CSQ-subset durations), until the EI stop rule.
   The KPCA manifold is refit on all observed configurations every few
   iterations so the latent space grows to cover the regions BO
   explores — with a fixed 20-sample manifold the pre-image could only
   reach configurations "between" the bootstrap points.
5. **Validation** — the best configuration is re-run on the full
   application; that run is the reported best duration.

Subsequent ``tune()`` calls at different datasizes skip steps 1-3 and
warm-start step 4 from the full observation history — the DAGP models
``t = f(conf, ds)``, so knowledge transfers across datasizes and the
expensive bootstrap is paid only once.  Ablation switches: ``use_qcsa``,
``use_iicp``, ``use_dagp`` (the last disables cross-datasize transfer).

**Cross-application transfer** (``transfer_from=``): given a
:class:`~repro.transfer.donor.TransferPlan` built from a similar
tenant's persisted history, step 1 shrinks to ``n_transfer_bootstrap``
runs — just enough for QCSA and a provisional CPS.  The donor's
importance profile is then checked against the provisional one
(:func:`~repro.transfer.donor.cps_agreement`) and the refined workload
fingerprint re-scored; on acceptance the donor's CPS selection is
merged in and its observations enter step 4 as a bias-corrected,
low-fidelity GP prior (fidelity column + inflated noise, see
:mod:`repro.core.dagp`), on rejection the bootstrap completes to the
full ``n_qcsa`` cold budget.  ``transfer_from=None`` is bit-for-bit the
cold start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dagp import DatasizeAwareGP
from repro.core.datasize import normalize_datasize
from repro.core.iicp import CPSResult, DEFAULT_N_IICP, IICP, IICPResult, run_cpe, run_cps
from repro.core.objective import SparkSQLObjective, Trial
from repro.core.parallel import EvalRequest, ParallelEvaluator
from repro.core.qcsa import DEFAULT_N_QCSA, QCSAResult, analyze_samples
from repro.core.result import TuningResult
from repro.core.tuner import BOLoop, DEFAULT_EI_THRESHOLD, DEFAULT_MIN_ITERATIONS
from repro.replay import (
    DEFAULT_N_REPLAYS,
    DEFAULT_TRACE_CAPACITY,
    MIN_TRACE_STEPS,
    REPLAY_EVAL_MODES,
    ReplayEvaluator,
    ReplayTrace,
    TraceStep,
    race,
)
from repro.sparksim.configspace import Configuration
from repro.sparksim.engine import SparkSQLSimulator
from repro.sparksim.query import Application
from repro.sparksim.serialize import canonical_key
from repro.stats.sampling import ensure_rng
from repro.surrogate.policy import validate_backend
from repro.transfer.donor import TransferPlan, cps_agreement
from repro.transfer.fingerprint import WorkloadFingerprint, fingerprint_similarity

#: Bootstrap budget of a transfer warm start: enough full-application
#: runs for QCSA CVs and a provisional CPS, a fraction of DEFAULT_N_QCSA.
DEFAULT_N_TRANSFER_BOOTSTRAP = 8


@dataclass
class _Observation:
    """One observed configuration with its RQA-equivalent duration."""

    config: Configuration
    datasize_gb: float
    rqa_duration_s: float


class LOCAT:
    """Low-Overhead Online Configuration Auto-Tuning for Spark SQL."""

    NAME = "LOCAT"

    def __init__(
        self,
        simulator: SparkSQLSimulator,
        app: Application,
        n_qcsa: int = DEFAULT_N_QCSA,
        n_iicp: int = DEFAULT_N_IICP,
        scc_threshold: float = 0.2,
        kernel: str = "gaussian",
        explained_variance: float = 0.95,
        min_iterations: int = DEFAULT_MIN_ITERATIONS,
        max_iterations: int = 25,
        ei_threshold: float = DEFAULT_EI_THRESHOLD,
        n_mcmc: int = 6,
        refit_interval: int = 8,
        use_qcsa: bool = True,
        use_iicp: bool = True,
        use_dagp: bool = True,
        use_polish: bool = True,
        n_workers: int = 1,
        transfer_from: TransferPlan | None = None,
        n_transfer_bootstrap: int = DEFAULT_N_TRANSFER_BOOTSTRAP,
        surrogate_mode: str = "full",
        surrogate_backend: str = "exact",
        n_adapt_iterations: int | None = None,
        replay_eval: str = "off",
        replay_capacity: int = DEFAULT_TRACE_CAPACITY,
        n_replays: int = DEFAULT_N_REPLAYS,
        rng: int | np.random.Generator | None = None,
    ):
        self.simulator = simulator
        self.app = app
        self.n_qcsa = n_qcsa
        self.n_iicp = n_iicp
        self.scc_threshold = scc_threshold
        self.kernel = kernel
        self.explained_variance = explained_variance
        self.min_iterations = min_iterations
        self.max_iterations = max_iterations
        self.ei_threshold = ei_threshold
        self.n_mcmc = n_mcmc
        self.refit_interval = max(int(refit_interval), 1)
        self.use_qcsa = use_qcsa
        self.use_iicp = use_iicp
        self.use_dagp = use_dagp
        self.use_polish = use_polish
        self.n_workers = int(n_workers)
        self.transfer_from = transfer_from
        self.n_transfer_bootstrap = int(n_transfer_bootstrap)
        if surrogate_mode not in ("full", "incremental"):
            raise ValueError("surrogate_mode must be 'full' or 'incremental'")
        #: Surrogate-engine lifecycle for every BO loop this orchestrator
        #: runs: "full" refits per iteration (the historic, bit-for-bit
        #: reproducible path), "incremental" reuses one engine per loop
        #: with exact rank-k extends and warm-started MCMC chains.
        self.surrogate_mode = surrogate_mode
        #: GP implementation underneath every surrogate this orchestrator
        #: builds — the session loops *and* the monitoring predictor
        #: behind :meth:`predict_log_duration`.  "exact" (default) is
        #: bit-for-bit the single-backend engine; "windowed"/"sparse"
        #: bound per-decision cost on long histories; "auto" resolves by
        #: history size through the default
        #: :class:`~repro.surrogate.policy.BackendPolicy`.
        self.surrogate_backend = validate_backend(surrogate_backend)
        if n_adapt_iterations is not None and int(n_adapt_iterations) < 1:
            raise ValueError("n_adapt_iterations must be at least 1")
        #: BO budget of a drift-triggered :meth:`adapt` session; None
        #: derives about a third of the full budget.
        self._n_adapt_iterations = (
            None if n_adapt_iterations is None else int(n_adapt_iterations)
        )
        if replay_eval not in REPLAY_EVAL_MODES:
            raise ValueError(
                f"replay_eval must be one of {REPLAY_EVAL_MODES}, got {replay_eval!r}"
            )
        #: Replay-based candidate evaluation for partial (drift) retunes:
        #: "off" is bit-for-bit the historic behaviour; "race" scores BO
        #: candidates on CRN replays of the recorded trace and races the
        #: finalists, so only the survivor is measured live.
        self.replay_eval = replay_eval
        if int(n_replays) < 1:
            raise ValueError("n_replays must be at least 1")
        self.n_replays = int(n_replays)
        #: Recorded production history replays are resampled from.
        self.replay_trace = ReplayTrace(capacity=int(replay_capacity))
        self._replay_sessions = 0
        #: Cached point-estimate DAGP over the observation history, used
        #: by :meth:`predict_log_duration` (the online drift path).
        self._predictor: DatasizeAwareGP | None = None
        self._predictor_iicp: IICPResult | None = None
        self._predictor_count = 0
        self._predictor_boundary = 0
        #: Index below which observations predate the latest drift
        #: retune (set by partial :meth:`adapt` sessions).  The
        #: environment shifted at that boundary, so the monitoring
        #: predictor demotes older rows to the low-fidelity prior —
        #: the same quarantine the session surrogate applies — instead
        #: of blending stale-environment durations at full weight.
        #: Persisted with the deployed state (the calibration offset
        #: was anchored against the quarantined predictor, so the two
        #: must survive a restart together) and restored via
        #: :meth:`restore_stale_boundary`.
        self._stale_before = 0
        #: The same boundary in objective-trial indices (in-process
        #: only — a restarted objective starts with an empty history,
        #: so every restored trial index is post-restart by
        #: construction).
        self._stale_trials_before = 0
        #: Bias-corrected donor observations (never persisted, never in
        #: :attr:`observation_history`); filled by a transfer bootstrap.
        self._transfer_observations: list[_Observation] = []
        self._transfer_anchor_measured = False
        self.transfer_accepted: bool | None = None
        self.transfer_agreement: float | None = None
        self.transfer_similarity: float | None = None
        self.rng = ensure_rng(rng)

        self.objective = SparkSQLObjective(simulator, app, rng=self.rng)
        # n_workers=1 delegates to the plain serial objective calls, so
        # seeded single-worker sessions reproduce the serial trajectory
        # exactly; n_workers>1 runs each BO batch concurrently.
        self.evaluator = ParallelEvaluator(self.objective, n_workers=self.n_workers)
        self.qcsa_result: QCSAResult | None = None
        self.iicp_result: IICPResult | None = None
        self._observations: list[_Observation] = []

    # ------------------------------------------------------------------
    # Bootstrap: sample collection + QCSA + IICP
    # ------------------------------------------------------------------
    @property
    def is_bootstrapped(self) -> bool:
        return self.iicp_result is not None

    @property
    def csq(self) -> list[str]:
        """The configuration-sensitive queries (RQA query list)."""
        if self.use_qcsa and self.qcsa_result is not None:
            return list(self.qcsa_result.csq)
        return self.app.query_names

    @property
    def transfer_state(self) -> str:
        """``none`` | ``pending`` | ``accepted`` | ``rejected``."""
        if self.transfer_from is None:
            return "none"
        if self.transfer_accepted is None:
            return "pending"
        return "accepted" if self.transfer_accepted else "rejected"

    def _collect_bootstrap_samples(
        self, datasize_gb: float, n_iterations: int, warm_trials: list[Trial] | None = None
    ) -> list[Trial]:
        """Run ``n_iterations`` full-application bootstrap samples.

        A small LHS design followed by full-space BO, exactly the cold
        bootstrap's sampling loop; ``warm_trials`` seeds the surrogate
        when a rejected transfer completes an already-started bootstrap.
        Returns the objective's full trial history.
        """
        space = self.objective.space

        def evaluate(point: np.ndarray, ds: float) -> float:
            return self.evaluator.run(space.decode(point), ds).duration_s

        def evaluate_batch(points: np.ndarray, ds: float) -> np.ndarray:
            requests = [EvalRequest(space.decode(p), ds) for p in np.atleast_2d(points)]
            trials = self.evaluator.run_batch(requests)
            return np.array([t.duration_s for t in trials])

        warm_kwargs = {}
        if warm_trials:
            warm_kwargs = dict(
                warm_points=np.stack([space.encode(t.config) for t in warm_trials]),
                warm_datasizes=np.array([t.datasize_gb for t in warm_trials]),
                warm_durations=np.array([t.duration_s for t in warm_trials]),
            )
        loop = BOLoop(
            dim=space.dim,
            n_init=6,
            min_iterations=n_iterations,  # no early stop during bootstrap
            max_iterations=n_iterations,
            ei_threshold=0.0,
            n_mcmc=min(self.n_mcmc, 4),
            n_candidates=192,
            batch_size=self.n_workers,
            surrogate_mode=self.surrogate_mode,
            surrogate_backend=self.surrogate_backend,
            rng=self.rng,
        )
        loop.minimize(
            evaluate,
            datasize_gb,
            evaluate_batch=evaluate_batch if self.n_workers > 1 else None,
            **warm_kwargs,
        )
        return list(self.objective.history)

    @staticmethod
    def _qcsa_over(app: Application, trials: list[Trial]) -> QCSAResult:
        samples = {q: [] for q in app.query_names}
        for trial in trials:
            for query in trial.metrics.queries:
                samples[query.name].append(query.duration_s)
        return analyze_samples(samples)

    def bootstrap(self, datasize_gb: float) -> None:
        """Collect the initial full-application samples and run QCSA/IICP.

        Following the paper (sections 5.1, 5.3), the N_QCSA samples are
        the executions performed by the BO iterations themselves — a
        small LHS design followed by full-space BO.  Because BO starts
        exploiting after a handful of runs, the samples get cheaper as
        the bootstrap proceeds, which is what keeps LOCAT's total
        optimization time an order of magnitude below approaches that
        collect large random corpora.

        With a :attr:`transfer_from` plan the budget shrinks to
        ``n_transfer_bootstrap`` runs and the donor's history fills the
        gap — see :meth:`_bootstrap_transfer`.
        """
        if self.is_bootstrapped:
            return
        datasize_gb = normalize_datasize(datasize_gb)
        if self.transfer_from is not None:
            self._bootstrap_transfer(datasize_gb)
            return
        bootstrap_trials = self._collect_bootstrap_samples(datasize_gb, self.n_qcsa)
        self.qcsa_result = self._qcsa_over(self.app, bootstrap_trials)
        space = self.objective.space

        iicp = IICP(
            scc_threshold=self.scc_threshold,
            kernel=self.kernel,
            explained_variance=self.explained_variance,
            n_samples=self.n_iicp,
        )
        if self.use_iicp:
            self.iicp_result = iicp.run(
                space,
                [t.config for t in bootstrap_trials],
                [t.duration_s for t in bootstrap_trials],
            )
        else:
            # Ablation: tune every parameter; the "latent" space is the
            # raw unit-cube encoding of all 38 parameters.
            self.iicp_result = _identity_iicp(space, iicp)

        csq = self.csq
        self._observations = [
            _Observation(
                config=trial.config,
                datasize_gb=trial.datasize_gb,
                rqa_duration_s=max(trial.metrics.duration_of(csq), 1e-3),
            )
            for trial in bootstrap_trials
        ]
        # Re-extract with the Figure-10 dimension budget (about a third of
        # the original parameters) now that the CPS selection is known.
        self._refit_cpe()

    def _bootstrap_transfer(self, datasize_gb: float) -> None:
        """Reduced bootstrap that borrows a donor tenant's history.

        1. Collect only ``n_transfer_bootstrap`` full-application samples
           (vs ``n_qcsa`` cold) — enough for QCSA CVs and a provisional
           CPS.
        2. Validate the donor: importance-profile agreement between the
           provisional CPS and the donor's persisted one, plus the
           fingerprint similarity re-scored with the dynamic
           (seconds-per-GB) component the early samples provide.
        3. On acceptance, merge the donor's CPS selection into the
           target's and transplant the donor's observations as a
           low-fidelity GP prior.  Donor durations are bias-corrected in
           log space (their median is aligned to the median of the
           target's own bootstrap RQA durations) so the prior carries
           the donor's *shape* over configuration space, not its scale.
        4. On rejection, complete the bootstrap to the full ``n_qcsa``
           budget, warm-started from the samples already collected — the
           tenant ends up with a normal cold bootstrap, just reordered.
        """
        plan = self.transfer_from
        assert plan is not None
        space = self.objective.space
        n_boot = min(max(self.n_transfer_bootstrap, 4), self.n_qcsa)
        trials = self._collect_bootstrap_samples(datasize_gb, n_boot)
        # QCSA first: the fingerprint's dynamic part must be RQA
        # seconds-per-GB, the same units the donor's persisted tuning
        # rows carry — full-application rates would systematically
        # deflate the similarity of a genuinely identical workload.
        self.qcsa_result = self._qcsa_over(self.app, trials)

        own_cps = run_cps(
            space,
            [t.config for t in trials],
            [t.duration_s for t in trials],
            threshold=self.scc_threshold,
        )
        self.transfer_agreement = cps_agreement(own_cps, plan.cps)
        fingerprint = WorkloadFingerprint.from_application(self.app).with_observations(
            [t.datasize_gb for t in trials],
            [t.metrics.duration_of(self.csq) for t in trials],
        )
        self.transfer_similarity = fingerprint_similarity(fingerprint, plan.fingerprint)
        self.transfer_accepted = (
            self.transfer_agreement >= plan.min_agreement
            and self.transfer_similarity >= plan.min_similarity
        )

        if self.transfer_accepted:
            donor_selected = set(plan.cps.selected) & set(space.names)
            keep = set(own_cps.selected) | donor_selected
            cps = CPSResult(
                scc=own_cps.scc,
                selected=tuple(n for n in space.names if n in keep),
                threshold=own_cps.threshold,
            )
        else:
            remaining = self.n_qcsa - n_boot
            if remaining > 0:
                trials = self._collect_bootstrap_samples(
                    datasize_gb, remaining, warm_trials=trials
                )
                # Re-run QCSA over the completed cold-budget sample set.
                self.qcsa_result = self._qcsa_over(self.app, trials)
            limit = self.n_iicp if self.n_iicp else len(trials)
            subset = trials[:limit]
            cps = run_cps(
                space,
                [t.config for t in subset],
                [t.duration_s for t in subset],
                threshold=self.scc_threshold,
            )

        csq = self.csq
        self._observations = [
            _Observation(
                config=trial.config,
                datasize_gb=trial.datasize_gb,
                rqa_duration_s=max(trial.metrics.duration_of(csq), 1e-3),
            )
            for trial in trials
        ]

        if self.transfer_accepted:
            # Bias correction: align the donor's median log duration to
            # the target's, so only the donor's relative preferences —
            # which configurations were faster than which — transfer.
            own_median = float(np.median([np.log(o.rqa_duration_s) for o in self._observations]))
            donor_median = float(
                np.median([np.log(max(dur, 1e-3)) for _, _, dur in plan.observations])
            )
            scale = float(np.exp(own_median - donor_median))
            self._transfer_observations = [
                _Observation(
                    config=config,
                    datasize_gb=normalize_datasize(ds),
                    rqa_duration_s=max(float(dur) * scale, 1e-3),
                )
                for config, ds, dur in plan.observations
            ]

        if self.use_iicp:
            cpe = run_cpe(
                space,
                [o.config for o in self._observations],
                cps,
                kernel=self.kernel,
                explained_variance=self.explained_variance,
                n_components=self._latent_dim_cap(len(cps.selected)),
            )
            self.iicp_result = IICPResult(
                cps=cps,
                cpe=cpe,
                space=space,
                base_config=self._best_observation().config,
            )
        else:
            self.iicp_result = _identity_iicp(space, IICP())
        self._refit_cpe()

    def _latent_dim_cap(self, n_selected: int | None = None) -> int:
        """CPE keeps about a third of the original parameters (Figure 10)."""
        if n_selected is None:
            assert self.iicp_result is not None
            n_selected = len(self.iicp_result.selected)
        return min(15, max(5, n_selected // 2))

    # ------------------------------------------------------------------
    # Persistence hooks (used by the tuning service)
    # ------------------------------------------------------------------
    @property
    def observation_history(self) -> list[tuple[Configuration, float, float]]:
        """Every ``(config, datasize_gb, rqa_duration_s)`` observed so far.

        The list is append-only across tuning sessions, so a caller can
        persist just the tail it has not seen yet; feeding the full list
        back into :meth:`restore` reproduces the tuner's knowledge.
        """
        return [(o.config, o.datasize_gb, o.rqa_duration_s) for o in self._observations]

    def restore(
        self,
        qcsa_result: QCSAResult | None,
        cps,
        observations: list[tuple[Configuration, float, float]],
    ) -> None:
        """Warm-start from a persisted tuning history, skipping the bootstrap.

        ``observations`` are ``(config, datasize_gb, rqa_duration_s)``
        tuples as returned by :attr:`observation_history`; ``cps`` is the
        persisted :class:`~repro.core.iicp.CPSResult`.  The CPE manifold
        is not persisted — it is refit over the restored observations,
        exactly as :meth:`tune` refits it every ``refit_interval``
        iterations — so the only artifacts a store must keep are the QCSA
        split, the CPS selection, and the run table.  After this call
        :attr:`is_bootstrapped` is true and the next :meth:`tune` goes
        straight to DAGP BO.
        """
        if self.is_bootstrapped:
            raise RuntimeError("cannot restore into a bootstrapped LOCAT")
        observations = list(observations)
        if len(observations) < 3:
            raise ValueError("restore needs at least three observations")
        self.qcsa_result = qcsa_result
        self._observations = [
            _Observation(
                config=config,
                datasize_gb=normalize_datasize(ds),
                rqa_duration_s=float(dur),
            )
            for config, ds, dur in observations
        ]
        if self.use_iicp:
            cpe = run_cpe(
                self.objective.space,
                [o.config for o in self._observations],
                cps,
                kernel=self.kernel,
                explained_variance=self.explained_variance,
                n_components=self._latent_dim_cap(len(cps.selected)),
            )
            self.iicp_result = IICPResult(
                cps=cps,
                cpe=cpe,
                space=self.objective.space,
                base_config=self._best_observation().config,
            )
        else:
            self.iicp_result = _identity_iicp(self.objective.space, IICP())

    # ------------------------------------------------------------------
    # Replay trace (the low-variance evaluation path)
    # ------------------------------------------------------------------
    def record_production_run(
        self,
        datasize_gb: float,
        duration_s: float | None = None,
        config: Configuration | None = None,
        rng_key: tuple[int, ...] | None = None,
        environment=None,
    ) -> None:
        """Record one production run into the replay trace.

        A no-op with ``replay_eval="off"`` — the trace, its derived RNG
        keys, and the persistence that follows must not exist on the
        bit-for-bit default path.  Never consumes :attr:`rng`.
        """
        if self.replay_eval == "off":
            return
        self.replay_trace.record(
            datasize_gb=normalize_datasize(datasize_gb),
            duration_s=duration_s,
            rng_key=rng_key,
            config=config,
            environment=environment,
        )

    def restore_replay_trace(self, steps: list[TraceStep]) -> None:
        """Rehydrate the trace persisted by a previous process."""
        self.replay_trace = ReplayTrace.from_steps(
            steps, capacity=self.replay_trace.capacity
        )

    def replay_shadow_pairs(
        self, incumbent: Configuration, challenger: Configuration,
        max_pairs: int | None = None,
    ) -> list[tuple[float, float, float]]:
        """CRN shadow pairs replayed from recorded history.

        Full-application runs of both arms on the newest trace steps,
        each pinned to its step's recorded RNG key, returned as
        ``(datasize_gb, incumbent_s, challenger_s)`` tuples.  Lets the
        promotion gate reach a verdict before any production run lands.
        Deliberately bypasses :attr:`objective` — replays are rescoring
        of recorded history, not new samples — and returns ``[]`` when
        replay evaluation is off or the trace is too short.
        """
        if self.replay_eval == "off" or self.replay_trace.n_steps < MIN_TRACE_STEPS:
            return []
        steps = self.replay_trace.steps
        if max_pairs is not None:
            steps = steps[-int(max_pairs):]
        pairs = []
        for step in steps:
            inc = self.simulator.run(
                self.app, incumbent, step.datasize_gb, rng=step.rng_key
            ).duration_s
            chal = self.simulator.run(
                self.app, challenger, step.datasize_gb, rng=step.rng_key
            ).duration_s
            pairs.append((step.datasize_gb, float(inc), float(chal)))
        return pairs

    # ------------------------------------------------------------------
    # Online prediction (the drift path)
    # ------------------------------------------------------------------
    @property
    def n_adapt_iterations(self) -> int:
        """BO budget of a partial :meth:`adapt` session.

        Defaults to about a third of the full ``max_iterations`` — the
        surrogate is warm, so a drift retune only needs enough fresh
        evaluations to re-anchor it, not a full search.
        """
        if self._n_adapt_iterations is not None:
            return min(self._n_adapt_iterations, self.max_iterations)
        return max(2, min(self.max_iterations, (self.max_iterations + 2) // 3))

    @property
    def stale_before(self) -> int:
        """Observations below this index predate the latest drift retune."""
        return self._stale_before

    def restore_stale_boundary(self, n: int) -> None:
        """Rehydrate the drift-quarantine boundary persisted by a
        previous process (clamped to the restored history length).

        Without it, a restart after a drift retune would refit the
        monitoring predictor with pre-drift rows back at full weight
        while keeping the calibration that was anchored against the
        quarantined predictor — a systematically low expectation that
        spuriously re-alarms.
        """
        self._stale_before = max(0, min(int(n), len(self._observations)))

    def _refresh_predictor(self) -> DatasizeAwareGP | None:
        """The cached point-estimate DAGP over all observations.

        Fit once per manifold (a session's :meth:`_refit_cpe` replaces
        ``iicp_result``, invalidating the latent geometry), then grown
        by exact rank-k extends as observations arrive — steady-state
        drift checks never pay a refit.  Rows behind the latest drift
        boundary (:attr:`_stale_before`) enter at fidelity 1: they
        describe a pre-drift environment and must shape, not dominate,
        the expectation production runs are checked against.
        """
        iicp = self.iicp_result
        if iicp is None or len(self._observations) < 4:
            return None
        count = len(self._observations)
        stale = min(self._stale_before, count)
        if (
            self._predictor is not None
            and self._predictor_iicp is iicp
            and self._predictor_boundary == stale
        ):
            if count > self._predictor_count:
                new = self._observations[self._predictor_count:]
                self._predictor.extend(
                    np.stack([iicp.encode(o.config) for o in new]),
                    np.array([o.datasize_gb for o in new]),
                    np.array([o.rqa_duration_s for o in new]),
                )
                self._predictor_count = count
            return self._predictor
        # The monitoring predictor inherits the tenant's backend setting:
        # it is extended on every production run, so an aging tenant's
        # drift checks must stay O(W) too, not O(history).
        predictor = DatasizeAwareGP(
            iicp.n_components, n_mcmc=0, backend=self.surrogate_backend
        )
        predictor.fit(
            np.stack([iicp.encode(o.config) for o in self._observations]),
            np.array([o.datasize_gb for o in self._observations]),
            np.array([o.rqa_duration_s for o in self._observations]),
            fidelities=(
                np.array([1.0] * stale + [0.0] * (count - stale)) if stale else None
            ),
        )
        self._predictor = predictor
        self._predictor_iicp = iicp
        self._predictor_count = count
        self._predictor_boundary = stale
        return predictor

    def predict_log_duration(
        self, config: Configuration, datasize_gb: float
    ) -> tuple[float, float] | None:
        """Posterior (mean, std) of the log RQA duration of one config.

        This is what the online controller compares production runs
        against: the same DAGP knowledge the tuner pays to maintain,
        with an uncertainty estimate the nearest-run heuristic never
        had.  None before the bootstrap (or with under 4 observations).
        """
        predictor = self._refresh_predictor()
        if predictor is None:
            return None
        assert self.iicp_result is not None
        mean, std = predictor.predict(
            self.iicp_result.encode(config), normalize_datasize(datasize_gb)
        )
        return float(mean[0]), float(std[0])

    #: Parameters whose defaults assume a tiny cluster; their tuned values
    #: are always kept (the starred rows of Table 2 plus executor count).
    RESOURCE_PARAMETERS = frozenset(
        {
            "driver.cores",
            "driver.memory",
            "executor.cores",
            "executor.instances",
            "executor.memory",
            "executor.memoryOverhead",
            "memory.offHeap.size",
            "memory.offHeap.enabled",
            "memory.fraction",
            "memory.storageFraction",
            "default.parallelism",
            "sql.shuffle.partitions",
        }
    )

    def _best_observation(self) -> _Observation:
        return min(self._observations, key=lambda o: o.rqa_duration_s)

    def _polish(
        self, datasize_gb: float, csq: list[str], top_k: int = 12, since: int = 0,
        evaluate=None,
    ) -> None:
        """Greedy coordinate polish of the incumbent, evaluated on the RQA.

        This is the exploitation end-game of "only tune the important
        parameters": once BO has located the basin, a short deterministic
        sweep over the resource parameters and the top-|SCC| parameters
        squeezes out the remaining gains EI no longer considers worth an
        evaluation.  Boolean parameters are flipped outright (a small
        encoded step never crosses their 0.5 rounding boundary).
        ``since`` restricts the incumbent to observations recorded from
        that index on (partial sessions quarantine pre-drift rows).
        ``evaluate`` overrides how a candidate is scored (``config ->
        duration_s``, the replay path); the default is a live RQA run
        through the objective, bit for bit the historic sweep.
        """
        assert self.iicp_result is not None
        space = self.objective.space
        scc = self.iicp_result.cps.scc
        ranked = sorted(space.names, key=lambda n: -abs(scc.get(n, 0.0)))
        # Sorted, not raw set order: frozenset iteration depends on the
        # process hash seed, which silently made polish trajectories —
        # and therefore tuned configurations — differ between processes.
        names = list(dict.fromkeys(sorted(self.RESOURCE_PARAMETERS & set(space.names)) + ranked[:top_k]))
        at_ds = [o for o in self._observations[since:] if o.datasize_gb == datasize_gb]
        if not at_ds:
            return
        incumbent = min(at_ds, key=lambda o: o.rqa_duration_s)
        best_config = incumbent.config
        # The replay path re-scores the incumbent through the same
        # evaluator, so the sweep compares replay means against a replay
        # mean — never a live draw against an averaged one.
        best_duration = (
            incumbent.rqa_duration_s if evaluate is None else float(evaluate(best_config))
        )
        encoded = space.encode(best_config)
        booleans = set(space.boolean_names())
        # Adaptation sessions (top_k=0: resource parameters only) get a
        # single sweep; the first session polishes more thoroughly.
        budget = (3 if top_k else 1) * len(names)

        def try_candidate(candidate: Configuration) -> bool:
            nonlocal best_config, best_duration, encoded, budget
            if candidate == best_config or budget <= 0:
                return False
            if evaluate is None:
                duration = self.objective.run_subset(candidate, datasize_gb, csq).duration_s
            else:
                duration = float(evaluate(candidate))
            budget -= 1
            self._observations.append(_Observation(candidate, datasize_gb, duration))
            if duration < best_duration:
                best_config = candidate
                best_duration = duration
                encoded = space.encode(best_config)
                return True
            return False

        # Known-coupled Spark parameters first: memory.offHeap.size is
        # meaningless unless memory.offHeap.enabled is set, so a
        # coordinate-wise sweep can never turn off-heap memory on.  Try
        # the pair jointly at a few sizes.
        offheap_hi = space.bounds("memory.offHeap.size")[1]
        for size in (0.25 * offheap_hi, 0.5 * offheap_hi):
            try_candidate(
                space.repair(
                    best_config.replace(
                        **{"memory.offHeap.enabled": True, "memory.offHeap.size": int(size)}
                    )
                )
            )
        try_candidate(
            space.repair(
                best_config.replace(
                    **{"memory.offHeap.enabled": False, "memory.offHeap.size": 0}
                )
            )
        )

        for step in (0.12, 0.06):
            improved_any = False
            for name in names:
                if budget <= 0:
                    break
                if name in booleans:
                    if step == 0.12:  # flip once, not per step size
                        flipped = space.repair(
                            best_config.replace(**{name: not best_config[name]})
                        )
                        improved_any |= try_candidate(flipped)
                    continue
                index = space.names.index(name)
                for delta in (+step, -step):
                    trial_encoded = encoded.copy()
                    trial_encoded[index] = float(np.clip(trial_encoded[index] + delta, 0.0, 1.0))
                    if try_candidate(space.decode(trial_encoded)):
                        improved_any = True
                        break  # the other direction is now stale
            if budget <= 0:
                break
            del improved_any  # finer step runs regardless; budget bounds cost

    def _reset_unimportant_to_defaults(self, config: Configuration) -> Configuration:
        """CPS-dropped, non-resource parameters go back to their defaults."""
        assert self.iicp_result is not None
        space = self.objective.space
        defaults = space.default()
        selected = set(self.iicp_result.selected)
        updates = {
            name: defaults[name]
            for name in space.names
            if name not in selected and name not in self.RESOURCE_PARAMETERS
        }
        return space.repair(config.replace(**updates)) if updates else config

    def _refit_cpe(self) -> None:
        """Regrow the KPCA manifold over every configuration seen so far.

        Also re-anchors the decode base to the best configuration found:
        parameters outside the CPS selection keep their best-known values
        (rather than Spark defaults), so the latent codec reconstructs
        the incumbent exactly and local moves around it stay local.
        """
        assert self.iicp_result is not None
        if not self.use_iicp:
            return
        cpe = run_cpe(
            self.objective.space,
            [o.config for o in self._observations],
            self.iicp_result.cps,
            kernel=self.kernel,
            explained_variance=self.explained_variance,
            n_components=self._latent_dim_cap(),
        )
        self.iicp_result = IICPResult(
            cps=self.iicp_result.cps,
            cpe=cpe,
            space=self.objective.space,
            base_config=self._best_observation().config,
        )

    # ------------------------------------------------------------------
    # Tuning sessions
    # ------------------------------------------------------------------
    def tune(self, datasize_gb: float) -> TuningResult:
        """Tune for ``datasize_gb``; later calls reuse all prior knowledge."""
        try:
            return self._tune(datasize_gb)
        finally:
            # Sessions are rare (bootstrap, then occasional adaptation);
            # keeping n_workers pool threads alive between them — per
            # tenant, for the service's lifetime — is a leak, and the
            # next session lazily recreates the pool anyway.
            self.evaluator.close()

    def adapt(self, datasize_gb: float, max_iterations: int | None = None) -> TuningResult:
        """A *partial* tuning session for drift-triggered retunes.

        The surrogate already knows the configuration space — the
        environment merely shifted under it — so the session runs a
        reduced BO budget (:attr:`n_adapt_iterations` unless
        overridden) over the incremental surrogate engine, warm-started
        from the full observation history.  Everything else matches a
        regular adaptation session: the incumbent is re-anchored at the
        target datasize, the result is validated with one full run, and
        the observations land in :attr:`observation_history` for
        persistence.  Falls back to a full :meth:`tune` when nothing is
        bootstrapped yet (there is no knowledge to warm-start from).
        """
        if not self.is_bootstrapped:
            return self.tune(datasize_gb)
        if max_iterations is not None and int(max_iterations) < 1:
            raise ValueError("max_iterations must be at least 1")
        budget = self.n_adapt_iterations if max_iterations is None else int(max_iterations)
        try:
            return self._tune(datasize_gb, partial=True, budget=budget)
        finally:
            self.evaluator.close()

    def _tune(
        self, datasize_gb: float, partial: bool = False, budget: int | None = None
    ) -> TuningResult:
        datasize_gb = normalize_datasize(datasize_gb)
        # Session budgets: a partial (drift) session caps the iterations
        # and always runs the incremental engine — extending a warm
        # surrogate is the whole point; the default path keeps the
        # configured mode so full sessions stay bit-for-bit reproducible.
        session_max = self.max_iterations if budget is None else min(budget, self.max_iterations)
        session_min = max(1, session_max // 3) if partial else self.min_iterations
        session_surrogate = "incremental" if partial else self.surrogate_mode
        overhead_before = self.objective.overhead_s
        evals_before = self.objective.n_evaluations
        fresh_session = not self.is_bootstrapped
        self.bootstrap(datasize_gb)
        assert self.iicp_result is not None
        csq = self.csq
        # Replay-based low-variance evaluation engages only for partial
        # (drift) sessions with enough recorded history: BO candidates,
        # the polish sweep, and the final selection are scored on CRN
        # replays of the trace — shared environment draws, so candidate
        # deltas cancel the common noise — and the session's live cost
        # shrinks to the incumbent anchor plus one validation run.
        replay = None
        race_outcome = None
        if (
            partial
            and self.replay_eval == "race"
            and self.replay_trace.n_steps >= MIN_TRACE_STEPS
        ):
            self._replay_sessions += 1
            replay = ReplayEvaluator(
                self.simulator,
                self.app,
                self.replay_trace,
                n_replays=self.n_replays,
                seed=self._replay_sessions,
            )
        # A partial (drift) session quarantines everything measured
        # before it: the environment shifted, so historical durations
        # are systematically off by an unknown factor.  Pre-session
        # rows enter the surrogate as a low-fidelity prior (the same
        # mechanism that quarantines transfer donors — shape, not
        # scale) while only measurements taken *this* session anchor
        # the incumbent, the polish, and the final selection.  The
        # boundary is remembered so the online monitoring predictor —
        # and every *later* session, full ones included — applies the
        # same demotion: a datasize-margin session after a drift event
        # must not blend pre-drift durations back in at full weight.
        session_start = len(self._observations) if partial else 0
        if partial:
            self._stale_before = session_start
            self._stale_trials_before = evals_before
        quarantine = session_start if partial else min(
            self._stale_before, len(self._observations)
        )

        # Adaptation sessions start by re-measuring the incumbent from the
        # nearest previously tuned datasize: one cheap RQA run anchors the
        # DAGP at the new size and guarantees the session never ends worse
        # than simply reusing the old configuration.
        unseen_datasize = not any(o.datasize_gb == datasize_gb for o in self._observations)
        if unseen_datasize and self._observations and self.use_dagp:
            nearest_ds = min(
                {o.datasize_gb for o in self._observations},
                key=lambda d: abs(d - datasize_gb),
            )
            carry = min(
                (o for o in self._observations if o.datasize_gb == nearest_ds),
                key=lambda o: o.rqa_duration_s,
            )
            trial = self.objective.run_subset(carry.config, datasize_gb, csq)
            self._observations.append(
                _Observation(carry.config, datasize_gb, trial.duration_s)
            )

        # A partial (drift) session always re-measures the incumbent in
        # the *current* environment: drift retunes fire at an
        # already-tuned datasize, so the block above is skipped, yet the
        # quarantine means only in-session rows compete for the final
        # selection.  Without this anchor a session whose few fresh
        # evaluations all landed on poor configurations could deploy
        # something strictly worse than what is already running.
        if partial and not any(
            o.datasize_gb == datasize_gb for o in self._observations[session_start:]
        ):
            stale = self._observations[:session_start]
            stale_at_ds = [o for o in stale if o.datasize_gb == datasize_gb]
            pool = stale_at_ds or stale
            if pool:
                carry = min(pool, key=lambda o: o.rqa_duration_s)
                trial = self.objective.run_subset(carry.config, datasize_gb, csq)
                self._observations.append(
                    _Observation(carry.config, datasize_gb, trial.duration_s)
                )

        # An accepted transfer re-measures the donor's best configuration
        # on the target RQA (once, in the first session after the
        # transfer bootstrap — regardless of whether the caller invoked
        # bootstrap() separately): one cheap run that anchors the
        # incumbent at the donor's converged solution, so the session can
        # never end worse than plain cross-application config reuse.  It
        # runs after the carry above so it can never suppress the
        # tenant's own nearest-datasize incumbent re-measurement.
        if (
            self.transfer_accepted
            and self._transfer_observations
            and not self._transfer_anchor_measured
        ):
            self._transfer_anchor_measured = True
            donor_best = min(self._transfer_observations, key=lambda o: o.rqa_duration_s)
            trial = self.objective.run_subset(donor_best.config, datasize_gb, csq)
            self._observations.append(
                _Observation(donor_best.config, datasize_gb, trial.duration_s)
            )

        iterations_done = 0
        stopped_by_ei = False
        while iterations_done < session_max and not stopped_by_ei:
            # Refit the KPCA manifold over everything observed so far.
            # Every executed configuration is then a manifold training
            # point, making encode/decode round-trips exact for all warm
            # observations — the GP sees a consistent latent geometry.
            self._refit_cpe()
            iicp = self.iicp_result
            chunk = min(self.refit_interval, session_max - iterations_done)

            if replay is not None:
                # Replay scoring: the candidate's mean RQA duration over
                # the fixed replay slots, straight from the simulator —
                # no objective recording, no live evaluation charged.
                def evaluate(latent: np.ndarray, ds: float) -> float:
                    config = iicp.decode(latent)
                    duration = replay.mean_duration(config, queries=csq, datasize_gb=ds)
                    self._observations.append(
                        _Observation(config=config, datasize_gb=ds, rqa_duration_s=duration)
                    )
                    return duration

                evaluate_batch = None
            else:
                def evaluate(latent: np.ndarray, ds: float) -> float:
                    config = iicp.decode(latent)
                    trial = self.evaluator.run_subset(config, ds, csq)
                    self._observations.append(
                        _Observation(config=config, datasize_gb=ds, rqa_duration_s=trial.duration_s)
                    )
                    return trial.duration_s

                def evaluate_batch(latents: np.ndarray, ds: float) -> np.ndarray:
                    configs = iicp.decode_batch(np.atleast_2d(latents))
                    trials = self.evaluator.run_batch(
                        [EvalRequest(config, ds, tuple(csq)) for config in configs]
                    )
                    for config, trial in zip(configs, trials):
                        self._observations.append(
                            _Observation(
                                config=config, datasize_gb=ds, rqa_duration_s=trial.duration_s
                            )
                        )
                    return np.array([t.duration_s for t in trials])

            if self.use_dagp:
                warm_own = list(self._observations[quarantine:])
                # Donor observations — and everything behind the drift
                # boundary — ride along as a low-fidelity prior; they
                # shape the surrogate but never the incumbent, the
                # stop rule, or the persisted history.
                transfer = list(self._transfer_observations) + list(
                    self._observations[:quarantine]
                )
            else:
                warm_own = [
                    o for o in self._observations[quarantine:]
                    if o.datasize_gb == datasize_gb
                ]
                transfer = []
            warm = transfer + warm_own
            n_warm = len(warm)
            warm_points = (
                np.stack([iicp.encode(o.config) for o in warm]) if warm else None
            )
            warm_fidelities = (
                np.array([1.0] * len(transfer) + [0.0] * len(warm_own))
                if transfer
                else None
            )

            loop = BOLoop(
                dim=iicp.n_components,
                bounds=iicp.latent_bounds(),
                n_init=3,
                min_iterations=max(0, session_min - iterations_done),
                max_iterations=chunk,
                ei_threshold=self.ei_threshold,
                n_mcmc=self.n_mcmc,
                batch_size=self.n_workers,
                surrogate_mode=session_surrogate,
                surrogate_backend=self.surrogate_backend,
                rng=self.rng,
            )
            trace = loop.minimize(
                evaluate,
                datasize_gb,
                warm_points=warm_points,
                warm_datasizes=np.array([o.datasize_gb for o in warm]) if warm else None,
                warm_durations=np.array([o.rqa_duration_s for o in warm]) if warm else None,
                warm_fidelities=warm_fidelities,
                evaluate_batch=evaluate_batch if self.n_workers > 1 else None,
            )
            iterations_done += trace.n_evaluations - n_warm
            stopped_by_ei = trace.stopped_by_ei

        # Full polish on the first tuning session; adaptation sessions only
        # re-polish the resource parameters (the drift DAGP must correct
        # when the datasize changes is in memory and parallelism).
        if self.use_polish:
            self._polish(
                datasize_gb, csq, top_k=12 if fresh_session else 0,
                since=quarantine,
                evaluate=(
                    None if replay is None else (
                        lambda c: replay.mean_duration(c, queries=csq, datasize_gb=datasize_gb)
                    )
                ),
            )

        # Best configuration by RQA duration at this datasize, plus a
        # default-reset refinement: parameters CPS classified unimportant
        # go back to their Spark defaults (the defaults of secondary knobs
        # are interior sweet spots; only resource parameters keep their
        # tuned values, since their defaults assume a tiny cluster).  Both
        # candidates cost one RQA run each; the winner is validated with
        # one full-application run.  All runs count toward the overhead.
        at_ds = [
            o for o in self._observations[quarantine:]
            if o.datasize_gb == datasize_gb
        ]
        best_obs = min(at_ds, key=lambda o: o.rqa_duration_s)
        candidates = [best_obs.config]
        reset_config = self._reset_unimportant_to_defaults(best_obs.config)
        if reset_config != best_obs.config:
            candidates.append(reset_config)
        if replay is not None:
            # Racing final selection: widen the field to the session's
            # next-best distinct configurations, then race everyone on
            # the shared replay slots — successive halving eliminates
            # candidates whose paired CI against the running best
            # excludes zero, and only the survivor is measured live.
            seen = {canonical_key(c) for c in candidates}
            for obs in sorted(at_ds, key=lambda o: o.rqa_duration_s):
                key = canonical_key(obs.config)
                if key not in seen:
                    seen.add(key)
                    candidates.append(obs.config)
                if len(candidates) >= 6:
                    break
            race_outcome = race(
                replay,
                candidates,
                queries=csq,
                datasize_gb=datasize_gb,
                seed=self._replay_sessions,
            )
            best_config = candidates[race_outcome.winner]
            self._observations.append(
                _Observation(
                    best_config,
                    datasize_gb,
                    replay.mean_duration(best_config, queries=csq, datasize_gb=datasize_gb),
                )
            )
        else:
            scored = []
            for candidate in candidates:
                trial = self.objective.run_subset(candidate, datasize_gb, csq)
                self._observations.append(
                    _Observation(candidate, datasize_gb, trial.duration_s)
                )
                scored.append((trial.duration_s, candidate))
            best_config = min(scored, key=lambda s: s[0])[1]
        validation = self.objective.run(best_config, datasize_gb)
        best_duration = validation.duration_s
        # Only post-drift full-application runs may re-anchor the
        # result: a pre-drift trial's duration describes an environment
        # that no longer exists, and deploying on it would pin the
        # calibration (and the next drift check) to stale seconds.
        # Partial sessions restrict further, to this session's runs.
        trials_floor = evals_before if partial else self._stale_trials_before
        fresh_full = [
            t for t in self.objective.history[trials_floor:]
            if not t.reduced and t.datasize_gb == datasize_gb
        ]
        # Never empty: the validation run above is full, at this
        # datasize, and recorded after the floor.
        incumbent_trial = min(fresh_full, key=lambda t: t.duration_s)
        if incumbent_trial.duration_s < best_duration:
            best_config = incumbent_trial.config
            best_duration = incumbent_trial.duration_s

        details = {
            "qcsa": self.qcsa_result,
            "iicp_selected": list(self.iicp_result.selected),
            "n_latent_dims": self.iicp_result.n_components,
            "stopped_by_ei": stopped_by_ei,
            "partial": partial,
            "csq": list(csq),
            "transfer": self.transfer_state,
            "transfer_donor": (
                self.transfer_from.donor_app_id if self.transfer_from else None
            ),
        }
        # Only replay-enabled tuners grow the details schema: the "off"
        # default must leave every existing result bit for bit.
        if self.replay_eval != "off":
            details["replay"] = {
                "enabled": replay is not None,
                "n_trace_steps": self.replay_trace.n_steps,
                **(replay.stats() if replay is not None else {}),
                "race": None if race_outcome is None else race_outcome.to_json(),
            }
        return TuningResult(
            tuner=self.NAME,
            application=self.app.name,
            datasize_gb=float(datasize_gb),
            best_config=best_config,
            best_duration_s=best_duration,
            overhead_s=self.objective.overhead_s - overhead_before,
            evaluations=self.objective.n_evaluations - evals_before,
            details=details,
        )


def _identity_iicp(space, iicp: IICP) -> IICPResult:
    """An IICPResult that passes the full encoded space through unchanged.

    Used by the all-parameters ablation (Figure 15's AP bars): CPS keeps
    every parameter and CPE is replaced by an identity 'KPCA' spanning
    the unit cube.
    """
    from repro.core.iicp import CPEResult, CPSResult

    class _IdentityKPCA:
        def __init__(self, dim: int):
            self.n_components_ = dim

        def transform(self, x):
            return np.atleast_2d(np.asarray(x, dtype=float))

        def inverse_transform(self, z, n_iterations: int = 0):
            del n_iterations
            return np.clip(np.atleast_2d(np.asarray(z, dtype=float)), 0.0, 1.0)

        def latent_bounds(self):
            return np.zeros(self.n_components_), np.ones(self.n_components_)

    names = tuple(space.names)
    cps = CPSResult(scc={n: 1.0 for n in names}, selected=names, threshold=0.0)
    cpe = CPEResult(kpca=_IdentityKPCA(space.dim), n_components=space.dim, kernel="identity")
    return IICPResult(cps=cps, cpe=cpe, space=space, base_config=space.default())
