"""The BO loop: LHS start points, EI-MCMC iterations, LOCAT's stop rule.

The loop is space-agnostic: it searches an axis-aligned box (the unit
hypercube for raw encoded configurations, or the IICP latent box) and
delegates evaluation to a caller-provided function, so LOCAT, the
ablations, and the BO-based baselines all share it.

Stop condition (paper section 3.4): at least ``min_iterations`` BO
iterations, then stop once the maximal expected improvement drops below
``ei_threshold``.  Because the surrogate models *log* durations, an EI
below 0.1 literally means "under ~10% expected improvement", matching
the paper's "EI drops below 10%" rule.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bo.lhs import latin_hypercube
from repro.bo.optimize import maximize_acquisition
from repro.core.dagp import DatasizeAwareGP
from repro.stats.sampling import ensure_rng

#: Paper defaults (section 3.4).
DEFAULT_N_INIT = 3
DEFAULT_MIN_ITERATIONS = 10
DEFAULT_EI_THRESHOLD = 0.1


@dataclass
class BOTrace:
    """Everything the BO loop observed, in evaluation order."""

    points: list[np.ndarray] = field(default_factory=list)
    datasizes: list[float] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    ei_values: list[float] = field(default_factory=list)
    stopped_by_ei: bool = False

    @property
    def n_evaluations(self) -> int:
        return len(self.durations)

    def best(self, datasize_gb: float | None = None) -> tuple[np.ndarray, float]:
        """Best (point, duration); optionally restricted to one datasize."""
        if not self.durations:
            raise RuntimeError("no evaluations recorded")
        indices = range(len(self.durations))
        if datasize_gb is not None:
            restricted = [i for i in indices if self.datasizes[i] == datasize_gb]
            indices = restricted or list(range(len(self.durations)))
        best_i = min(indices, key=lambda i: self.durations[i])
        return self.points[best_i], self.durations[best_i]


class BOLoop:
    """Expected-improvement BO over a box, with datasize-aware surrogate.

    ``bounds`` is a (low, high) pair of arrays; omit it for the unit
    hypercube.  ``n_mcmc=0`` disables hyper-parameter marginalization
    (the plain-EI ablation).
    """

    def __init__(
        self,
        dim: int,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        n_init: int = DEFAULT_N_INIT,
        min_iterations: int = DEFAULT_MIN_ITERATIONS,
        max_iterations: int = 40,
        ei_threshold: float = DEFAULT_EI_THRESHOLD,
        n_mcmc: int = 8,
        n_candidates: int = 384,
        rng: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError("dim must be positive")
        n_init = min(n_init, max_iterations)  # small budgets shrink the design
        self.dim = dim
        if bounds is None:
            self.low = np.zeros(dim)
            self.high = np.ones(dim)
        else:
            self.low = np.asarray(bounds[0], dtype=float)
            self.high = np.asarray(bounds[1], dtype=float)
            if self.low.shape != (dim,) or self.high.shape != (dim,):
                raise ValueError("bounds must match dim")
            if np.any(self.high <= self.low):
                raise ValueError("bounds must have positive extent")
        self.n_init = n_init
        self.min_iterations = min_iterations
        self.max_iterations = max_iterations
        self.ei_threshold = ei_threshold
        self.n_mcmc = n_mcmc
        self.n_candidates = n_candidates
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _to_unit(self, points: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(points) - self.low) / (self.high - self.low)

    def _from_unit(self, unit: np.ndarray) -> np.ndarray:
        return self.low + np.asarray(unit, dtype=float) * (self.high - self.low)

    # ------------------------------------------------------------------
    def minimize(
        self,
        evaluate: Callable[[np.ndarray, float], float],
        datasize_gb: float,
        warm_points: np.ndarray | None = None,
        warm_datasizes: np.ndarray | None = None,
        warm_durations: np.ndarray | None = None,
    ) -> BOTrace:
        """Run BO at ``datasize_gb``; warm data seeds the surrogate.

        ``evaluate(point, datasize)`` must return a positive duration.
        Warm observations (possibly at other datasizes — the DAGP
        transfer) count toward the surrogate but not the iteration or
        stop-rule budget.
        """
        trace = BOTrace()
        if warm_points is not None:
            warm_points = np.atleast_2d(np.asarray(warm_points, dtype=float))
            warm_datasizes = np.asarray(warm_datasizes, dtype=float).ravel()
            warm_durations = np.asarray(warm_durations, dtype=float).ravel()
            if not (len(warm_points) == len(warm_datasizes) == len(warm_durations)):
                raise ValueError("warm arrays must have equal length")
            for p, d, y in zip(warm_points, warm_datasizes, warm_durations):
                trace.points.append(np.asarray(p, dtype=float))
                trace.datasizes.append(float(d))
                trace.durations.append(float(y))
        n_warm = trace.n_evaluations

        # Initial design: LHS over the box (skipped when warm data at the
        # target datasize already covers it).
        have_at_ds = sum(1 for d in trace.datasizes if d == datasize_gb)
        n_init = max(0, self.n_init - have_at_ds)
        for unit in latin_hypercube(n_init, self.dim, self.rng) if n_init else []:
            point = self._from_unit(unit)
            duration = float(evaluate(point, datasize_gb))
            trace.points.append(point)
            trace.datasizes.append(float(datasize_gb))
            trace.durations.append(duration)

        iterations = 0
        while trace.n_evaluations - n_warm < self.max_iterations:
            model = DatasizeAwareGP(self.dim, n_mcmc=self.n_mcmc)
            model.fit(
                self._to_unit(np.stack(trace.points)),
                np.array(trace.datasizes),
                np.array(trace.durations),
                rng=self.rng,
            )
            _, best_duration = trace.best(datasize_gb)

            def score(unit_candidates: np.ndarray) -> np.ndarray:
                return model.acquisition(unit_candidates, datasize_gb, best_duration)

            anchors = self._to_unit(np.stack(trace.points))[
                np.argsort(trace.durations)[:3]
            ]
            unit_point, ei = maximize_acquisition(
                score,
                self.dim,
                n_candidates=self.n_candidates,
                anchors=anchors,
                rng=self.rng,
            )
            trace.ei_values.append(float(ei))
            iterations += 1
            if iterations > self.min_iterations and ei < self.ei_threshold:
                trace.stopped_by_ei = True
                break

            point = self._from_unit(unit_point)
            duration = float(evaluate(point, datasize_gb))
            trace.points.append(point)
            trace.datasizes.append(float(datasize_gb))
            trace.durations.append(duration)
        return trace
