"""The BO loop: LHS start points, EI-MCMC iterations, LOCAT's stop rule.

The loop is space-agnostic: it searches an axis-aligned box (the unit
hypercube for raw encoded configurations, or the IICP latent box) and
delegates evaluation to a caller-provided function, so LOCAT, the
ablations, and the BO-based baselines all share it.

Stop condition (paper section 3.4): at least ``min_iterations`` BO
iterations, then stop once the maximal expected improvement drops below
``ei_threshold``.  Because the surrogate models *log* durations, an EI
below 0.1 literally means "under ~10% expected improvement", matching
the paper's "EI drops below 10%" rule.

With ``batch_size=q > 1`` (and a caller-provided ``evaluate_batch``),
each surrogate refit proposes ``q`` points via greedy constant-liar
q-EI and hands them to the caller as one batch — the parallel
evaluation pipeline runs them concurrently.  ``batch_size=1`` follows
the exact serial code path, so seeded serial trajectories are
unchanged.  The liar surrogates are built by *extending* a point-
estimate copy of the iteration's fitted model with the pending lies
(one exact rank-1 Cholesky update per lie, see
:meth:`repro.core.dagp.DatasizeAwareGP.point_estimate_copy`) instead of
refitting a fresh model per pending point.

``surrogate_mode`` selects the engine lifecycle
(:mod:`repro.surrogate`):

* ``"full"`` (default) — one from-scratch :class:`DatasizeAwareGP` fit
  per iteration, cold MCMC chain included.  This is the historic code
  path: the shared RNG is consumed in exactly the same order as before
  the surrogate engine existed, so seeded *serial* (``batch_size=1``)
  trajectories are preserved bit for bit.  Batched runs stay seeded-
  deterministic, but their liar surrogates now go through the
  incremental machinery, so a ``batch_size>1`` trajectory can differ
  from the pre-engine code at floating-point round-off level.
* ``"incremental"`` — one persistent surrogate for the whole loop: each
  iteration appends the new observations via exact rank-k Cholesky
  updates and warm-starts the hyper-parameter chain from the previous
  iteration's final state (slashed burn-in, periodic refresh).  Per-
  iteration surrogate cost drops from O(n^3 x MCMC steps) to O(n^2)
  amortized; the trajectory is statistically equivalent but not
  RNG-identical to ``"full"``.

``surrogate_backend`` independently selects the GP implementation
underneath (:mod:`repro.surrogate.policy`): ``"exact"`` (default —
bit-for-bit the single-backend engine), ``"windowed"`` / ``"sparse"``
(bounded per-decision cost for long histories), or ``"auto"``
(policy-resolved by history size).  A tuning session's few dozen
evaluations stay below any sensible policy threshold, so ``"auto"``
behaves exactly like ``"exact"`` here; the setting matters for
long-lived service tenants whose warm histories reach thousands of
rows.

Warm observations may carry a *fidelity* (``warm_fidelities``): rows at
fidelity 0 are the caller's own observations, rows at fidelity > 0 are
low-fidelity prior data transplanted from another application (see
:mod:`repro.transfer`).  Donor rows inform the surrogate — the DAGP
gains a fidelity input column — but are quarantined from every decision
that must reflect the target application alone: the EI incumbent, the
"covered at this datasize" checks, the constant-liar lie, and the
returned :meth:`BOTrace.best` all consider fidelity-0 rows only.
Omitting ``warm_fidelities`` (or passing zeros) is bit-for-bit the
pre-transfer loop.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bo.acquisition import constant_liar
from repro.bo.lhs import latin_hypercube
from repro.bo.optimize import maximize_acquisition, propose_batch
from repro.core.dagp import DatasizeAwareGP
from repro.core.datasize import normalize_datasize
from repro.stats.sampling import ensure_rng
from repro.surrogate.policy import BackendPolicy, validate_backend

#: Paper defaults (section 3.4).
DEFAULT_N_INIT = 3
DEFAULT_MIN_ITERATIONS = 10
DEFAULT_EI_THRESHOLD = 0.1


@dataclass
class BOTrace:
    """Everything the BO loop observed, in evaluation order.

    ``fidelities`` parallels ``durations``: 0.0 for the caller's own
    observations, > 0 for low-fidelity donor rows seeded via
    ``warm_fidelities`` (an empty list means all rows are fidelity 0 —
    traces built before the transfer extension stay valid).
    """

    points: list[np.ndarray] = field(default_factory=list)
    datasizes: list[float] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    fidelities: list[float] = field(default_factory=list)
    ei_values: list[float] = field(default_factory=list)
    stopped_by_ei: bool = False

    @property
    def n_evaluations(self) -> int:
        return len(self.durations)

    def fidelity_of(self, index: int) -> float:
        """Fidelity of one row (0.0 when the trace carries no fidelities)."""
        return self.fidelities[index] if index < len(self.fidelities) else 0.0

    def best(self, datasize_gb: float | None = None) -> tuple[np.ndarray, float]:
        """Best own (point, duration); optionally restricted to one datasize.

        Only fidelity-0 rows compete: a donor application's duration is
        not comparable to the target's and must never anchor the EI
        incumbent.  Raises when no own evaluation matches — silently
        widening to all datasizes would let a cheaper datasize's
        duration masquerade as the EI incumbent and trigger a spurious
        early stop (adaptation sessions warm-start from other sizes).
        """
        if not self.durations:
            raise RuntimeError("no evaluations recorded")
        indices = [i for i in range(len(self.durations)) if self.fidelity_of(i) == 0.0]
        if not indices:
            raise RuntimeError("no own (fidelity-0) evaluations recorded")
        if datasize_gb is not None:
            datasize_gb = normalize_datasize(datasize_gb)
            indices = [i for i in indices if self.datasizes[i] == datasize_gb]
            if not indices:
                raise RuntimeError(
                    f"no evaluations recorded at datasize {datasize_gb} GB "
                    f"(observed sizes: {sorted(set(self.datasizes))})"
                )
        best_i = min(indices, key=lambda i: self.durations[i])
        return self.points[best_i], self.durations[best_i]


class BOLoop:
    """Expected-improvement BO over a box, with datasize-aware surrogate.

    ``bounds`` is a (low, high) pair of arrays; omit it for the unit
    hypercube.  ``n_mcmc=0`` disables hyper-parameter marginalization
    (the plain-EI ablation).
    """

    def __init__(
        self,
        dim: int,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        n_init: int = DEFAULT_N_INIT,
        min_iterations: int = DEFAULT_MIN_ITERATIONS,
        max_iterations: int = 40,
        ei_threshold: float = DEFAULT_EI_THRESHOLD,
        n_mcmc: int = 8,
        n_candidates: int = 384,
        batch_size: int = 1,
        liar_strategy: str = "min",
        surrogate_mode: str = "full",
        surrogate_backend: str = "exact",
        backend_policy: BackendPolicy | None = None,
        rng: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError("dim must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if surrogate_mode not in ("full", "incremental"):
            raise ValueError("surrogate_mode must be 'full' or 'incremental'")
        validate_backend(surrogate_backend)
        n_init = min(n_init, max_iterations)  # small budgets shrink the design
        self.dim = dim
        if bounds is None:
            self.low = np.zeros(dim)
            self.high = np.ones(dim)
        else:
            self.low = np.asarray(bounds[0], dtype=float)
            self.high = np.asarray(bounds[1], dtype=float)
            if self.low.shape != (dim,) or self.high.shape != (dim,):
                raise ValueError("bounds must match dim")
            if np.any(self.high <= self.low):
                raise ValueError("bounds must have positive extent")
        self.n_init = n_init
        self.min_iterations = min_iterations
        self.max_iterations = max_iterations
        self.ei_threshold = ei_threshold
        self.n_mcmc = n_mcmc
        self.n_candidates = n_candidates
        self.batch_size = batch_size
        self.liar_strategy = liar_strategy
        self.surrogate_mode = surrogate_mode
        self.surrogate_backend = surrogate_backend
        self.backend_policy = backend_policy
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _to_unit(self, points: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(points) - self.low) / (self.high - self.low)

    def _from_unit(self, unit: np.ndarray) -> np.ndarray:
        return self.low + np.asarray(unit, dtype=float) * (self.high - self.low)

    # ------------------------------------------------------------------
    def minimize(
        self,
        evaluate: Callable[[np.ndarray, float], float],
        datasize_gb: float,
        warm_points: np.ndarray | None = None,
        warm_datasizes: np.ndarray | None = None,
        warm_durations: np.ndarray | None = None,
        warm_fidelities: np.ndarray | None = None,
        evaluate_batch: Callable[[np.ndarray, float], np.ndarray] | None = None,
    ) -> BOTrace:
        """Run BO at ``datasize_gb``; warm data seeds the surrogate.

        ``evaluate(point, datasize)`` must return a positive duration.
        Warm observations (possibly at other datasizes — the DAGP
        transfer) count toward the surrogate but not the iteration or
        stop-rule budget.  ``warm_fidelities`` (optional, parallel to
        the warm arrays) marks rows transplanted from a donor
        application with values > 0: those rows inform the surrogate
        only and never the incumbent, the stop rule, or the datasize
        coverage checks.

        ``evaluate_batch(points, datasize)`` must return one duration
        per row of ``points`` and may run the rows concurrently; it is
        only used when ``batch_size > 1`` — the serial path is
        bit-for-bit the same with or without it.
        """
        datasize_gb = normalize_datasize(datasize_gb)
        batched = self.batch_size > 1 and evaluate_batch is not None

        trace = BOTrace()

        def observe(point: np.ndarray, duration: float) -> None:
            trace.points.append(np.asarray(point, dtype=float))
            trace.datasizes.append(datasize_gb)
            trace.durations.append(float(duration))
            trace.fidelities.append(0.0)

        if warm_points is not None:
            warm_points = np.atleast_2d(np.asarray(warm_points, dtype=float))
            warm_datasizes = np.asarray(warm_datasizes, dtype=float).ravel()
            warm_durations = np.asarray(warm_durations, dtype=float).ravel()
            if warm_fidelities is None:
                warm_fidelities = np.zeros(len(warm_points))
            else:
                warm_fidelities = np.asarray(warm_fidelities, dtype=float).ravel()
            if not (
                len(warm_points) == len(warm_datasizes) == len(warm_durations)
                == len(warm_fidelities)
            ):
                raise ValueError("warm arrays must have equal length")
            for p, d, y, f in zip(warm_points, warm_datasizes, warm_durations, warm_fidelities):
                trace.points.append(np.asarray(p, dtype=float))
                trace.datasizes.append(normalize_datasize(d))
                trace.durations.append(float(y))
                trace.fidelities.append(float(f))
        n_warm = trace.n_evaluations
        any_transfer = any(f > 0 for f in trace.fidelities)

        # Initial design: LHS over the box (skipped when own warm data at
        # the target datasize already covers it — donor rows don't count).
        # In batch mode the whole design is one concurrent batch.
        have_at_ds = sum(
            1
            for i, d in enumerate(trace.datasizes)
            if d == datasize_gb and trace.fidelity_of(i) == 0.0
        )
        n_init = max(0, self.n_init - have_at_ds)
        if n_init:
            init_units = latin_hypercube(n_init, self.dim, self.rng)
            if batched:
                init_points = self._from_unit(init_units)
                durations = np.asarray(evaluate_batch(init_points, datasize_gb), dtype=float)
                for point, duration in zip(init_points, durations, strict=True):
                    observe(point, duration)
            else:
                for unit in init_units:
                    point = self._from_unit(unit)
                    observe(point, float(evaluate(point, datasize_gb)))

        # The EI incumbent must live at the target datasize.  Without an
        # own observation there (warm data entirely at other sizes or
        # entirely from a donor, and a zero-size initial design)
        # re-measure the best warm point at the target instead of letting
        # a cheaper datasize's — or another application's — duration
        # anchor the acquisition.  Donor rows may *nominate* the point
        # (their best config is exactly what transfer should try first)
        # but the duration used is a fresh own measurement.
        own_at_ds = any(
            d == datasize_gb and trace.fidelity_of(i) == 0.0
            for i, d in enumerate(trace.datasizes)
        )
        if trace.n_evaluations and not own_at_ds:
            own = [i for i in range(trace.n_evaluations) if trace.fidelity_of(i) == 0.0]
            candidates = own if own else list(range(trace.n_evaluations))
            best_warm = trace.points[min(candidates, key=lambda i: trace.durations[i])]
            observe(best_warm, float(evaluate(best_warm, datasize_gb)))

        iterations = 0
        incremental = self.surrogate_mode == "incremental"
        model: DatasizeAwareGP | None = None
        n_modeled = 0
        while trace.n_evaluations - n_warm < self.max_iterations:
            unit_points = self._to_unit(np.stack(trace.points))
            if model is None or not incremental:
                model = DatasizeAwareGP(
                    self.dim,
                    n_mcmc=self.n_mcmc,
                    backend=self.surrogate_backend,
                    **(
                        {"backend_policy": self.backend_policy}
                        if self.backend_policy is not None
                        else {}
                    ),
                )
                model.fit(
                    unit_points,
                    np.array(trace.datasizes),
                    np.array(trace.durations),
                    rng=self.rng,
                    fidelities=np.array(trace.fidelities) if any_transfer else None,
                )
            elif trace.n_evaluations > n_modeled:
                # New observations are always the caller's own (fidelity
                # 0); the engine appends them with exact rank-k updates
                # and a warm-started hyper-parameter chain.
                model.extend(
                    unit_points[n_modeled:],
                    np.array(trace.datasizes[n_modeled:]),
                    np.array(trace.durations[n_modeled:]),
                    rng=self.rng,
                )
            n_modeled = trace.n_evaluations
            _, best_duration = trace.best(datasize_gb)

            def score(unit_candidates: np.ndarray) -> np.ndarray:
                return model.acquisition(unit_candidates, datasize_gb, best_duration)

            anchors = unit_points[np.argsort(trace.durations)[:3]]
            if batched:
                remaining = self.max_iterations - (trace.n_evaluations - n_warm)
                q = min(self.batch_size, remaining)
                unit_batch, eis = propose_batch(
                    self._liar_score_factory(
                        trace, score, datasize_gb, best_duration, model
                    ),
                    self.dim,
                    q,
                    n_candidates=self.n_candidates,
                    anchors=anchors,
                    rng=self.rng,
                )
                ei = float(eis[0])  # the exact single-point EI maximum
            else:
                unit_point, ei = maximize_acquisition(
                    score,
                    self.dim,
                    n_candidates=self.n_candidates,
                    anchors=anchors,
                    rng=self.rng,
                )
            trace.ei_values.append(float(ei))
            iterations += 1
            if iterations >= self.min_iterations and ei < self.ei_threshold:
                trace.stopped_by_ei = True
                break

            if batched:
                iterations += q - 1  # every proposal of the batch counts
                points = self._from_unit(unit_batch)
                durations = np.asarray(evaluate_batch(points, datasize_gb), dtype=float)
                for point, duration in zip(points, durations, strict=True):
                    observe(point, duration)
            else:
                point = self._from_unit(unit_point)
                observe(point, float(evaluate(point, datasize_gb)))
        return trace

    def _liar_score_factory(
        self,
        trace: BOTrace,
        score: Callable[[np.ndarray], np.ndarray],
        datasize_gb: float,
        best_duration: float,
        model: DatasizeAwareGP,
    ) -> Callable[[list[np.ndarray]], Callable[[np.ndarray], np.ndarray]]:
        """Constant-liar surrogates for greedy q-EI proposals.

        The first point of a batch is scored by the real EI-MCMC model;
        each later point sees a point-estimate surrogate where the
        pending proposals are pretended to have returned the incumbent
        duration (CL-min), which collapses EI around them and pushes the
        batch apart.

        The liar surrogate is a cheap point-estimate copy of the
        iteration's fitted ``model``, *extended* with each pending lie —
        an exact rank-1 Cholesky update per lie — rather than a
        from-scratch refit of all n observations per pending point.
        Greedy q-EI grows ``pending`` monotonically within a batch, so
        one copy serves the whole round.
        """
        # The lie is computed over the *own* durations observed at the
        # target datasize (donor rows are another application's scale):
        # "min" equals the incumbent (CL-min), while "mean" and "max"
        # genuinely differ as milder/pessimistic variants.
        at_target = [
            duration
            for i, (duration, ds) in enumerate(zip(trace.durations, trace.datasizes))
            if ds == datasize_gb and trace.fidelity_of(i) == 0.0
        ]
        lie = constant_liar(np.asarray(at_target), self.liar_strategy)
        state: dict = {"model": None, "applied": 0}

        def score_for(pending: list[np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
            if not pending:
                return score
            if state["model"] is None or state["applied"] > len(pending):
                state["model"] = model.point_estimate_copy()
                state["applied"] = 0
            liar_model: DatasizeAwareGP = state["model"]
            new = pending[state["applied"] :]
            if new:
                liar_model.extend(
                    np.stack(new),
                    np.full(len(new), datasize_gb),
                    np.full(len(new), lie),
                )
                state["applied"] = len(pending)

            def liar_score(unit_candidates: np.ndarray) -> np.ndarray:
                return liar_model.acquisition(unit_candidates, datasize_gb, best_duration)

            return liar_score

        return score_for
