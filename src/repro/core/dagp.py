"""Datasize-Aware Gaussian Process (paper section 3.4).

DAGP models execution time as ``t = f(conf, ds)`` (equation (7)): the GP
input is the tuned representation of the configuration (raw encoded
parameters or IICP latents) concatenated with a normalized datasize
coordinate.  Because datasize is part of the input, observations at one
datasize inform predictions at another — the property that lets LOCAT
avoid re-tuning when the input data grows.

Execution times are modelled in log space: the simulator's (and real
Spark's) response surface is multiplicative (penalties compound), and a
log-space GP is far better calibrated on such targets.

Cross-application transfer extends the same idea one axis further: when
``fit`` receives per-observation *fidelities*, the GP input gains a
fidelity coordinate (0 for the target application's own observations, 1
for observations transplanted from a donor tenant) and donor rows get
inflated observation noise.  Distance along the fidelity axis lets the
kernel absorb the systematic bias between the two applications exactly
as the datasize coordinate absorbs size effects, while the extra noise
keeps donor rows advisory — predictions and acquisition always query at
fidelity 0, so the target's own observations dominate wherever they
exist.  With no fidelities (or all zeros) the model is bit-for-bit the
pre-transfer DAGP.
"""

from __future__ import annotations

import numpy as np

from repro.bo.acquisition import expected_improvement
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel
from repro.bo.mcmc import slice_sample_hyperparameters
from repro.stats.sampling import ensure_rng

#: Datasize normalization reference: 1 TB, the largest size the paper uses.
DATASIZE_REFERENCE_GB = 1024.0

#: Extra observation-noise variance (standardized log-duration units) a
#: fidelity-1 (donor) row carries.  Standardized targets have unit
#: variance, so 0.5 makes a donor observation worth roughly "one soft
#: hint": enough to shape the prior where the target has no data, never
#: enough to outvote a real observation nearby.
TRANSFER_NOISE_VARIANCE = 0.5


def datasize_coordinate(datasize_gb: float | np.ndarray) -> np.ndarray:
    """Map datasize in GB to a [0, ~1] GP input coordinate (linear in TB).

    This is the surrogate's *feature scaling*, not datasize identity —
    histories are keyed by :func:`repro.core.datasize.normalize_datasize`.
    """
    return np.asarray(datasize_gb, dtype=float) / DATASIZE_REFERENCE_GB


class DatasizeAwareGP:
    """GP over (configuration representation, datasize) -> log time.

    ``n_mcmc`` controls the EI-MCMC marginalization: acquisition values
    are averaged over that many posterior hyper-parameter samples (0
    disables marginalization and uses the current point estimate).
    """

    def __init__(
        self,
        config_dim: int,
        n_mcmc: int = 8,
        noise_variance: float = 1e-3,
        transfer_noise_variance: float = TRANSFER_NOISE_VARIANCE,
    ):
        if config_dim <= 0:
            raise ValueError("config_dim must be positive")
        if transfer_noise_variance < 0:
            raise ValueError("transfer_noise_variance must be non-negative")
        self.config_dim = config_dim
        self.n_mcmc = n_mcmc
        self.noise_variance = float(noise_variance)
        self.transfer_noise_variance = float(transfer_noise_variance)
        kernel = Matern52Kernel(dim=config_dim + 1, lengthscale=0.5)
        self.gp = GaussianProcess(kernel, noise_variance=noise_variance)
        self._x: np.ndarray | None = None
        self._log_t: np.ndarray | None = None
        self._theta_samples: list[np.ndarray] = []
        self._models: list[GaussianProcess] = []
        #: True when the fitted inputs carry the transfer fidelity column.
        self._with_fidelity = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @staticmethod
    def _join(config_points: np.ndarray, datasizes_gb: np.ndarray) -> np.ndarray:
        config_points = np.atleast_2d(np.asarray(config_points, dtype=float))
        ds = datasize_coordinate(np.asarray(datasizes_gb, dtype=float).ravel())
        if config_points.shape[0] != ds.shape[0]:
            raise ValueError("config_points and datasizes must have equal length")
        return np.hstack([config_points, ds[:, None]])

    def fit(
        self,
        config_points: np.ndarray,
        datasizes_gb: np.ndarray,
        durations_s: np.ndarray,
        rng: int | np.random.Generator | None = None,
        fidelities: np.ndarray | None = None,
    ) -> "DatasizeAwareGP":
        """Fit on X_E = {conf, ds} with targets log(t) (equations (8)-(10)).

        ``fidelities`` (optional, one value per observation, 0 = the
        target application's own data, 1 = transplanted donor data)
        switches on the transfer extension: the GP input gains a
        fidelity coordinate and each row's observation noise is
        inflated by ``transfer_noise_variance * fidelity``.  ``None``
        or all-zero fidelities reproduce the plain DAGP exactly.
        """
        durations = np.asarray(durations_s, dtype=float).ravel()
        if np.any(durations <= 0):
            raise ValueError("durations must be positive")
        x = self._join(config_points, datasizes_gb)
        if x.shape[1] != self.config_dim + 1:
            raise ValueError(f"expected config dim {self.config_dim}, got {x.shape[1] - 1}")

        extra_noise = None
        if fidelities is not None:
            fidelities = np.asarray(fidelities, dtype=float).ravel()
            if fidelities.shape[0] != x.shape[0]:
                raise ValueError("fidelities must have one value per observation")
            if np.any(fidelities < 0):
                raise ValueError("fidelities must be non-negative")
        with_fidelity = fidelities is not None and bool(np.any(fidelities > 0))
        if with_fidelity != self._with_fidelity:
            # (Re)build the kernel at the right input dimension; fidelity
            # adds one coordinate next to the datasize column.
            dim = self.config_dim + (2 if with_fidelity else 1)
            self.gp = GaussianProcess(
                Matern52Kernel(dim=dim, lengthscale=0.5), noise_variance=self.noise_variance
            )
            self._with_fidelity = with_fidelity
        if with_fidelity:
            x = np.hstack([x, fidelities[:, None]])
            extra_noise = self.transfer_noise_variance * fidelities

        self._x = x
        self._log_t = np.log(durations)
        self.gp.fit(x, self._log_t, extra_noise=extra_noise)
        if self.n_mcmc > 0 and x.shape[0] >= 4:
            self._theta_samples = slice_sample_hyperparameters(
                self.gp, n_samples=self.n_mcmc, rng=ensure_rng(rng)
            )
            # Materialize the fitted per-sample models once; acquisition
            # is called hundreds of times per BO iteration.
            self._models = [self.gp.clone_with_theta(t) for t in self._theta_samples]
        else:
            self._theta_samples = []
            self._models = []
        return self

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        config_points: np.ndarray,
        datasize_gb: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std of log execution time at one datasize."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        config_points = np.atleast_2d(np.asarray(config_points, dtype=float))
        ds = np.full(config_points.shape[0], float(datasize_gb))
        x = self._join(config_points, ds)
        if self._with_fidelity:
            # Queries are always about the target application itself.
            x = np.hstack([x, np.zeros((x.shape[0], 1))])
        return self.gp.predict(x)

    def predict_duration(self, config_points: np.ndarray, datasize_gb: float) -> np.ndarray:
        """Posterior median execution time in seconds."""
        mean, _ = self.predict(config_points, datasize_gb)
        return np.exp(mean)

    # ------------------------------------------------------------------
    # EI-MCMC acquisition
    # ------------------------------------------------------------------
    def acquisition(
        self,
        config_points: np.ndarray,
        datasize_gb: float,
        best_duration_s: float,
    ) -> np.ndarray:
        """EI (to maximize) marginalized over hyper-parameter samples.

        ``best_duration_s`` is the incumbent at the *target datasize*;
        EI is computed on log durations for scale robustness.
        """
        if not self.is_fitted:
            raise RuntimeError("acquisition() called before fit()")
        config_points = np.atleast_2d(np.asarray(config_points, dtype=float))
        ds = np.full(config_points.shape[0], float(datasize_gb))
        x = self._join(config_points, ds)
        if self._with_fidelity:
            x = np.hstack([x, np.zeros((x.shape[0], 1))])  # query at own fidelity
        best_log = float(np.log(max(best_duration_s, 1e-9)))

        if not self._models:
            mean, std = self.gp.predict(x)
            return expected_improvement(mean, std, best_log)

        total = np.zeros(x.shape[0])
        for model in self._models:
            mean, std = model.predict(x)
            total += expected_improvement(mean, std, best_log)
        return total / len(self._models)
