"""Datasize-Aware Gaussian Process (paper section 3.4).

DAGP models execution time as ``t = f(conf, ds)`` (equation (7)): the GP
input is the tuned representation of the configuration (raw encoded
parameters or IICP latents) concatenated with a normalized datasize
coordinate.  Because datasize is part of the input, observations at one
datasize inform predictions at another — the property that lets LOCAT
avoid re-tuning when the input data grows.

Execution times are modelled in log space: the simulator's (and real
Spark's) response surface is multiplicative (penalties compound), and a
log-space GP is far better calibrated on such targets.

Cross-application transfer extends the same idea one axis further: when
``fit`` receives per-observation *fidelities*, the GP input gains a
fidelity coordinate (0 for the target application's own observations, 1
for observations transplanted from a donor tenant) and donor rows get
inflated observation noise.  Distance along the fidelity axis lets the
kernel absorb the systematic bias between the two applications exactly
as the datasize coordinate absorbs size effects, while the extra noise
keeps donor rows advisory — predictions and acquisition always query at
fidelity 0, so the target's own observations dominate wherever they
exist.  With no fidelities (or all zeros) the model is bit-for-bit the
pre-transfer DAGP.

The class implements the surrogate-engine lifecycle
(:class:`repro.surrogate.protocol.Surrogate`):

* ``fit`` trains from scratch — full factorization, a cold slice-
  sampling chain, and one :class:`~repro.surrogate.stack.ModelStack`
  holding the ``n_mcmc`` per-sample ``(chol, alpha)`` states.
* ``extend`` appends observations incrementally: the base GP and every
  stacked model grow by an exact rank-k Cholesky update, and the
  hyper-parameter chain is *warm-started* from its previous final state
  with a slashed burn-in (``MCMC_WARM_BURN_IN`` instead of the cold
  20).  Every ``mcmc_refresh_every``-th extend re-samples; in between,
  the posterior samples are kept and merely extended — the dominant
  O(n^3)-per-theta cost is paid a fraction of the iterations.
* ``acquisition`` evaluates the marginalized EI over all samples in one
  vectorized pass (no per-clone Python loop).
"""

from __future__ import annotations

import numpy as np

from repro.bo.acquisition import expected_improvement
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52Kernel
from repro.bo.mcmc import slice_sample_chain
from repro.stats.sampling import ensure_rng
from repro.surrogate.policy import BackendPolicy, validate_backend
from repro.surrogate.sparse import SparseGP
from repro.surrogate.stack import ModelStack
from repro.surrogate.windowed import WindowedGP

#: Datasize normalization reference: 1 TB, the largest size the paper uses.
DATASIZE_REFERENCE_GB = 1024.0

#: Extra observation-noise variance (standardized log-duration units) a
#: fidelity-1 (donor) row carries.  Standardized targets have unit
#: variance, so 0.5 makes a donor observation worth roughly "one soft
#: hint": enough to shape the prior where the target has no data, never
#: enough to outvote a real observation nearby.
TRANSFER_NOISE_VARIANCE = 0.5

#: Burn-in of a warm-started hyper-parameter chain.  A chain resumed
#: from the previous iteration's final state starts near the posterior
#: mode of an almost-identical training set, so a handful of updates
#: decorrelates it — against the cold default of 20.
MCMC_WARM_BURN_IN = 4

#: How many ``extend`` calls may reuse the current hyper-parameter
#: samples before the chain is advanced again.  One new observation
#: barely moves the hyper-parameter posterior; re-sampling every call
#: would re-factorize ``n_mcmc`` models per iteration for no
#: statistical gain.
MCMC_REFRESH_EVERY = 4


def datasize_coordinate(datasize_gb: float | np.ndarray) -> np.ndarray:
    """Map datasize in GB to a [0, ~1] GP input coordinate (linear in TB).

    This is the surrogate's *feature scaling*, not datasize identity —
    histories are keyed by :func:`repro.core.datasize.normalize_datasize`.
    """
    return np.asarray(datasize_gb, dtype=float) / DATASIZE_REFERENCE_GB


class DatasizeAwareGP:
    """GP over (configuration representation, datasize) -> log time.

    ``n_mcmc`` controls the EI-MCMC marginalization: acquisition values
    are averaged over that many posterior hyper-parameter samples (0
    disables marginalization and uses the current point estimate).

    ``backend`` selects the GP implementation underneath: ``"exact"``
    (the default — bit-for-bit the pre-backend engine), ``"windowed"``
    (:class:`~repro.surrogate.windowed.WindowedGP`, O(W^2) per
    decision), ``"sparse"``
    (:class:`~repro.surrogate.sparse.SparseGP`, O(m^2), point-estimate
    EI only), or ``"auto"``, which resolves through ``backend_policy``
    by history size and refits into the next backend when a threshold
    is crossed.
    """

    def __init__(
        self,
        config_dim: int,
        n_mcmc: int = 8,
        noise_variance: float = 1e-3,
        transfer_noise_variance: float = TRANSFER_NOISE_VARIANCE,
        mcmc_warm_burn_in: int = MCMC_WARM_BURN_IN,
        mcmc_refresh_every: int = MCMC_REFRESH_EVERY,
        backend: str = "exact",
        backend_policy: BackendPolicy | None = None,
    ):
        if config_dim <= 0:
            raise ValueError("config_dim must be positive")
        if transfer_noise_variance < 0:
            raise ValueError("transfer_noise_variance must be non-negative")
        if mcmc_refresh_every < 1:
            raise ValueError("mcmc_refresh_every must be at least 1")
        self.config_dim = config_dim
        self.n_mcmc = n_mcmc
        self.noise_variance = float(noise_variance)
        self.transfer_noise_variance = float(transfer_noise_variance)
        self.mcmc_warm_burn_in = int(mcmc_warm_burn_in)
        self.mcmc_refresh_every = int(mcmc_refresh_every)
        self.backend = validate_backend(backend)
        self.backend_policy = backend_policy if backend_policy is not None else BackendPolicy()
        #: The concrete backend currently in force ("auto" resolves at
        #: fit/extend time; starts exact, where every history starts).
        self._active_backend = "exact" if self.backend == "auto" else self.backend
        kernel = Matern52Kernel(dim=config_dim + 1, lengthscale=0.5)
        self.gp = self._new_gp(kernel, noise_variance)
        self._x: np.ndarray | None = None
        self._log_t: np.ndarray | None = None
        self._datasizes_gb: np.ndarray | None = None
        self._fidelities: np.ndarray | None = None
        self._theta_samples: list[np.ndarray] = []
        self._stack: ModelStack | None = None
        #: Final state of the last hyper-parameter chain (warm-start seed).
        self._mcmc_state: np.ndarray | None = None
        self._extends_since_mcmc = 0
        #: True when the fitted inputs carry the transfer fidelity column.
        self._with_fidelity = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @staticmethod
    def _join(config_points: np.ndarray, datasizes_gb: np.ndarray) -> np.ndarray:
        config_points = np.atleast_2d(np.asarray(config_points, dtype=float))
        ds = datasize_coordinate(np.asarray(datasizes_gb, dtype=float).ravel())
        if config_points.shape[0] != ds.shape[0]:
            raise ValueError("config_points and datasizes must have equal length")
        return np.hstack([config_points, ds[:, None]])

    def _new_gp(self, kernel, noise_variance: float):
        """Build the GP implementation for the active backend."""
        if self._active_backend == "windowed":
            policy = self.backend_policy
            return WindowedGP(
                kernel,
                noise_variance=noise_variance,
                window=policy.window,
                coreset=policy.coreset,
            )
        if self._active_backend == "sparse":
            return SparseGP(
                kernel,
                noise_variance=noise_variance,
                n_inducing=self.backend_policy.n_inducing,
            )
        return GaussianProcess(kernel, noise_variance=noise_variance)

    @property
    def active_backend(self) -> str:
        """The concrete backend in force ("auto" resolved, else as set)."""
        return self._active_backend

    def _rebuild_kernel(self, with_fidelity: bool) -> None:
        """Swap the fidelity column in or out, carrying learned theta over.

        The kernel is rebuilt at the new input dimension, but the signal
        variance, the shared (config + datasize) lengthscales, and the
        observation noise keep their current — possibly learned — values
        instead of snapping back to the constructor defaults.  Only the
        fidelity axis itself starts at the default lengthscale.
        """
        old_kernel = self.gp.kernel
        dim = self.config_dim + (2 if with_fidelity else 1)
        kernel = Matern52Kernel(dim=dim, lengthscale=0.5)
        kernel.signal_variance = old_kernel.signal_variance
        shared = min(self.config_dim + 1, old_kernel.dim, dim)
        kernel.lengthscales[:shared] = old_kernel.lengthscales[:shared]
        self.gp = self._new_gp(kernel, self.gp.noise_variance)
        self._with_fidelity = with_fidelity

    @staticmethod
    def _validate_fidelities(fidelities, n_rows: int) -> np.ndarray | None:
        if fidelities is None:
            return None
        fidelities = np.asarray(fidelities, dtype=float).ravel()
        if fidelities.shape[0] != n_rows:
            raise ValueError("fidelities must have one value per observation")
        if np.any(fidelities < 0):
            raise ValueError("fidelities must be non-negative")
        return fidelities

    def _sample_hyperparameters(
        self, rng: int | np.random.Generator | None, warm: bool, fast: bool = False
    ) -> None:
        """(Re-)sample the hyper-parameter posterior and rebuild the stack.

        ``warm=True`` resumes the chain from its previous final state
        with the reduced burn-in; otherwise the chain starts cold from
        the GP's current hyper-parameters with the full default burn-in.
        ``fast=True`` builds the stack with precision matrices (the
        incremental path's batched-matmul acquisition); ``False`` keeps
        the exact mode whose floats match the historic per-clone loop.
        """
        warm = warm and self._mcmc_state is not None
        self._theta_samples, self._mcmc_state = slice_sample_chain(
            self.gp,
            n_samples=self.n_mcmc,
            burn_in=self.mcmc_warm_burn_in if warm else 20,
            rng=ensure_rng(rng),
            initial_theta=self._mcmc_state if warm else None,
        )
        self._stack = ModelStack.from_gp(self.gp, self._theta_samples, fast=fast)
        self._extends_since_mcmc = 0

    def fit(
        self,
        config_points: np.ndarray,
        datasizes_gb: np.ndarray,
        durations_s: np.ndarray,
        rng: int | np.random.Generator | None = None,
        fidelities: np.ndarray | None = None,
    ) -> "DatasizeAwareGP":
        """Fit on X_E = {conf, ds} with targets log(t) (equations (8)-(10)).

        ``fidelities`` (optional, one value per observation, 0 = the
        target application's own data, 1 = transplanted donor data)
        switches on the transfer extension: the GP input gains a
        fidelity coordinate and each row's observation noise is
        inflated by ``transfer_noise_variance * fidelity``.  ``None``
        or all-zero fidelities reproduce the plain DAGP exactly.
        """
        durations = np.asarray(durations_s, dtype=float).ravel()
        if np.any(durations <= 0):
            raise ValueError("durations must be positive")
        x = self._join(config_points, datasizes_gb)
        if x.shape[1] != self.config_dim + 1:
            raise ValueError(f"expected config dim {self.config_dim}, got {x.shape[1] - 1}")

        resolved = (
            self.backend_policy.select(x.shape[0])
            if self.backend == "auto"
            else self.backend
        )
        if resolved != self._active_backend:
            self._active_backend = resolved
            self.gp = self._new_gp(self.gp.kernel, self.gp.noise_variance)

        fidelities = self._validate_fidelities(fidelities, x.shape[0])
        with_fidelity = fidelities is not None and bool(np.any(fidelities > 0))
        if with_fidelity != self._with_fidelity:
            self._rebuild_kernel(with_fidelity)
        extra_noise = None
        if with_fidelity:
            x = np.hstack([x, fidelities[:, None]])
            extra_noise = self.transfer_noise_variance * fidelities

        self._x = x
        self._log_t = np.log(durations)
        self._datasizes_gb = np.asarray(datasizes_gb, dtype=float).ravel().copy()
        self._fidelities = (
            fidelities.copy() if fidelities is not None else np.zeros(x.shape[0])
        )
        self.gp.fit(x, self._log_t, extra_noise=extra_noise)
        self._mcmc_state = None
        if (
            self.n_mcmc > 0
            and x.shape[0] >= 4
            and getattr(self.gp, "supports_mcmc", True)
        ):
            self._sample_hyperparameters(rng, warm=False)
        else:
            self._theta_samples = []
            self._stack = None
            self._extends_since_mcmc = 0
        return self

    def extend(
        self,
        config_points: np.ndarray,
        datasizes_gb: np.ndarray,
        durations_s: np.ndarray,
        rng: int | np.random.Generator | None = None,
        fidelities: np.ndarray | None = None,
    ) -> "DatasizeAwareGP":
        """Append observations incrementally (exact rank-k updates).

        The base GP and every stacked per-sample model grow by the block
        Cholesky update — O(n^2 k) per model instead of a refit — and
        the hyper-parameter chain is advanced warm (previous final
        state, reduced burn-in) every ``mcmc_refresh_every``-th call;
        in between, the existing posterior samples are reused.

        New rows default to fidelity 0 (the caller's own observations).
        Toggling the fidelity column on or off relative to the fitted
        state cannot be expressed as a rank-k update (the input
        dimensionality changes), so that rare case falls back to a full
        refit over the concatenated data.
        """
        if not self.is_fitted:
            return self.fit(
                config_points, datasizes_gb, durations_s, rng=rng, fidelities=fidelities
            )
        durations = np.asarray(durations_s, dtype=float).ravel()
        if np.any(durations <= 0):
            raise ValueError("durations must be positive")
        x = self._join(config_points, datasizes_gb)
        if x.shape[1] != self.config_dim + 1:
            raise ValueError(f"expected config dim {self.config_dim}, got {x.shape[1] - 1}")
        fidelities = self._validate_fidelities(fidelities, x.shape[0])
        new_fid = fidelities if fidelities is not None else np.zeros(x.shape[0])

        crosses_backend_threshold = (
            self.backend == "auto"
            and self.backend_policy.select(self.n_observations + x.shape[0])
            != self._active_backend
        )
        if crosses_backend_threshold or (
            bool(np.any(new_fid > 0)) and not self._with_fidelity
        ):
            # Dimensionality change (fidelity column toggles on) or a
            # policy threshold crossing (the new backend needs its own
            # data structures): replay everything through fit().  For a
            # threshold crossing this is the one-time refit the policy
            # amortizes — the new backend's fit is itself bounded.
            all_configs = np.vstack([self._x[:, : self.config_dim], x[:, : self.config_dim]])
            return self.fit(
                all_configs,
                np.concatenate([self._datasizes_gb, np.asarray(datasizes_gb, dtype=float).ravel()]),
                np.concatenate([np.exp(self._log_t), durations]),
                rng=rng,
                fidelities=np.concatenate([self._fidelities, new_fid]),
            )

        extra_noise = None
        if self._with_fidelity:
            x = np.hstack([x, new_fid[:, None]])
            extra_noise = self.transfer_noise_variance * new_fid

        self.gp.extend(x, np.log(durations), extra_noise=extra_noise)
        # A windowed backend may have expired rows while absorbing the
        # new ones; collect the removals so the stacked models can
        # mirror them instead of refitting.
        removed: list[int] = []
        if hasattr(self.gp, "pop_removed_indices"):
            removed = self.gp.pop_removed_indices()
        self._x = np.vstack([self._x, x])
        self._log_t = np.concatenate([self._log_t, np.log(durations)])
        self._datasizes_gb = np.concatenate(
            [self._datasizes_gb, np.asarray(datasizes_gb, dtype=float).ravel()]
        )
        self._fidelities = np.concatenate([self._fidelities, new_fid])

        if (
            self.n_mcmc > 0
            and self._x.shape[0] >= 4
            and getattr(self.gp, "supports_mcmc", True)
        ):
            self._extends_since_mcmc += 1
            # The first extend converts an exact (fit-built) stack to the
            # fast precision-matrix form alongside its warm chain
            # refresh; afterwards the chain is only advanced every
            # ``mcmc_refresh_every``-th call and the stacked models are
            # extended in place in between.  The shape guard catches the
            # rare case where the windowed backend refit internally (a
            # batch wider than its window): the stack no longer mirrors
            # the active set and must be rebuilt.
            stack_in_sync = (
                self._stack is not None
                and self._stack.n_samples - len(removed) + x.shape[0]
                == self.gp.n_samples
            )
            if (
                self._stack is None
                or not self._stack.fast
                or not stack_in_sync
                or self._extends_since_mcmc >= self.mcmc_refresh_every
            ):
                self._sample_hyperparameters(rng, warm=True, fast=True)
            else:
                for index in removed:
                    self._stack.remove_row(index)
                self._stack.extend(
                    x,
                    self.gp.standardized_targets,
                    self.gp.target_mean,
                    self.gp.target_std,
                    extra_noise_new=extra_noise,
                )
        return self

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def point_estimate_copy(self) -> "DatasizeAwareGP":
        """A cheap ``n_mcmc=0`` copy sharing this model's fitted state.

        The copy can be :meth:`extend`-ed freely without touching this
        model (the GP copy rebinds, never mutates, its arrays), which is
        what the constant-liar batch path builds its "pretend"
        surrogates from: one exact rank-1 extend per lie.
        """
        copy = DatasizeAwareGP(
            self.config_dim,
            n_mcmc=0,
            noise_variance=self.noise_variance,
            transfer_noise_variance=self.transfer_noise_variance,
            # Pin the copy to the *resolved* backend: a liar copy's few
            # rank-1 lies must never trigger a policy refit mid-batch.
            backend=self._active_backend,
            backend_policy=self.backend_policy,
        )
        copy.gp = self.gp.shallow_copy()
        copy._x = self._x
        copy._log_t = self._log_t
        copy._datasizes_gb = self._datasizes_gb
        copy._fidelities = self._fidelities
        copy._with_fidelity = self._with_fidelity
        return copy

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _query_inputs(self, config_points: np.ndarray, datasize_gb: float) -> np.ndarray:
        config_points = np.atleast_2d(np.asarray(config_points, dtype=float))
        ds = np.full(config_points.shape[0], float(datasize_gb))
        x = self._join(config_points, ds)
        if self._with_fidelity:
            # Queries are always about the target application itself.
            x = np.hstack([x, np.zeros((x.shape[0], 1))])
        return x

    def predict(
        self,
        config_points: np.ndarray,
        datasize_gb: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std of log execution time at one datasize."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        return self.gp.predict(self._query_inputs(config_points, datasize_gb))

    def predict_duration(self, config_points: np.ndarray, datasize_gb: float) -> np.ndarray:
        """Posterior median execution time in seconds.

        The online drift path consumes :meth:`predict` directly (via
        :meth:`repro.core.locat.LOCAT.predict_log_duration`) and
        standardizes residuals in
        :class:`repro.core.drift.DurationPrediction`, where the
        deploy-time calibration offset and the detector-side std floor
        and clipping live — keep that the single z-score
        implementation.
        """
        mean, _ = self.predict(config_points, datasize_gb)
        return np.exp(mean)

    # ------------------------------------------------------------------
    # EI-MCMC acquisition
    # ------------------------------------------------------------------
    def acquisition(
        self,
        config_points: np.ndarray,
        datasize_gb: float,
        best_duration_s: float,
    ) -> np.ndarray:
        """EI (to maximize) marginalized over hyper-parameter samples.

        ``best_duration_s`` is the incumbent at the *target datasize*;
        EI is computed on log durations for scale robustness.  With
        posterior samples present, all ``n_mcmc`` models are evaluated
        in one vectorized :class:`~repro.surrogate.stack.ModelStack`
        pass.
        """
        if not self.is_fitted:
            raise RuntimeError("acquisition() called before fit()")
        x = self._query_inputs(config_points, datasize_gb)
        best_log = float(np.log(max(best_duration_s, 1e-9)))

        if self._stack is None:
            mean, std = self.gp.predict(x)
            return expected_improvement(mean, std, best_log)
        return self._stack.acquisition(x, best_log)
