"""Parallel batched evaluation of candidate configurations.

The paper's cost model says sample collection dominates optimization
time: every configuration evaluation is a full (or RQA-reduced) run of
the application on the cluster.  A real cluster — and the simulator on a
multi-core box — can execute several candidate configurations at once,
so the batched BO loop (``BOLoop(batch_size=q)``) hands each refit's
``q`` proposals to a :class:`ParallelEvaluator` instead of running them
one at a time.

The surrogate side of a batch is no longer the multiplier it used to
be: the greedy constant-liar construction of those ``q`` proposals now
extends a point-estimate copy of the iteration's surrogate with one
exact rank-1 Cholesky update per lie (see
:meth:`repro.core.dagp.DatasizeAwareGP.point_estimate_copy`), so the
per-batch modelling cost is O(q n^2) instead of q from-scratch O(n^3)
refits — the evaluator's workers, not the liar refits, bound batch
throughput.

Determinism contract:

* ``n_workers=1`` delegates straight to the objective's serial
  ``run``/``run_subset`` path — the shared RNG is consumed in exactly
  the same order as before this module existed, so seeded serial
  trajectories are reproduced bit for bit.
* ``n_workers>1`` draws one child generator per request from the shared
  objective RNG *in submission order* (a single ``spawn`` call), runs
  the requests concurrently, and records the trials in submission
  order.  The resulting history is therefore a pure function of the
  seed and the request list — identical for 2, 4, or 16 workers and
  across repeated runs — only the wall-clock changes.

Failure semantics: the serial path records trials incrementally (as the
objective always has); a concurrent batch is atomic — if any request
raises, no trial of that batch is recorded and the first error
propagates.

Pool lifecycle: the executor is created lazily on the first concurrent
batch and reused for the whole tuning session (per-refit startup would
be pure waste, especially for the process backend).  :meth:`close` is
idempotent and leaves the evaluator usable — a later batch simply
recreates the pool — which is how :meth:`LOCAT.tune` avoids leaking
``n_workers`` threads per tenant between the rare tuning sessions of a
long-lived service.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.datasize import normalize_datasize
from repro.core.objective import SparkSQLObjective, Trial, execute_trial
from repro.sparksim.configspace import Configuration
from repro.sparksim.engine import SparkSQLSimulator
from repro.sparksim.query import Application
from repro.stats.sampling import spawn

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation to perform: a configuration at a datasize.

    ``queries=None`` runs the full application; a tuple of query names
    runs only that subset (the RQA path).
    """

    config: Configuration
    datasize_gb: float
    queries: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "datasize_gb", normalize_datasize(self.datasize_gb))
        if self.queries is not None:
            object.__setattr__(self, "queries", tuple(self.queries))


def _execute_request(
    simulator: SparkSQLSimulator,
    app: Application,
    request: EvalRequest,
    rng: np.random.Generator,
) -> Trial:
    """Top-level so the process backend can pickle it.

    Takes the simulator and application rather than the objective: the
    worker never needs the objective's ever-growing trial history, and
    shipping it per request would make process-backend serialization
    cost grow with the session.
    """
    return execute_trial(
        simulator, app, request.config, request.datasize_gb, request.queries, rng=rng
    )


class ParallelEvaluator:
    """Fans batches of evaluations across a worker pool.

    Wraps one :class:`~repro.core.objective.SparkSQLObjective`; all
    recording still goes through the objective, so ``history`` and
    ``overhead_s`` stay the single source of truth and remain
    append-ordered by submission.

    ``backend="thread"`` shares the simulator across workers (cheap,
    and the right model for evaluations that wait on a cluster);
    ``backend="process"`` ships each request to a worker process, which
    sidesteps the GIL for compute-bound simulation at the cost of
    pickling the simulator per request.
    """

    def __init__(
        self,
        objective: SparkSQLObjective,
        n_workers: int = 1,
        backend: str = "thread",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        self.objective = objective
        self.n_workers = int(n_workers)
        self.backend = backend
        self._pool: Executor | None = None  # created lazily, reused across batches

    # ------------------------------------------------------------------
    # Serial conveniences (identical to calling the objective directly)
    # ------------------------------------------------------------------
    def run(self, config: Configuration, datasize_gb: float) -> Trial:
        return self.objective.run(config, datasize_gb)

    def run_subset(
        self, config: Configuration, datasize_gb: float, queries: list[str] | tuple[str, ...]
    ) -> Trial:
        return self.objective.run_subset(config, datasize_gb, list(queries))

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def _run_serial(self, request: EvalRequest) -> Trial:
        if request.queries is None:
            return self.objective.run(request.config, request.datasize_gb)
        return self.objective.run_subset(request.config, request.datasize_gb, list(request.queries))

    def _get_pool(self) -> Executor:
        """The shared executor, created on first concurrent batch.

        One pool serves the whole tuning session — a session at
        ``batch_size=q`` submits a batch per surrogate refit, and
        (especially for the process backend) paying worker startup per
        refit would be pure waste.
        """
        if self._pool is None:
            if self.backend == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers, thread_name_prefix="eval-worker"
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down. Idempotent; the evaluator remains
        usable (a later batch lazily recreates the pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_batch(self, requests: list[EvalRequest]) -> list[Trial]:
        """Evaluate ``requests`` and record every trial in request order.

        Returns the trials in request order regardless of completion
        order.  With one worker (or one request) this is exactly the
        serial path, shared RNG and all.
        """
        requests = list(requests)
        if not requests:
            return []
        if self.n_workers == 1 or len(requests) == 1:
            return [self._run_serial(r) for r in requests]

        # One child generator per request, drawn in submission order from
        # the shared RNG: the histories are a function of the seed and the
        # request list only, never of worker count or completion order.
        rngs = spawn(self.objective.rng, len(requests))
        pool = self._get_pool()
        simulator, app = self.objective.simulator, self.objective.app
        futures = [
            pool.submit(_execute_request, simulator, app, request, rng)
            for request, rng in zip(requests, rngs)
        ]
        trials = [future.result() for future in futures]
        for trial in trials:
            self.objective.record(trial)
        return trials
