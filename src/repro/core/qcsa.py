"""Query Configuration Sensitivity Analysis (paper section 3.2).

QCSA runs an application ``N_QCSA`` times with varying configurations,
computes each query's coefficient of variation (CV) of execution time
(equation (3)), splits the CV range into three equal-width bands
(equation (4)), and labels queries in the bottom band configuration-
insensitive (CIQ).  Removing CIQs yields the Reduced Query Application
(RQA) whose optimal configuration matches the original application's.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.objective import SparkSQLObjective
from repro.stats.descriptive import coefficient_of_variation
from repro.stats.sampling import ensure_rng

#: The paper's empirically determined sample count (section 5.1, Figure 7).
DEFAULT_N_QCSA = 30


@dataclass(frozen=True)
class QCSAResult:
    """Outcome of a sensitivity analysis.

    ``cvs`` maps query name to CV; ``csq``/``ciq`` partition the query
    names (order preserved from the application); ``threshold`` is the
    CIQ/CSQ boundary (``min + width``, equation (4)).
    """

    cvs: dict[str, float]
    csq: tuple[str, ...]
    ciq: tuple[str, ...]
    threshold: float
    n_samples: int

    @property
    def reduction_ratio(self) -> float:
        """Fraction of queries eliminated."""
        total = len(self.csq) + len(self.ciq)
        return len(self.ciq) / total if total else 0.0


def classify_queries(cvs: Mapping[str, float], n_samples: int = 0) -> QCSAResult:
    """Partition queries by the paper's three-band CV rule.

    The CV range is split into three equal-width bands; queries whose CV
    falls in ``[0, min + width)`` are CIQ, everything else CSQ.  With a
    single query (HiBench apps) the query is always CSQ — an application
    cannot be reduced to nothing.
    """
    if not cvs:
        raise ValueError("cvs must not be empty")
    names = list(cvs)
    if len(names) == 1:
        return QCSAResult(
            cvs=dict(cvs), csq=(names[0],), ciq=(), threshold=0.0, n_samples=n_samples
        )
    values = np.array([cvs[n] for n in names], dtype=float)
    low, high = float(values.min()), float(values.max())
    width = (high - low) / 3.0
    threshold = low + width
    csq = tuple(n for n in names if cvs[n] >= threshold)
    ciq = tuple(n for n in names if cvs[n] < threshold)
    if not csq:  # degenerate: all queries identical; keep everything
        return QCSAResult(dict(cvs), tuple(names), (), threshold, n_samples)
    return QCSAResult(dict(cvs), csq, ciq, threshold, n_samples)


def analyze_samples(samples: Mapping[str, Sequence[float]]) -> QCSAResult:
    """QCSA over an already-collected matrix S = {t_q_ij} (equation (2)).

    ``samples`` maps each query name to its execution times across the
    N_QCSA runs.
    """
    if not samples:
        raise ValueError("samples must not be empty")
    lengths = {len(v) for v in samples.values()}
    if len(lengths) != 1:
        raise ValueError("all queries must have the same number of samples")
    n = lengths.pop()
    if n < 2:
        raise ValueError("QCSA needs at least two runs per query")
    cvs = {name: coefficient_of_variation(times) for name, times in samples.items()}
    return classify_queries(cvs, n_samples=n)


class QCSA:
    """Standalone QCSA driver: collect samples with random configurations.

    Inside the full LOCAT pipeline, the samples come from the first BO
    iterations (section 5.1 note); this driver exists for the paper's
    standalone analyses (Figures 7 and 8) and reuses the same math via
    :func:`analyze_samples`.
    """

    def __init__(self, n_samples: int = DEFAULT_N_QCSA):
        if n_samples < 2:
            raise ValueError("n_samples must be at least 2")
        self.n_samples = n_samples

    def collect(
        self,
        objective: SparkSQLObjective,
        datasize_gb: float,
        rng: int | np.random.Generator | None = None,
    ) -> dict[str, list[float]]:
        """Run the application ``n_samples`` times with random configs.

        Configurations come from a Latin hypercube: space-filling random
        coverage keeps the CV estimates stable at the paper's N=30.
        """
        from repro.bo.lhs import latin_hypercube

        gen = ensure_rng(rng)
        samples: dict[str, list[float]] = {q: [] for q in objective.app.query_names}
        for point in latin_hypercube(self.n_samples, objective.space.dim, gen):
            config = objective.space.decode(point)
            trial = objective.run(config, datasize_gb)
            for query in trial.metrics.queries:
                samples[query.name].append(query.duration_s)
        return samples

    def run(
        self,
        objective: SparkSQLObjective,
        datasize_gb: float,
        rng: int | np.random.Generator | None = None,
    ) -> QCSAResult:
        """Collect samples and classify queries."""
        return analyze_samples(self.collect(objective, datasize_gb, rng))
