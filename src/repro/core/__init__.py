"""LOCAT core: the paper's primary contribution.

* :mod:`repro.core.qcsa` — Query Configuration Sensitivity Analysis,
* :mod:`repro.core.iicp` — Identifying Important Configuration
  Parameters (CPS via Spearman correlation + CPE via Kernel PCA),
* :mod:`repro.core.dagp` — the Datasize-Aware Gaussian Process surrogate,
* :mod:`repro.core.tuner` — the EI-MCMC BO loop with LOCAT's stop rule,
* :mod:`repro.core.locat` — the end-to-end orchestrator,
* :mod:`repro.core.drift` — sequential drift detectors for the online
  controller (:mod:`repro.core.online`).
"""

from repro.core.dagp import DatasizeAwareGP
from repro.core.datasize import normalize_datasize
from repro.core.drift import (
    CusumDetector,
    DriftDetector,
    DurationPrediction,
    PageHinkleyDetector,
    RatioDriftDetector,
    make_detector,
)
from repro.core.iicp import CPEResult, CPSResult, IICP, IICPResult
from repro.core.locat import LOCAT
from repro.core.objective import SparkSQLObjective, Trial
from repro.core.parallel import EvalRequest, ParallelEvaluator
from repro.core.qcsa import QCSA, QCSAResult
from repro.core.result import TuningResult

__all__ = [
    "CPEResult",
    "CPSResult",
    "CusumDetector",
    "DatasizeAwareGP",
    "DriftDetector",
    "DurationPrediction",
    "EvalRequest",
    "IICP",
    "IICPResult",
    "LOCAT",
    "PageHinkleyDetector",
    "ParallelEvaluator",
    "QCSA",
    "QCSAResult",
    "RatioDriftDetector",
    "SparkSQLObjective",
    "Trial",
    "TuningResult",
    "make_detector",
    "normalize_datasize",
]
