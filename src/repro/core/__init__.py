"""LOCAT core: the paper's primary contribution.

* :mod:`repro.core.qcsa` — Query Configuration Sensitivity Analysis,
* :mod:`repro.core.iicp` — Identifying Important Configuration
  Parameters (CPS via Spearman correlation + CPE via Kernel PCA),
* :mod:`repro.core.dagp` — the Datasize-Aware Gaussian Process surrogate,
* :mod:`repro.core.tuner` — the EI-MCMC BO loop with LOCAT's stop rule,
* :mod:`repro.core.locat` — the end-to-end orchestrator.
"""

from repro.core.dagp import DatasizeAwareGP
from repro.core.datasize import normalize_datasize
from repro.core.iicp import CPEResult, CPSResult, IICP, IICPResult
from repro.core.locat import LOCAT
from repro.core.objective import SparkSQLObjective, Trial
from repro.core.parallel import EvalRequest, ParallelEvaluator
from repro.core.qcsa import QCSA, QCSAResult
from repro.core.result import TuningResult

__all__ = [
    "CPEResult",
    "CPSResult",
    "DatasizeAwareGP",
    "EvalRequest",
    "IICP",
    "IICPResult",
    "LOCAT",
    "ParallelEvaluator",
    "QCSA",
    "QCSAResult",
    "SparkSQLObjective",
    "Trial",
    "TuningResult",
    "normalize_datasize",
]
