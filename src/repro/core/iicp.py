"""Identifying Important Configuration Parameters (paper section 3.3).

Two stages over a sample matrix S' = {t_i, conf_i, ds}:

* **CPS** (Configuration Parameter Selection): Spearman correlation of
  each parameter's values against execution time; parameters with
  |SCC| < 0.2 are eliminated (the common poor-correlation boundary).
* **CPE** (Configuration Parameter Extraction): Kernel PCA with a
  Gaussian kernel over the CPS survivors; the resulting components are
  the "new parameters" BO tunes.  Concrete configurations are recovered
  from latent points via the KPCA pre-image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.kpca import KernelPCA
from repro.sparksim.configspace import ConfigSpace, Configuration
from repro.stats.correlation import spearman

#: The paper's empirically determined sample count (section 5.3, Figure 9).
DEFAULT_N_IICP = 20

#: |SCC| below this marks a poorly correlated (unimportant) parameter.
DEFAULT_SCC_THRESHOLD = 0.2


@dataclass(frozen=True)
class CPSResult:
    """Outcome of the Spearman selection step.

    ``scc`` has every parameter's correlation; ``selected`` keeps
    Table-2 order; ``ranked`` sorts by |SCC| descending (Table 3's
    "top-5 important configurations" view).
    """

    scc: dict[str, float]
    selected: tuple[str, ...]
    threshold: float

    @property
    def ranked(self) -> list[str]:
        return sorted(self.scc, key=lambda n: -abs(self.scc[n]))

    def top(self, k: int) -> list[str]:
        return self.ranked[:k]


@dataclass(frozen=True)
class CPEResult:
    """Outcome of the KPCA extraction step."""

    kpca: KernelPCA
    n_components: int
    kernel: str


@dataclass(frozen=True)
class IICPResult:
    """CPS + CPE combined: the latent tuning space and its codecs."""

    cps: CPSResult
    cpe: CPEResult
    space: ConfigSpace
    base_config: Configuration

    @property
    def selected(self) -> tuple[str, ...]:
        return self.cps.selected

    @property
    def n_components(self) -> int:
        return self.cpe.n_components

    def encode(self, config: Configuration) -> np.ndarray:
        """Configuration -> latent vector (CPS subset, then KPCA)."""
        subset = self.space.encode_subset(config, list(self.selected))
        return self.cpe.kpca.transform(subset[None, :])[0]

    def decode(self, latent: np.ndarray) -> Configuration:
        """Latent vector -> concrete configuration (KPCA pre-image).

        Unselected parameters keep their ``base_config`` values; the
        resulting configuration is repaired against the space's resource
        constraints.
        """
        latent = np.asarray(latent, dtype=float)
        point = self.cpe.kpca.inverse_transform(latent[None, :])[0]
        return self.space.decode_subset(point, list(self.selected), base=self.base_config)

    def decode_batch(self, latents: np.ndarray) -> list[Configuration]:
        """Decode many latent vectors at once.

        The KPCA pre-image solves all rows in one batched coordinate
        descent, so decoding a q-point evaluation batch costs little
        more than decoding one point.
        """
        latents = np.atleast_2d(np.asarray(latents, dtype=float))
        points = self.cpe.kpca.inverse_transform(latents)
        return [
            self.space.decode_subset(point, list(self.selected), base=self.base_config)
            for point in points
        ]

    def latent_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned search box for BO in the latent space."""
        return self.cpe.kpca.latent_bounds()


def run_cps(
    space: ConfigSpace,
    configs: list[Configuration],
    durations: np.ndarray | list[float],
    threshold: float = DEFAULT_SCC_THRESHOLD,
    min_selected: int = 5,
) -> CPSResult:
    """Spearman-correlation parameter selection over the sample matrix.

    Keeps parameters with |SCC| >= ``threshold``; if fewer than
    ``min_selected`` survive (tiny or degenerate samples), the top
    ``min_selected`` by |SCC| are kept so CPE always has a workable
    input dimension.
    """
    if len(configs) < 3:
        raise ValueError("CPS needs at least three samples")
    durations = np.asarray(durations, dtype=float).ravel()
    if durations.shape[0] != len(configs):
        raise ValueError("configs and durations must have the same length")

    encoded = np.stack([space.encode(c) for c in configs])
    scc: dict[str, float] = {}
    for j, name in enumerate(space.names):
        column = encoded[:, j]
        scc[name] = spearman(column, durations) if np.ptp(column) > 1e-12 else 0.0

    selected = [n for n in space.names if abs(scc[n]) >= threshold]
    if len(selected) < min_selected:
        by_strength = sorted(space.names, key=lambda n: -abs(scc[n]))
        chosen = set(by_strength[:min_selected])
        selected = [n for n in space.names if n in chosen]
    return CPSResult(scc=scc, selected=tuple(selected), threshold=threshold)


def run_cpe(
    space: ConfigSpace,
    configs: list[Configuration],
    cps: CPSResult,
    kernel: str = "gaussian",
    explained_variance: float = 0.85,
    n_components: int | None = None,
) -> CPEResult:
    """Kernel-PCA extraction over the CPS-selected parameters."""
    subset = np.stack([space.encode_subset(c, list(cps.selected)) for c in configs])
    kpca = KernelPCA(
        kernel=kernel,
        n_components=n_components,
        explained_variance=explained_variance,
    )
    kpca.fit(subset)
    return CPEResult(kpca=kpca, n_components=kpca.n_components_, kernel=kernel)


class IICP:
    """The combined CPS -> CPE pipeline."""

    def __init__(
        self,
        scc_threshold: float = DEFAULT_SCC_THRESHOLD,
        kernel: str = "gaussian",
        explained_variance: float = 0.85,
        n_components: int | None = None,
        n_samples: int = DEFAULT_N_IICP,
    ):
        self.scc_threshold = scc_threshold
        self.kernel = kernel
        self.explained_variance = explained_variance
        self.n_components = n_components
        self.n_samples = n_samples

    def run(
        self,
        space: ConfigSpace,
        configs: list[Configuration],
        durations: np.ndarray | list[float],
        base_config: Configuration | None = None,
    ) -> IICPResult:
        """Identify important parameters from collected samples.

        Only the first ``n_samples`` samples are used (the paper shows 20
        suffice; extra samples add nothing, Figure 9).
        """
        configs = list(configs)[: self.n_samples] if self.n_samples else list(configs)
        durations = np.asarray(durations, dtype=float).ravel()[: len(configs)]
        cps = run_cps(space, configs, durations, threshold=self.scc_threshold)
        cpe = run_cpe(
            space,
            configs,
            cps,
            kernel=self.kernel,
            explained_variance=self.explained_variance,
            n_components=self.n_components,
        )
        return IICPResult(
            cps=cps,
            cpe=cpe,
            space=space,
            base_config=base_config if base_config is not None else space.default(),
        )
