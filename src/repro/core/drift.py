"""Sequential drift detectors for the online controller.

The paper's deployment story (section 3.1) is an application whose
input grows over time while the cluster underneath it ages: disks slow
down, nodes drop out, the data distribution skews.  The online
controller must notice that the deployed configuration has gone stale
*from the production run stream alone* — every extra measurement is a
production run it cannot schedule.

Three detectors implement the :class:`DriftDetector` protocol:

* :class:`RatioDriftDetector` — the original heuristic, kept bit for
  bit: a sliding window of measured/expected ratios, alarm when
  ``patience`` consecutive runs exceed ``factor`` times the
  expectation.  Simple, but blind to slow degradation below the factor
  and slow (``patience`` runs) on abrupt shifts.
* :class:`PageHinkleyDetector` — the Page–Hinkley test over
  *standardized residuals* (measured log duration minus the DAGP's
  posterior mean, in posterior-std units).  Accumulates deviations
  above a self-calibrating baseline and alarms when the cumulative
  statistic exceeds its running minimum by ``threshold``; small
  sustained shifts integrate up, single noisy spikes do not.
* :class:`CusumDetector` — a one-sided CUSUM on the same residuals: a
  clamped-at-zero score that charges ``z - k`` per run, alarming above
  ``threshold``.  Slightly quicker to forgive transients than
  Page–Hinkley (the score resets to zero on any sub-baseline run).

Detectors are deliberately dumb about *where* expectations come from:
the controller hands every ``update`` a :class:`DurationPrediction`
(expected seconds plus log-space mean/std), built either from the DAGP
surrogate or from the legacy nearest-run scaling.  All detector state
is JSON-serializable (:meth:`DriftDetector.state` /
:meth:`DriftDetector.restore`), so the tuning service can persist it in
``deployed.json`` and a restarted service resumes mid-window instead of
silently starting blind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

#: Floor on the predictive log-std used to standardize residuals.  The
#: DAGP's posterior std at a training point collapses toward the
#: observation noise, which would turn routine run-to-run jitter into
#: huge z-scores; 0.1 (≈10% duration uncertainty) keeps z near
#: unit scale for a healthy deployment.
LOG_STD_FLOOR = 0.1

#: Log-std assigned to the legacy nearest-run expectation, which carries
#: no uncertainty estimate of its own.  Deliberately loose: the linear
#: scaling is a rough guess, so model detectors running on it should
#: need a larger shift before alarming.
NEAREST_LOG_STD = 0.25

#: Clamp on a single standardized residual before it enters a
#: sequential detector.  One absurd measurement (a client reporting 0.0
#: seconds, or milliseconds instead of seconds) would otherwise swing
#: the running baseline by hundreds of sigmas and force a false alarm
#: on the very next *normal* run.  The clamp is asymmetric because the
#: detectors are one-sided: the slow side (``RESIDUAL_CLIP``) sits far
#: above the alarm thresholds so genuine drift still alarms at full
#: speed, while the fast side (``RESIDUAL_CLIP_FAST``) is tight —
#: a "too fast" run carries no drift evidence, and letting it drag the
#: baseline down would make the *next normal run* look like a slowdown
#: (observed end to end: one 0.0-second report early in a window forced
#: a spurious retune three runs later with a symmetric clamp).
RESIDUAL_CLIP = 8.0
RESIDUAL_CLIP_FAST = 2.0


@dataclass(frozen=True)
class DurationPrediction:
    """Expected duration of the deployed configuration at one datasize.

    ``expected_s`` is the point expectation in seconds (what the ratio
    rule divides by); ``log_mean`` / ``log_std`` describe the same
    prediction as a Gaussian over log duration (what the sequential
    detectors standardize against).  ``source`` records how it was
    built: ``"model"`` (DAGP posterior) or ``"nearest"`` (legacy
    nearest-run linear scaling).
    """

    expected_s: float
    log_mean: float
    log_std: float
    source: str = "model"

    def standardized_residual(self, observed_s: float) -> float:
        """z-score of a measured duration under this prediction."""
        observed = math.log(max(float(observed_s), 1e-9))
        return (observed - self.log_mean) / max(self.log_std, 1e-9)

    def clipped_residual(self, observed_s: float) -> float:
        """The residual clamped to [-``RESIDUAL_CLIP_FAST``,
        ``RESIDUAL_CLIP``] (the sequential detectors' input)."""
        return max(
            -RESIDUAL_CLIP_FAST,
            min(RESIDUAL_CLIP, self.standardized_residual(observed_s)),
        )


@runtime_checkable
class DriftDetector(Protocol):
    """Sequential change detector over a stream of measured durations.

    One instance watches one deployment: the controller calls
    :meth:`update` per measured production run and :meth:`reset` when a
    retune deploys a fresh configuration.  ``state``/``restore`` must
    round-trip through JSON so the service can persist the detector
    mid-window.
    """

    name: str

    def update(self, observed_s: float, prediction: DurationPrediction) -> bool:
        """Consume one measured run; True means drift alarm (retune)."""
        ...

    def reset(self) -> None:
        """Forget everything (a new configuration was deployed)."""
        ...

    def reason(self) -> str:
        """Human-readable explanation of the most recent alarm."""
        ...

    def state(self) -> dict:
        """JSON-safe snapshot, consumed by :meth:`restore`."""
        ...

    def restore(self, state: dict) -> None:
        """Rehydrate from a :meth:`state` snapshot."""
        ...

    def status(self) -> dict:
        """JSON-safe diagnostic view (served by ``GET /apps/<id>``)."""
        ...


class RatioDriftDetector:
    """The original fixed-ratio window rule, bit for bit.

    Alarm when the last ``patience`` runs were *all* slower than
    ``factor`` times their expectation.  The ratio floats (including
    the ``max(expected, 1e-9)`` guard) match the pre-detector
    controller exactly, so a pinned run stream produces the identical
    decision sequence.
    """

    name = "ratio"

    def __init__(self, factor: float = 1.3, patience: int = 3):
        if factor <= 1.0:
            raise ValueError("factor must exceed 1.0")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.factor = float(factor)
        self.patience = int(patience)
        self.window: list[float] = []

    def update(self, observed_s: float, prediction: DurationPrediction) -> bool:
        self.window.append(float(observed_s) / max(prediction.expected_s, 1e-9))
        self.window = self.window[-self.patience:]
        return len(self.window) >= self.patience and all(
            r > self.factor for r in self.window
        )

    def reset(self) -> None:
        self.window.clear()

    def reason(self) -> str:
        return (
            f"{self.patience} consecutive runs over "
            f"{self.factor:.1f}x the expected duration"
        )

    def state(self) -> dict:
        return {"recent_ratios": list(self.window)}

    def restore(self, state: dict) -> None:
        self.window = [float(r) for r in state.get("recent_ratios", [])]
        self.window = self.window[-self.patience:]

    def status(self) -> dict:
        return {
            "detector": self.name,
            "window": list(self.window),
            "patience": self.patience,
            "factor": self.factor,
        }


class _ResidualBaseline:
    """Shared running-mean baseline for the residual detectors.

    Standardized residuals carry a systematic component the detector
    must not alarm on — calibration error of the deploy-time
    full-application/RQA offset, simulator-vs-model bias — so both
    sequential tests measure deviations against a running mean.  The
    mean is anchored at zero with ``prior_weight`` pseudo-observations:
    a genuinely drifted *first* run then stands out against the prior
    instead of instantly becoming its own baseline.
    """

    def __init__(self, prior_weight: float):
        self.prior_weight = float(prior_weight)
        self.n = 0
        self.total = 0.0

    def update(self, z: float) -> float:
        """Fold in one residual; returns the updated baseline mean."""
        self.n += 1
        self.total += z
        return self.mean

    @property
    def mean(self) -> float:
        return self.total / (self.prior_weight + self.n)

    def reset(self) -> None:
        self.n = 0
        self.total = 0.0


class PageHinkleyDetector:
    """Page–Hinkley test over standardized log-duration residuals.

    Maintains the cumulative sum ``m_t = Σ (z_i - z̄_i - delta)`` and
    alarms when ``m_t`` exceeds its running minimum by ``threshold``:
    a sustained upward shift of the residual mean integrates at
    ``shift - delta`` per run, so detection delay scales inversely with
    shift size — abrupt drift is caught in one or two runs, slow drift
    is still caught once it has accumulated ``threshold`` worth of
    evidence (the ratio rule never catches it below its factor).
    """

    name = "ph"

    def __init__(
        self,
        delta: float = 0.25,
        threshold: float = 4.0,
        prior_weight: float = 3.0,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self._baseline = _ResidualBaseline(prior_weight)
        self.cumulative = 0.0
        self.minimum = 0.0

    @property
    def statistic(self) -> float:
        return self.cumulative - self.minimum

    def update(self, observed_s: float, prediction: DurationPrediction) -> bool:
        z = prediction.clipped_residual(observed_s)
        mean = self._baseline.update(z)
        self.cumulative += z - mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        return self.statistic > self.threshold

    def reset(self) -> None:
        self._baseline.reset()
        self.cumulative = 0.0
        self.minimum = 0.0

    def reason(self) -> str:
        return (
            f"Page-Hinkley drift statistic {self.statistic:.1f} exceeded "
            f"{self.threshold:.1f} (sustained slowdown vs the model expectation)"
        )

    def state(self) -> dict:
        return {
            "n": self._baseline.n,
            "total": self._baseline.total,
            "cumulative": self.cumulative,
            "minimum": self.minimum,
        }

    def restore(self, state: dict) -> None:
        self._baseline.n = int(state.get("n", 0))
        self._baseline.total = float(state.get("total", 0.0))
        self.cumulative = float(state.get("cumulative", 0.0))
        self.minimum = float(state.get("minimum", 0.0))

    def status(self) -> dict:
        return {
            "detector": self.name,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "observations": self._baseline.n,
            "baseline_residual": self._baseline.mean,
        }


class CusumDetector:
    """One-sided CUSUM over standardized log-duration residuals.

    ``score = max(0, score + z - z̄ - k)``; alarm above ``threshold``.
    The clamp at zero makes CUSUM forgive isolated slow runs instantly,
    at the cost of slightly longer delay than Page–Hinkley on drifts
    barely above ``k``.
    """

    name = "cusum"

    def __init__(
        self,
        k: float = 0.5,
        threshold: float = 5.0,
        prior_weight: float = 3.0,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = float(k)
        self.threshold = float(threshold)
        self._baseline = _ResidualBaseline(prior_weight)
        self.score = 0.0

    def update(self, observed_s: float, prediction: DurationPrediction) -> bool:
        z = prediction.clipped_residual(observed_s)
        mean = self._baseline.update(z)
        self.score = max(0.0, self.score + z - mean - self.k)
        return self.score > self.threshold

    def reset(self) -> None:
        self._baseline.reset()
        self.score = 0.0

    def reason(self) -> str:
        return (
            f"CUSUM drift score {self.score:.1f} exceeded "
            f"{self.threshold:.1f} (sustained slowdown vs the model expectation)"
        )

    def state(self) -> dict:
        return {
            "n": self._baseline.n,
            "total": self._baseline.total,
            "score": self.score,
        }

    def restore(self, state: dict) -> None:
        self._baseline.n = int(state.get("n", 0))
        self._baseline.total = float(state.get("total", 0.0))
        self.score = float(state.get("score", 0.0))

    def status(self) -> dict:
        return {
            "detector": self.name,
            "score": self.score,
            "threshold": self.threshold,
            "observations": self._baseline.n,
            "baseline_residual": self._baseline.mean,
        }


#: Detector modes the controller (and the service API) accept by name.
DETECTOR_MODES = ("ratio", "ph", "cusum")


def make_detector(
    name: str, drift_factor: float = 1.3, drift_patience: int = 3
) -> DriftDetector:
    """Build a detector by mode name.

    ``drift_factor`` / ``drift_patience`` parameterize the ratio mode
    only; the sequential detectors use their own calibrated defaults.
    """
    if name == "ratio":
        return RatioDriftDetector(factor=drift_factor, patience=drift_patience)
    if name == "ph":
        return PageHinkleyDetector()
    if name == "cusum":
        return CusumDetector()
    raise ValueError(f"unknown drift detector {name!r}; expected one of {DETECTOR_MODES}")
