"""Canonical datasize identity.

Datasize is the key every layer groups observations by: the objective's
trial history, the BO trace, LOCAT's observation list, and the service's
persistent run table all compare datasizes with ``==``.  Clients reach
those layers through JSON (``100`` vs ``100.0`` vs a string from a query
parameter) and through numpy scalars, so a raw float comparison can
silently split one logical history into two — the DAGP then warm-starts
from half its data and the EI incumbent can anchor on the wrong subset.

:func:`normalize_datasize` is the single canonicalization point: every
store/compare boundary converts through it, so two datasizes are the
same history key if and only if their normalized floats are equal.

The boundary contract: a layer normalizes exactly once, where a
datasize *enters* it, and may compare with ``==`` afterwards.  The
boundaries that normalize today are ``execute_trial`` and
``EvalRequest`` (objective/parallel), ``BOLoop.minimize`` and
``BOTrace.best`` (tuner), ``LOCAT.tune``/``bootstrap``/``restore``
(orchestrator, including transplanted donor observations),
``OnlineController.observe``/``would_retune``/``restore_state``
(online), and ``ObservationRecord`` (the service store, so JSON round
trips through ``runs.jsonl`` cannot fork a history).  Everything
in between passes already-normalized floats.  Note the distinction
from :func:`repro.core.dagp.datasize_coordinate`, which is the GP's
*feature scaling* of an already-normalized datasize, not its identity.
"""

from __future__ import annotations

import math

#: Decimal places kept on a normalized datasize.  Real datasizes are
#: "300 GB"-shaped; a micro-GB (kilobyte) resolution is far below any
#: meaningful distinction while absorbing float artifacts introduced by
#: JSON round-trips or unit arithmetic upstream.
_DECIMALS = 6


def normalize_datasize(value: "float | int | str") -> float:
    """Canonical float for a datasize in GB.

    Accepts ints, floats, numpy scalars, and numeric strings; rejects
    non-finite and non-positive values.  Equal logical datasizes map to
    the identical float, so ``==`` on normalized values is a safe
    history-grouping key.
    """
    try:
        ds = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"datasize must be numeric, got {value!r}") from None
    if not math.isfinite(ds):
        raise ValueError(f"datasize must be finite, got {value!r}")
    ds = round(ds, _DECIMALS)
    # Positivity is checked on the *rounded* value: a sub-resolution
    # positive input would otherwise normalize to a degenerate 0.0 key.
    if ds <= 0:
        raise ValueError(f"datasize must be positive, got {value!r}")
    return ds
