"""Online tuning controller: when should LOCAT (re)tune?

The paper's deployment story (section 3.1) is an application that "runs
repeatedly many times with the size of input data changing over time".
This controller wraps a :class:`~repro.core.locat.LOCAT` instance and
watches the production runs: each incoming (datasize, duration)
observation is checked against the expectation for the currently
deployed configuration, and a tuning session is triggered when

* a datasize arrives that is far from anything tuned so far, or
* measured durations drift above the expectation (the model of the
  deployed config is stale — data distribution or cluster changed).

Expectations come from the DAGP surrogate LOCAT already maintains
(posterior mean *and* uncertainty of the deployed configuration at any
datasize, calibrated to full-application scale at deploy time), and
drift is decided by a pluggable sequential change detector
(:mod:`repro.core.drift`): Page–Hinkley by default, CUSUM as an
alternative, and ``detector="ratio"`` for the original fixed-window
heuristic bit for bit.

Drift-triggered retunes are *partial* sessions
(:meth:`~repro.core.locat.LOCAT.adapt`): a reduced BO budget over the
incremental surrogate engine, warm-started from the full observation
history — the model is merely stale, not absent, so a handful of fresh
evaluations re-anchors it at a fraction of a cold session's cost.
Datasize-margin retunes keep the full budget (a genuinely new operating
point deserves a full search).

This is the glue a production user needs around the core algorithm; the
paper leaves it implicit.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.datasize import normalize_datasize
from repro.core.drift import (
    LOG_STD_FLOOR,
    NEAREST_LOG_STD,
    DriftDetector,
    DurationPrediction,
    make_detector,
)
from repro.core.locat import LOCAT
from repro.core.promotion import (
    DECISION_EXTEND,
    DECISION_PROMOTE,
    PROMOTION_MODES,
    SHADOW_SEED_SALT,
    PromotionGate,
    ShadowPair,
    ShadowState,
    winner_record,
)
from repro.core.result import TuningResult
from repro.stats.sampling import ensure_rng
from repro.sparksim.configspace import Configuration

#: Cap multiplier on the legacy-store calibration anchor: a deployment
#: restored without a persisted ``log_offset`` may calibrate on its
#: first measured run only up to this factor over the nearest-run
#: (RQA-scale) expectation — generous enough for the systematic
#: full-application/RQA gap, tight enough that an already-in-progress
#: 2x drift cannot disguise itself as the baseline.
LEGACY_CALIBRATION_ALLOWANCE = 1.5


def config_key(config: Configuration) -> tuple:
    """Canonical identity of a configuration for history matching.

    Exact ``Configuration.__eq__`` is too brittle across process
    restarts: a configuration rehydrated from ``deployed.json`` must
    match the LOCAT observations rehydrated from ``runs.jsonl``, and a
    JSON float/type round trip (or any upstream arithmetic) may leave
    the two off by one ulp — silently killing drift detection for the
    rest of the service's life.  The key compares booleans as booleans
    and every numeric value as a float rounded well below parameter
    resolution, so equal logical configurations always collide.
    """
    return tuple(
        (name, value if isinstance(value, bool) else round(float(value), 9))
        for name, value in sorted(config.as_dict().items())
    )


@dataclass
class OnlineDecision:
    """What the controller did with one production observation."""

    datasize_gb: float
    duration_s: float
    retuned: bool
    reason: str
    config: Configuration
    result: TuningResult | None = None
    #: What caused a retune: "initial", "datasize", "drift" — or "none".
    trigger: str = "none"
    #: Shadow/promotion bookkeeping for this observation (None in
    #: ``promotion="immediate"`` mode and outside shadow activity).
    promotion: dict | None = None


@dataclass
class _DeployedState:
    config: Configuration
    tuned_datasizes: list[float] = field(default_factory=list)
    #: Additive log-space calibration from the DAGP's RQA-scale
    #: prediction to full-application scale, measured at deploy time
    #: from the session's validation run.  None until calibrated.
    log_offset: float | None = None


class OnlineController:
    """Drives LOCAT from a stream of production runs.

    ``datasize_margin`` — relative distance to the nearest tuned
    datasize beyond which a new size triggers adaptation (default 30%:
    tuned at 300 GB covers ~210-390 GB).
    ``detector`` — drift-detection mode: ``"ph"`` (Page–Hinkley over
    DAGP-standardized residuals, the default), ``"cusum"``, or
    ``"ratio"`` (the original heuristic, bit for bit); a
    :class:`~repro.core.drift.DriftDetector` instance plugs in a custom
    detector.
    ``drift_factor`` / ``drift_patience`` — ratio-mode parameters:
    re-tune after ``patience`` consecutive runs slower than ``factor``
    times the expected duration.
    ``partial_retunes`` — drift-triggered retunes always run as
    :meth:`~repro.core.locat.LOCAT.adapt` sessions (pre-drift history
    quarantined, incumbent and calibration anchored on fresh
    measurements — a full ``tune`` would re-anchor on stale pre-drift
    trials and loop);  this flag only picks the BO budget: reduced
    (default) or the full ``max_iterations``.
    ``promotion`` — what happens to a retune's winner: ``"immediate"``
    (deploy it, bit-for-bit the historic behaviour) or ``"shadow_ab"``
    (hand it to a :class:`~repro.core.promotion.PromotionGate`: measure
    incumbent and challenger under common random numbers on the
    subsequent production slice, deploy only on a significant paired
    bootstrap win).  ``shadow_runs`` / ``ab_alpha`` parameterize the
    gate; ``shadow_measure`` overrides how a shadow arm is measured
    (``(config, datasize_gb, rng) -> duration_s``, defaulting to the
    tuner's own simulator).
    ``capture_replay_trace`` — record every measured production run into
    the tuner's :class:`~repro.replay.trace.ReplayTrace`; ``None``
    (default) follows the tuner's ``replay_eval`` setting.  With replay
    evaluation on, a new shadow is also *prefilled* with CRN pairs
    replayed from the trace, so the gate can reach its verdict before
    any production run lands.
    """

    def __init__(
        self,
        locat: LOCAT,
        datasize_margin: float = 0.3,
        drift_factor: float = 1.3,
        drift_patience: int = 3,
        detector: str | DriftDetector = "ph",
        partial_retunes: bool = True,
        promotion: str = "immediate",
        shadow_runs: int = 6,
        ab_alpha: float = 0.05,
        max_shadow_runs: int | None = None,
        shadow_measure: Callable[[Configuration, float, np.random.Generator], float]
        | None = None,
        capture_replay_trace: bool | None = None,
    ):
        if datasize_margin <= 0:
            raise ValueError("datasize_margin must be positive")
        if drift_factor <= 1.0:
            raise ValueError("drift_factor must exceed 1.0")
        if drift_patience < 1:
            raise ValueError("drift_patience must be at least 1")
        if promotion not in PROMOTION_MODES:
            raise ValueError(
                f"promotion must be one of {PROMOTION_MODES}, got {promotion!r}"
            )
        self.locat = locat
        self.datasize_margin = datasize_margin
        self.drift_factor = drift_factor
        self.drift_patience = drift_patience
        self.partial_retunes = bool(partial_retunes)
        self.promotion = promotion
        # The gate validates shadow_runs/ab_alpha even in immediate mode
        # so a bad tenant key fails at construction, not at first drift.
        self._gate = PromotionGate(
            min_runs=shadow_runs, alpha=ab_alpha, max_runs=max_shadow_runs
        )
        self._shadow_measure = shadow_measure or self._default_shadow_measure
        # getattr: tests drive the controller with stub tuners that
        # predate the replay attributes.
        self.capture_replay_trace = (
            getattr(locat, "replay_eval", "off") != "off"
            if capture_replay_trace is None
            else bool(capture_replay_trace)
        )
        self._shadow: ShadowState | None = None
        self._shadow_counter = 0
        self._promoted = 0
        self._rejected = 0
        self._last_promotion: dict | None = None
        #: Terminal promote/reject provenance records since the last
        #: drain (the service registry appends them to ``winners.json``).
        self.promotion_events: list[dict] = []
        if isinstance(detector, str):
            self._detector: DriftDetector = make_detector(
                detector, drift_factor=drift_factor, drift_patience=drift_patience
            )
        else:
            self._detector = detector
        self._state: _DeployedState | None = None

    # ------------------------------------------------------------------
    @property
    def is_deployed(self) -> bool:
        return self._state is not None

    @property
    def deployed_config(self) -> Configuration:
        if self._state is None:
            raise RuntimeError("no configuration deployed yet; call observe()")
        return self._state.config

    @property
    def tuned_datasizes(self) -> list[float]:
        """Datasizes covered by tuning sessions so far (empty pre-deploy)."""
        return list(self._state.tuned_datasizes) if self._state is not None else []

    @property
    def detector_name(self) -> str:
        return self._detector.name

    @property
    def log_offset(self) -> float | None:
        """The deploy-time model calibration offset (None pre-deploy)."""
        return self._state.log_offset if self._state is not None else None

    @property
    def recent_ratios(self) -> list[float]:
        """The ratio-mode drift window (empty for the model detectors)."""
        return [float(r) for r in self._detector.state().get("recent_ratios", [])]

    def detector_state(self) -> dict:
        """JSON-safe detector snapshot for ``deployed.json``."""
        return self._detector.state()

    def drift_status(self) -> dict:
        """JSON-safe drift diagnostics (served by ``GET /apps/<id>``)."""
        status = dict(self._detector.status())
        status["calibrated"] = (
            self._detector.name == "ratio" or self.log_offset is not None
        )
        return status

    # ------------------------------------------------------------------
    # Promotion / shadow evaluation
    # ------------------------------------------------------------------
    @property
    def shadow_active(self) -> bool:
        """Whether a challenger is currently under shadow evaluation."""
        return self._shadow is not None

    def promotion_status(self) -> dict:
        """JSON-safe promotion diagnostics (served by ``GET /apps/<id>``)."""
        shadow = None
        if self._shadow is not None:
            shadow = {
                "run_id": self._shadow.run_id,
                "trigger": self._shadow.trigger,
                "n_pairs": len(self._shadow.pairs),
                "min_runs": self._gate.min_runs,
                "max_runs": self._gate.max_runs,
                "origin_datasize_gb": self._shadow.origin_datasize_gb,
            }
        return {
            "mode": self.promotion,
            "shadow_active": self._shadow is not None,
            "shadow": shadow,
            "promoted": self._promoted,
            "rejected": self._rejected,
            "last_decision": self._last_promotion,
        }

    def promotion_state(self) -> dict | None:
        """Restart-surviving promotion snapshot for ``deployed.json``.

        None when there is nothing to persist (immediate mode with no
        promotion history), keeping historic stores byte-identical.
        """
        if (
            self.promotion == "immediate"
            and self._shadow is None
            and self._shadow_counter == 0
        ):
            return None
        return {
            "mode": self.promotion,
            "shadow": None if self._shadow is None else self._shadow.to_json(),
            "counter": self._shadow_counter,
            "promoted": self._promoted,
            "rejected": self._rejected,
            "last_decision": self._last_promotion,
        }

    def restore_promotion(self, payload: dict | None) -> None:
        """Rehydrate an in-flight shadow and promotion counters.

        Accepts the block written by :meth:`promotion_state` (absent in
        legacy stores).  A persisted shadow is only resumed when this
        controller still runs in ``shadow_ab`` mode: if the operator
        flipped the tenant back to ``immediate``, the challenger is
        discarded and the incumbent simply stays deployed — never the
        other way around (an unvetted candidate must not deploy on
        restart).
        """
        if not payload:
            return
        self._shadow_counter = int(payload.get("counter", 0))
        self._promoted = int(payload.get("promoted", 0))
        self._rejected = int(payload.get("rejected", 0))
        self._last_promotion = payload.get("last_decision")
        shadow = payload.get("shadow")
        if shadow and self.promotion == "shadow_ab":
            self._shadow = ShadowState.from_json(shadow)

    def drain_promotion_events(self) -> list[dict]:
        """Hand off terminal decision records accumulated since last drain."""
        events, self.promotion_events = self.promotion_events, []
        return events

    def restore_state(
        self,
        config: Configuration,
        tuned_datasizes: list[float],
        recent_ratios: list[float] | None = None,
        detector_state: dict | None = None,
        log_offset: float | None = None,
    ) -> None:
        """Rehydrate the deployed state persisted by a previous process.

        Together with :meth:`LOCAT.restore` this lets a restarted service
        resume exactly where it stopped: the deployed configuration, the
        datasizes it covers, the model calibration, and the partially
        filled detector window.  ``recent_ratios`` is the legacy
        pre-detector window format; stores written by this version
        persist ``detector_state`` instead (both are accepted, newest
        wins).
        """
        if not tuned_datasizes:
            raise ValueError("restore_state needs at least one tuned datasize")
        self._state = _DeployedState(
            config=config,
            tuned_datasizes=[normalize_datasize(d) for d in tuned_datasizes],
            log_offset=None if log_offset is None else float(log_offset),
        )
        self._detector.reset()
        if detector_state:
            self._detector.restore(detector_state)
        elif recent_ratios:
            # Legacy deployed.json: only the ratio window was persisted.
            self._detector.restore({"recent_ratios": [float(r) for r in recent_ratios]})

    def would_retune(self, datasize_gb: float) -> bool:
        """Whether an observe at this datasize *deterministically* starts
        a tuning session: nothing deployed yet, or the size is beyond
        ``datasize_margin`` from everything tuned.  Drift-triggered
        retunes depend on the measured duration and are not predicted.
        The scheduler uses this to size a job's slot reservation before
        running it."""
        datasize_gb = normalize_datasize(datasize_gb)
        if self._state is None:
            return True
        nearest = min(self._state.tuned_datasizes, key=lambda d: abs(d - datasize_gb))
        return abs(datasize_gb - nearest) / nearest > self.datasize_margin

    # ------------------------------------------------------------------
    # Expectations
    # ------------------------------------------------------------------
    @property
    def _uses_model(self) -> bool:
        """Model-backed expectation for every detector except ratio mode
        (whose decisions are pinned to the legacy nearest-run floats)."""
        return self._detector.name != "ratio"

    def _nearest_prediction(self, datasize_gb: float) -> DurationPrediction | None:
        """Legacy expectation: nearest run of the deployed config with
        linear datasize scaling — deliberately simple and conservative.
        Bit-for-bit the pre-detector ``_expected_duration`` floats."""
        assert self._state is not None
        key = config_key(self._state.config)
        observations = [
            o for o in self.locat._observations if config_key(o.config) == key
        ]
        if not observations:
            return None
        nearest = min(observations, key=lambda o: abs(o.datasize_gb - datasize_gb))
        expected = nearest.rqa_duration_s * datasize_gb / nearest.datasize_gb
        return DurationPrediction(
            expected_s=expected,
            log_mean=math.log(max(expected, 1e-9)),
            log_std=NEAREST_LOG_STD,
            source="nearest",
        )

    def _calibrate(self, datasize_gb: float, full_duration_s: float) -> None:
        """Anchor the model's RQA-scale prediction to full-app seconds."""
        assert self._state is not None
        raw = self.locat.predict_log_duration(self._state.config, datasize_gb)
        if raw is not None:
            self._state.log_offset = (
                math.log(max(float(full_duration_s), 1e-9)) - raw[0]
            )

    def _deploy(self, result: TuningResult, datasize_gb: float) -> None:
        """Bookkeeping after any tuning session deployed a new config."""
        state = self._state
        assert state is not None
        state.config = result.best_config
        if datasize_gb not in state.tuned_datasizes:
            state.tuned_datasizes.append(datasize_gb)
        state.log_offset = None
        self._detector.reset()
        if self._uses_model:
            # The session's validation run is a measured full-application
            # duration of the freshly deployed config: the one clean
            # anchor tying the DAGP's RQA-scale posterior to the scale
            # production durations arrive in.
            self._calibrate(datasize_gb, result.best_duration_s)

    # ------------------------------------------------------------------
    # Shadow evaluation internals
    # ------------------------------------------------------------------
    def _default_shadow_measure(
        self, config: Configuration, datasize_gb: float, rng: np.random.Generator
    ) -> float:
        """Measure one shadow arm on the tuner's own simulator.

        Deliberately bypasses ``locat.objective`` so shadow runs never
        perturb the tuner's trial history, evaluation counts, or
        incumbent selection.
        """
        metrics = self.locat.simulator.run(self.locat.app, config, datasize_gb, rng=rng)
        return float(metrics.duration_s)

    def _gate_candidate(
        self,
        result: TuningResult,
        datasize_gb: float,
        duration_s: float | None,
        trigger: str,
        reason: str,
    ) -> OnlineDecision:
        """Open a shadow for a retune's winner instead of deploying it."""
        state = self._state
        assert state is not None
        if config_key(result.best_config) == config_key(state.config):
            # The retune re-confirmed the incumbent: nothing to gate.
            # Re-deploying refreshes the calibration and detector window
            # exactly like an immediate deploy of the same config would.
            self._deploy(result, datasize_gb)
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=result.best_duration_s if duration_s is None else duration_s,
                retuned=True,
                reason=f"{reason} — retune re-confirmed the deployed configuration",
                config=state.config,
                result=result,
                trigger=trigger,
                promotion={"phase": "reconfirmed"},
            )
        self._shadow_counter += 1
        self._shadow = ShadowState(
            run_id=f"shadow-{trigger}-{self._shadow_counter:04d}",
            trigger=trigger,
            reason=reason,
            incumbent=state.config,
            challenger=result.best_config,
            origin_datasize_gb=datasize_gb,
            challenger_duration_s=float(result.best_duration_s),
            seed=self._shadow_counter,
        )
        # Drift state refers to the pre-retune model; start the shadow
        # with a clean window so a stale alarm cannot linger past it.
        self._detector.reset()
        # Replay prefill: with replay evaluation on, CRN pairs replayed
        # from recorded history seed the shadow immediately — a verdict
        # reachable from the trace alone costs zero production delay.
        replay_pairs = self.locat.replay_shadow_pairs(
            state.config, result.best_config, max_pairs=self._gate.min_runs
        ) if hasattr(self.locat, "replay_shadow_pairs") else []
        for pair_ds, incumbent_s, challenger_s in replay_pairs:
            self._shadow.pairs.append(
                ShadowPair(
                    datasize_gb=float(pair_ds),
                    incumbent_s=float(incumbent_s),
                    challenger_s=float(challenger_s),
                )
            )
        if replay_pairs:
            decision, test, why = self._gate.evaluate(self._shadow)
            if decision != DECISION_EXTEND:
                return self._resolve_shadow(
                    self._shadow,
                    decision,
                    test,
                    why,
                    datasize_gb,
                    result.best_duration_s if duration_s is None else duration_s,
                    result=result,
                    replay_pairs=len(replay_pairs),
                )
        return OnlineDecision(
            datasize_gb=datasize_gb,
            duration_s=result.best_duration_s if duration_s is None else duration_s,
            retuned=True,
            reason=f"{reason} — candidate entering shadow evaluation",
            config=state.config,
            result=result,
            trigger=trigger,
            promotion={
                "phase": "shadow_started",
                "run_id": self._shadow.run_id,
                "n_pairs": len(self._shadow.pairs),
                "min_runs": self._gate.min_runs,
                "max_runs": self._gate.max_runs,
            },
        )

    def _promote(self, shadow: ShadowState) -> None:
        """Deploy a shadow's challenger after a significant win."""
        state = self._state
        assert state is not None
        state.config = shadow.challenger
        if shadow.origin_datasize_gb not in state.tuned_datasizes:
            state.tuned_datasizes.append(shadow.origin_datasize_gb)
        state.log_offset = None
        self._detector.reset()
        if self._uses_model and shadow.pairs:
            # The freshest shadow measurement of the challenger is a
            # full-application duration at a production datasize — the
            # same role the validation run plays for immediate deploys.
            last = shadow.pairs[-1]
            self._calibrate(last.datasize_gb, last.challenger_s)

    def _advance_shadow(
        self, datasize_gb: float, duration_s: float | None
    ) -> OnlineDecision:
        """Measure one CRN pair and ask the gate for a verdict."""
        state = self._state
        shadow = self._shadow
        assert state is not None and shadow is not None
        k = len(shadow.pairs)
        # Common random numbers: both arms consume an identically seeded
        # stream, so the pair shares its environment draw and the delta
        # cancels the common noise.
        incumbent_s = self._shadow_measure(
            shadow.incumbent,
            datasize_gb,
            ensure_rng((SHADOW_SEED_SALT, shadow.seed, k)),
        )
        challenger_s = self._shadow_measure(
            shadow.challenger,
            datasize_gb,
            ensure_rng((SHADOW_SEED_SALT, shadow.seed, k)),
        )
        shadow.pairs.append(
            ShadowPair(
                datasize_gb=datasize_gb,
                incumbent_s=float(incumbent_s),
                challenger_s=float(challenger_s),
            )
        )
        decision, test, why = self._gate.evaluate(shadow)
        reported = float("nan") if duration_s is None else duration_s
        if decision == DECISION_EXTEND:
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=reported,
                retuned=False,
                reason=f"shadow evaluation in progress: {why}",
                config=state.config,
                promotion={
                    "phase": "shadow",
                    "run_id": shadow.run_id,
                    "n_pairs": len(shadow.pairs),
                    "min_runs": self._gate.min_runs,
                    "max_runs": self._gate.max_runs,
                },
            )
        return self._resolve_shadow(shadow, decision, test, why, datasize_gb, reported)

    def _resolve_shadow(
        self,
        shadow: ShadowState,
        decision: str,
        test,
        why: str,
        datasize_gb: float,
        reported: float,
        result: TuningResult | None = None,
        replay_pairs: int = 0,
    ) -> OnlineDecision:
        """Close a shadow on a terminal gate verdict (promote/reject).

        Shared by the production path (:meth:`_advance_shadow`) and the
        replay-prefill path (:meth:`_gate_candidate`), which passes the
        retune ``result`` and how many pairs came from replays.
        """
        state = self._state
        assert state is not None
        record = winner_record(shadow, decision, test, why)
        self.promotion_events.append(record)
        self._last_promotion = {
            "run_id": shadow.run_id,
            "decision": decision,
            "reason": why,
            "n_pairs": len(shadow.pairs),
            "ab": None if test is None else test.to_json(),
        }
        self._shadow = None
        extra = {"replay_pairs": replay_pairs} if replay_pairs else {}
        if decision == DECISION_PROMOTE:
            self._promoted += 1
            self._promote(shadow)
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=reported,
                retuned=True,
                reason=f"challenger promoted: {why}",
                config=state.config,
                result=result,
                trigger=shadow.trigger,
                promotion={
                    "phase": "promoted",
                    "run_id": shadow.run_id,
                    "n_pairs": len(shadow.pairs),
                    "ab": None if test is None else test.to_json(),
                    **extra,
                },
            )
        self._rejected += 1
        # The incumbent stays; give drift detection a fresh window so a
        # real regression can re-alarm (and re-tune) from here on.
        self._detector.reset()
        return OnlineDecision(
            datasize_gb=datasize_gb,
            duration_s=reported,
            retuned=result is not None,
            reason=f"challenger rejected: {why}",
            config=state.config,
            result=result,
            trigger="none" if result is None else shadow.trigger,
            promotion={
                "phase": "rejected",
                "run_id": shadow.run_id,
                "n_pairs": len(shadow.pairs),
                "ab": None if test is None else test.to_json(),
                **extra,
            },
        )

    # ------------------------------------------------------------------
    def observe(self, datasize_gb: float, duration_s: float | None = None) -> OnlineDecision:
        """Process one production run request.

        ``duration_s`` is the measured duration of the *previous* run of
        the deployed configuration at this datasize (None for the first
        call or when measurements are unavailable).  Returns the decision
        with the configuration to use for this run.
        """
        # Canonicalize before any comparison or store: a client sending
        # 100 vs 100.0 vs a JSON round-trip artifact must hit the same
        # tuned-datasize history, not fork a new one.
        datasize_gb = normalize_datasize(datasize_gb)

        # Replay capture: the measured run of the deployed configuration
        # becomes one trace step (a no-op with replay evaluation off).
        if (
            self.capture_replay_trace
            and self._state is not None
            and duration_s is not None
            and hasattr(self.locat, "record_production_run")
        ):
            self.locat.record_production_run(
                datasize_gb, duration_s, config=self._state.config
            )

        if self._state is None:
            result = self.locat.tune(datasize_gb)
            self._state = _DeployedState(config=result.best_config)
            self._deploy(result, datasize_gb)
            return OnlineDecision(
                datasize_gb=datasize_gb,
                # `duration_s or ...` would treat a measured 0.0 as
                # missing; only None means "no measurement".
                duration_s=result.best_duration_s if duration_s is None else duration_s,
                retuned=True,
                reason="initial tuning session",
                config=result.best_config,
                result=result,
                trigger="initial",
            )

        state = self._state
        if self._shadow is not None:
            # A challenger is under evaluation: every production run
            # contributes one CRN pair, and retune triggers stay muted
            # until the gate reaches a verdict (re-tuning mid-shadow
            # would race two candidates for one deployment slot).
            return self._advance_shadow(datasize_gb, duration_s)
        if self.would_retune(datasize_gb):
            # Recomputed here only for the human-readable reason; the
            # decision rule itself lives in would_retune.
            nearest = min(state.tuned_datasizes, key=lambda d: abs(d - datasize_gb))
            relative_gap = abs(datasize_gb - nearest) / nearest
            result = self.locat.tune(datasize_gb)
            reason = (
                f"datasize {datasize_gb:.0f}GB is {relative_gap:.0%} from "
                f"nearest tuned size {nearest:.0f}GB"
            )
            if self.promotion == "shadow_ab":
                return self._gate_candidate(
                    result, datasize_gb, duration_s, "datasize", reason
                )
            self._deploy(result, datasize_gb)
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=result.best_duration_s if duration_s is None else duration_s,
                retuned=True,
                reason=reason,
                config=result.best_config,
                result=result,
                trigger="datasize",
            )

        if duration_s is not None:
            prediction: DurationPrediction | None
            if self._uses_model:
                raw = self.locat.predict_log_duration(state.config, datasize_gb)
                if raw is None:
                    # No usable surrogate (a minimal restored history,
                    # or a stubbed LOCAT): fall back to the legacy
                    # expectation — a persisted calibration must never
                    # leave drift detection silently dead.
                    prediction = self._nearest_prediction(datasize_gb)
                elif state.log_offset is None:
                    # Deployment restored from a store that predates the
                    # persisted calibration: anchor on this first
                    # measured run (which therefore cannot alarm) and
                    # detect drift from the next one on.  The anchor is
                    # capped at the nearest-run expectation plus an
                    # allowance — a restart often *follows* trouble, and
                    # calibrating on an already-drifted run would bake
                    # the slowdown into the baseline forever.  Under the
                    # cap the drift stays visible as positive residuals;
                    # at worst an extreme full-app/RQA ratio costs one
                    # spurious partial retune, whose own validation run
                    # then calibrates properly.
                    anchor = math.log(max(float(duration_s), 1e-9))
                    nearest = self._nearest_prediction(datasize_gb)
                    if nearest is not None:
                        # Clamped on *both* sides, asymmetrically like
                        # the detectors themselves.  Above: at most the
                        # allowance over the nearest-run expectation, so
                        # an in-progress slowdown stays visible.  Below:
                        # the nearest-run expectation itself — an
                        # absurdly low first report (a client sending
                        # 0.0) would otherwise calibrate the model to
                        # expect near-instant runs and guarantee a
                        # spurious alarm on the next normal one, while a
                        # genuinely faster environment merely loses a
                        # little sensitivity until the next retune
                        # recalibrates properly.
                        low = math.log(nearest.expected_s)
                        high = math.log(
                            nearest.expected_s * LEGACY_CALIBRATION_ALLOWANCE
                        )
                        anchor = min(max(anchor, low), high)
                    state.log_offset = anchor - raw[0]
                    prediction = None
                else:
                    log_mean = raw[0] + state.log_offset
                    prediction = DurationPrediction(
                        expected_s=float(np.exp(log_mean)),
                        log_mean=float(log_mean),
                        log_std=float(max(raw[1], LOG_STD_FLOOR)),
                        source="model",
                    )
            else:
                prediction = self._nearest_prediction(datasize_gb)
            if prediction is not None and self._detector.update(duration_s, prediction):
                reason = self._detector.reason()
                # Drift retunes always run as quarantined adapt sessions
                # (stale pre-drift history must not anchor the incumbent
                # or the calibration); partial_retunes only decides the
                # BO budget: reduced (default) or the full budget.
                result = self.locat.adapt(
                    datasize_gb,
                    max_iterations=(
                        None if self.partial_retunes else self.locat.max_iterations
                    ),
                )
                if self.promotion == "shadow_ab":
                    return self._gate_candidate(
                        result, datasize_gb, duration_s, "drift", reason
                    )
                self._deploy(result, datasize_gb)
                return OnlineDecision(
                    datasize_gb=datasize_gb,
                    duration_s=duration_s,
                    retuned=True,
                    reason=reason,
                    config=result.best_config,
                    result=result,
                    trigger="drift",
                )

        return OnlineDecision(
            datasize_gb=datasize_gb,
            duration_s=float("nan") if duration_s is None else duration_s,
            retuned=False,
            reason="deployed configuration still valid",
            config=state.config,
        )
