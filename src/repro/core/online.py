"""Online tuning controller: when should LOCAT (re)tune?

The paper's deployment story (section 3.1) is an application that "runs
repeatedly many times with the size of input data changing over time".
This controller wraps a :class:`~repro.core.locat.LOCAT` instance and
watches the production runs: each incoming (datasize, duration)
observation is checked against the DAGP-backed expectation for the
currently deployed configuration, and a tuning session is triggered
when

* a datasize arrives that is far from anything tuned so far, or
* measured durations drift above the expectation (the model of the
  deployed config is stale — data distribution or cluster changed).

This is the glue a production user needs around the core algorithm; the
paper leaves it implicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.datasize import normalize_datasize
from repro.core.locat import LOCAT
from repro.core.result import TuningResult
from repro.sparksim.configspace import Configuration


@dataclass
class OnlineDecision:
    """What the controller did with one production observation."""

    datasize_gb: float
    duration_s: float
    retuned: bool
    reason: str
    config: Configuration
    result: TuningResult | None = None


@dataclass
class _DeployedState:
    config: Configuration
    tuned_datasizes: list[float] = field(default_factory=list)
    recent_ratios: list[float] = field(default_factory=list)


class OnlineController:
    """Drives LOCAT from a stream of production runs.

    ``datasize_margin`` — relative distance to the nearest tuned
    datasize beyond which a new size triggers adaptation (default 30%:
    tuned at 300 GB covers ~210-390 GB).
    ``drift_factor`` / ``drift_patience`` — re-tune after ``patience``
    consecutive runs slower than ``factor`` times the expected duration.
    """

    def __init__(
        self,
        locat: LOCAT,
        datasize_margin: float = 0.3,
        drift_factor: float = 1.3,
        drift_patience: int = 3,
    ):
        if datasize_margin <= 0:
            raise ValueError("datasize_margin must be positive")
        if drift_factor <= 1.0:
            raise ValueError("drift_factor must exceed 1.0")
        if drift_patience < 1:
            raise ValueError("drift_patience must be at least 1")
        self.locat = locat
        self.datasize_margin = datasize_margin
        self.drift_factor = drift_factor
        self.drift_patience = drift_patience
        self._state: _DeployedState | None = None

    # ------------------------------------------------------------------
    @property
    def is_deployed(self) -> bool:
        return self._state is not None

    @property
    def deployed_config(self) -> Configuration:
        if self._state is None:
            raise RuntimeError("no configuration deployed yet; call observe()")
        return self._state.config

    @property
    def tuned_datasizes(self) -> list[float]:
        """Datasizes covered by tuning sessions so far (empty pre-deploy)."""
        return list(self._state.tuned_datasizes) if self._state is not None else []

    @property
    def recent_ratios(self) -> list[float]:
        """The drift window: measured/expected ratios of the latest runs."""
        return list(self._state.recent_ratios) if self._state is not None else []

    def restore_state(
        self,
        config: Configuration,
        tuned_datasizes: list[float],
        recent_ratios: list[float] | None = None,
    ) -> None:
        """Rehydrate the deployed state persisted by a previous process.

        Together with :meth:`LOCAT.restore` this lets a restarted service
        resume exactly where it stopped: the deployed configuration, the
        datasizes it covers, and the partially filled drift window.
        """
        if not tuned_datasizes:
            raise ValueError("restore_state needs at least one tuned datasize")
        self._state = _DeployedState(
            config=config,
            tuned_datasizes=[normalize_datasize(d) for d in tuned_datasizes],
            recent_ratios=[float(r) for r in (recent_ratios or [])],
        )

    def would_retune(self, datasize_gb: float) -> bool:
        """Whether an observe at this datasize *deterministically* starts
        a tuning session: nothing deployed yet, or the size is beyond
        ``datasize_margin`` from everything tuned.  Drift-triggered
        retunes depend on the measured duration and are not predicted.
        The scheduler uses this to size a job's slot reservation before
        running it."""
        datasize_gb = normalize_datasize(datasize_gb)
        if self._state is None:
            return True
        nearest = min(self._state.tuned_datasizes, key=lambda d: abs(d - datasize_gb))
        return abs(datasize_gb - nearest) / nearest > self.datasize_margin

    def _expected_duration(self, datasize_gb: float) -> float | None:
        """Expected RQA-scaled duration of the deployed config at a size.

        Uses the nearest tuned datasize's observed duration with linear
        datasize scaling — deliberately simple and conservative.
        """
        assert self._state is not None
        observations = [
            o for o in self.locat._observations if o.config == self._state.config
        ]
        if not observations:
            return None
        nearest = min(observations, key=lambda o: abs(o.datasize_gb - datasize_gb))
        return nearest.rqa_duration_s * datasize_gb / nearest.datasize_gb

    # ------------------------------------------------------------------
    def observe(self, datasize_gb: float, duration_s: float | None = None) -> OnlineDecision:
        """Process one production run request.

        ``duration_s`` is the measured duration of the *previous* run of
        the deployed configuration at this datasize (None for the first
        call or when measurements are unavailable).  Returns the decision
        with the configuration to use for this run.
        """
        # Canonicalize before any comparison or store: a client sending
        # 100 vs 100.0 vs a JSON round-trip artifact must hit the same
        # tuned-datasize history, not fork a new one.
        datasize_gb = normalize_datasize(datasize_gb)

        if self._state is None:
            result = self.locat.tune(datasize_gb)
            self._state = _DeployedState(
                config=result.best_config, tuned_datasizes=[datasize_gb]
            )
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=duration_s or result.best_duration_s,
                retuned=True,
                reason="initial tuning session",
                config=result.best_config,
                result=result,
            )

        state = self._state
        if self.would_retune(datasize_gb):
            # Recomputed here only for the human-readable reason; the
            # decision rule itself lives in would_retune.
            nearest = min(state.tuned_datasizes, key=lambda d: abs(d - datasize_gb))
            relative_gap = abs(datasize_gb - nearest) / nearest
            result = self.locat.tune(datasize_gb)
            state.config = result.best_config
            state.tuned_datasizes.append(datasize_gb)
            state.recent_ratios.clear()
            return OnlineDecision(
                datasize_gb=datasize_gb,
                duration_s=duration_s or result.best_duration_s,
                retuned=True,
                reason=f"datasize {datasize_gb:.0f}GB is {relative_gap:.0%} from "
                f"nearest tuned size {nearest:.0f}GB",
                config=result.best_config,
                result=result,
            )

        if duration_s is not None:
            expected = self._expected_duration(datasize_gb)
            if expected is not None:
                state.recent_ratios.append(duration_s / max(expected, 1e-9))
                state.recent_ratios = state.recent_ratios[-self.drift_patience :]
                drifted = len(state.recent_ratios) >= self.drift_patience and all(
                    r > self.drift_factor for r in state.recent_ratios
                )
                if drifted:
                    result = self.locat.tune(datasize_gb)
                    state.config = result.best_config
                    if datasize_gb not in state.tuned_datasizes:
                        state.tuned_datasizes.append(datasize_gb)
                    state.recent_ratios.clear()
                    return OnlineDecision(
                        datasize_gb=datasize_gb,
                        duration_s=duration_s,
                        retuned=True,
                        reason=f"{self.drift_patience} consecutive runs over "
                        f"{self.drift_factor:.1f}x the expected duration",
                        config=result.best_config,
                        result=result,
                    )

        return OnlineDecision(
            datasize_gb=datasize_gb,
            duration_s=duration_s or float("nan"),
            retuned=False,
            reason="deployed configuration still valid",
            config=state.config,
        )
