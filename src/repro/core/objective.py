"""Objective wrapper: what every tuner (LOCAT and baselines) optimizes.

Wraps a simulator + application and accounts the *optimization overhead*:
the total simulated execution time of every evaluation a tuner requests.
This is exactly how the paper measures optimization time (Figures 2, 11,
12, 20, 21) — sample collection on the real cluster dominates, algorithm
CPU time is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.datasize import normalize_datasize
from repro.sparksim.configspace import Configuration
from repro.sparksim.engine import SparkSQLSimulator
from repro.sparksim.metrics import ApplicationMetrics
from repro.sparksim.query import Application
from repro.stats.sampling import ensure_rng


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration."""

    config: Configuration
    datasize_gb: float
    duration_s: float  # duration of what was actually executed
    metrics: ApplicationMetrics
    reduced: bool  # True when only the RQA (CSQ subset) was executed


def execute_trial(
    simulator: SparkSQLSimulator,
    app: Application,
    config: Configuration,
    datasize_gb: float,
    queries: list[str] | tuple[str, ...] | None = None,
    rng: np.random.Generator | None = None,
) -> Trial:
    """Run one configuration and build its :class:`Trial` (no recording).

    Free of objective state on purpose: a process-pool worker only needs
    the simulator and the application shipped to it — not a whole
    objective whose trial history grows with the session.
    """
    generator = ensure_rng(rng)
    target = app if queries is None else app.subset(list(queries))
    metrics = simulator.run(target, config, datasize_gb, rng=generator)
    return Trial(
        config=config,
        datasize_gb=normalize_datasize(datasize_gb),
        duration_s=metrics.duration_s,
        metrics=metrics,
        reduced=queries is not None,
    )


class SparkSQLObjective:
    """Callable objective with overhead accounting and trial history.

    ``run`` executes the full application; ``run_subset`` executes only
    the named queries (the RQA path QCSA enables).  Both append to
    ``history`` and add simulated seconds to ``overhead_s``.
    """

    def __init__(
        self,
        simulator: SparkSQLSimulator,
        app: Application,
        rng: int | np.random.Generator | None = None,
    ):
        self.simulator = simulator
        self.app = app
        self.rng = ensure_rng(rng)
        self.history: list[Trial] = []
        self.overhead_s: float = 0.0

    @property
    def space(self):
        return self.simulator.space

    @property
    def n_evaluations(self) -> int:
        return len(self.history)

    @property
    def overhead_hours(self) -> float:
        return self.overhead_s / 3600.0

    def execute(
        self,
        config: Configuration,
        datasize_gb: float,
        queries: list[str] | tuple[str, ...] | None = None,
        rng: np.random.Generator | None = None,
    ) -> Trial:
        """Execute a configuration WITHOUT recording it.

        ``queries=None`` runs the full application; otherwise only the
        named queries (the RQA path).  ``rng`` defaults to the shared
        objective generator; a parallel evaluator passes per-request
        child generators instead so concurrent executions never race on
        shared RNG state (see :mod:`repro.core.parallel`).  Pair with
        :meth:`record` to append the trial and account its overhead.
        """
        generator = self.rng if rng is None else rng
        return execute_trial(
            self.simulator, self.app, config, datasize_gb, queries, rng=generator
        )

    def record(self, trial: Trial) -> Trial:
        """Append a trial to the history and charge its overhead."""
        self.history.append(trial)
        self.overhead_s += trial.duration_s
        return trial

    def run(self, config: Configuration, datasize_gb: float) -> Trial:
        """Execute the full application and record the trial."""
        return self.record(self.execute(config, datasize_gb))

    def run_subset(self, config: Configuration, datasize_gb: float, queries: list[str]) -> Trial:
        """Execute only ``queries`` (the RQA) and record the trial."""
        return self.record(self.execute(config, datasize_gb, queries))

    def measure(self, config: Configuration, datasize_gb: float, repeats: int = 1) -> float:
        """Mean full-application time of ``config`` WITHOUT counting overhead.

        Used to score final tuned configurations — the paper's speedup
        comparisons (Figures 13, 14) measure the tuned application, which
        is not part of the optimization budget.
        """
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        times = [
            self.simulator.run(self.app, config, datasize_gb, rng=self.rng).duration_s
            for _ in range(repeats)
        ]
        return float(np.mean(times))

    def best_trial(self, datasize_gb: float | None = None) -> Trial:
        """Lowest-duration *full-application* trial (optionally per datasize).

        Falls back to reduced trials when no full runs exist.
        """
        if not self.history:
            raise RuntimeError("no trials recorded yet")
        if datasize_gb is not None:
            datasize_gb = normalize_datasize(datasize_gb)
        candidates = [t for t in self.history if not t.reduced]
        if datasize_gb is not None:
            candidates = [t for t in candidates if t.datasize_gb == datasize_gb]
        if not candidates:
            candidates = [
                t for t in self.history
                if datasize_gb is None or t.datasize_gb == datasize_gb
            ]
        if not candidates:
            raise RuntimeError(f"no trials recorded for datasize {datasize_gb}")
        return min(candidates, key=lambda t: t.duration_s)
