"""Donor selection: which tenant's history should warm-start a new one?

Given a target workload's :class:`~repro.transfer.fingerprint.WorkloadFingerprint`
and a populated :class:`~repro.service.store.HistoryStore`, this module
ranks the registered applications as transfer donors and packages the
winner's persisted history into a :class:`TransferPlan` that
:class:`~repro.core.locat.LOCAT` can consume (``transfer_from=``).

The policy has two gates, mirroring the two halves of the paper's
portability result (Figure 21):

1. **Fingerprint similarity** (workload shape): donors are ranked by
   :func:`~repro.transfer.fingerprint.fingerprint_similarity` between
   the target's static fingerprint and each donor's stored fingerprint
   (with the donor's dynamic part filled in from its run table).  Donors
   below ``min_similarity``, without bootstrap artifacts, or with too
   few tuning observations are not candidates at all.
2. **Importance-profile agreement** (:func:`cps_agreement`): after the
   target's *reduced* bootstrap, LOCAT compares its provisional CPS
   against the donor's persisted CPS.  Low agreement means the borrowed
   parameter-importance structure does not hold for this tenant and the
   transplant is rejected (the bootstrap then completes cold).

Everything here reads the store; nothing writes.  The store argument is
duck-typed (any object with ``list_apps`` / ``app_meta`` /
``load_artifacts`` / ``load_fingerprint`` / ``observations``) so this
module does not import :mod:`repro.service`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.iicp import CPSResult
from repro.sparksim.configspace import Configuration
from repro.sparksim.serialize import config_from_dict
from repro.sparksim.workloads import get_application
from repro.stats.correlation import spearman
from repro.transfer.fingerprint import WorkloadFingerprint, fingerprint_similarity

#: Donors below this fingerprint similarity are never proposed.
DEFAULT_MIN_SIMILARITY = 0.35

#: Transplants whose CPS agreement falls below this are rejected.
DEFAULT_MIN_AGREEMENT = 0.25

#: A donor needs at least this many persisted tuning observations.
DEFAULT_MIN_OBSERVATIONS = 6

#: How many donor observations a plan transplants (the run-table tail
#: plus the donor's best row): enough to shape a GP prior, small enough
#: that the surrogate engine's warm fits stay cheap.  Donor rows enter
#: the DAGP once, as warm data at the first fit of a session's BO loop;
#: the engine's incremental ``extend`` path then appends only the
#: session's own observations (donor rows are never re-transplanted),
#: so the transplant size bounds a one-off cost, not a per-iteration
#: one.
DEFAULT_MAX_OBSERVATIONS = 30


@dataclass(frozen=True)
class DonorCandidate:
    """One ranked potential donor (no history loaded yet)."""

    app_id: str
    benchmark: str
    similarity: float
    fingerprint: WorkloadFingerprint
    cps: CPSResult
    n_observations: int


@dataclass(frozen=True)
class TransferPlan:
    """Everything LOCAT needs to warm-start from one donor.

    ``observations`` are raw ``(config, datasize_gb, rqa_duration_s)``
    tuples from the donor's run table — durations in the *donor's* RQA
    units; LOCAT bias-corrects them against its own bootstrap samples
    before they enter the GP (see ``LOCAT._bootstrap_transfer``).
    """

    donor_app_id: str
    donor_benchmark: str
    similarity: float
    cps: CPSResult
    fingerprint: WorkloadFingerprint
    observations: tuple[tuple[Configuration, float, float], ...]
    min_similarity: float = DEFAULT_MIN_SIMILARITY
    min_agreement: float = DEFAULT_MIN_AGREEMENT


def cps_agreement(a: CPSResult, b: CPSResult) -> float:
    """Agreement of two importance profiles in ``[0, 1]``.

    Half Jaccard overlap of the selected parameter sets, half rank
    agreement (Spearman over |SCC| on the shared parameter names,
    negative correlation clamped to zero).  1.0 means the profiles
    select the same parameters in the same importance order.
    """
    selected_a, selected_b = set(a.selected), set(b.selected)
    union = selected_a | selected_b
    jaccard = len(selected_a & selected_b) / len(union) if union else 0.0

    common = sorted(set(a.scc) & set(b.scc))
    if len(common) >= 3:
        rank = spearman(
            [abs(a.scc[name]) for name in common],
            [abs(b.scc[name]) for name in common],
        )
        rank = max(0.0, float(rank))
    else:
        rank = jaccard  # too few shared names for a meaningful rank
    return 0.5 * jaccard + 0.5 * rank


def stored_fingerprint(store, app_id: str, rows: list | None = None) -> WorkloadFingerprint:
    """An application's fingerprint with its dynamic part filled in.

    Prefers the persisted ``fingerprint.json`` (apps registered before
    fingerprints existed fall back to recomputing from the benchmark
    name), then folds the run table's tuning rows into the dynamic
    ``seconds_per_gb`` component.  Pass ``rows`` when the caller already
    read the tuning rows, so ranking does not re-parse every
    candidate's run table.
    """
    data = store.load_fingerprint(app_id)
    if data is not None:
        fingerprint = WorkloadFingerprint.from_json(data)
    else:
        benchmark = store.app_meta(app_id)["benchmark"]
        fingerprint = WorkloadFingerprint.from_application(
            get_application(benchmark), benchmark=benchmark
        )
    if rows is None:
        rows = store.observations(app_id, source="tuning")
    if rows:
        fingerprint = fingerprint.with_observations(
            [r.datasize_gb for r in rows], [r.duration_s for r in rows]
        )
    return fingerprint


def donor_candidate(
    store,
    target: WorkloadFingerprint,
    app_id: str,
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
) -> DonorCandidate | None:
    """One application as a scored donor candidate, or None if ineligible.

    Eligibility: bootstrap artifacts (a persisted CPS) present and at
    least ``min_observations`` tuning rows.  Loads only this app's
    files — pinning a donor does not scan the store.
    """
    try:
        _, cps = store.load_artifacts(app_id)
        if cps is None:
            return None
        rows = store.observations(app_id, source="tuning")
        if len(rows) < min_observations:
            return None
        fingerprint = stored_fingerprint(store, app_id, rows=rows)
    except (ValueError, KeyError, json.JSONDecodeError, OSError):
        # Any unreadable persisted state (corrupt run table, truncated
        # artifacts/fingerprint/meta JSON) makes this tenant ineligible
        # to donate — it must not break *other* tenants' registrations
        # or rehydrations (the donor ranking scans the whole store).
        # The owning tenant's own rehydration surfaces the error.
        return None
    return DonorCandidate(
        app_id=app_id,
        benchmark=fingerprint.benchmark,
        similarity=fingerprint_similarity(target, fingerprint),
        fingerprint=fingerprint,
        cps=cps,
        n_observations=len(rows),
    )


def rank_donors(
    store,
    target: WorkloadFingerprint,
    exclude: tuple[str, ...] = (),
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
) -> list[DonorCandidate]:
    """All eligible donors, best fingerprint similarity first.

    Eligibility as in :func:`donor_candidate`, minus the excluded ids.
    Ties break on app id for a deterministic ranking.
    """
    candidates = [
        candidate
        for app_id in store.list_apps()
        if app_id not in exclude
        for candidate in [donor_candidate(store, target, app_id, min_observations)]
        if candidate is not None
    ]
    return sorted(candidates, key=lambda c: (-c.similarity, c.app_id))


def select_donor(
    store,
    target: WorkloadFingerprint,
    exclude: tuple[str, ...] = (),
    min_similarity: float = DEFAULT_MIN_SIMILARITY,
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
) -> DonorCandidate | None:
    """The best eligible donor above ``min_similarity``, or None."""
    ranked = rank_donors(store, target, exclude=exclude, min_observations=min_observations)
    if ranked and ranked[0].similarity >= min_similarity:
        return ranked[0]
    return None


def build_transfer_plan(
    store,
    candidate: DonorCandidate,
    max_observations: int = DEFAULT_MAX_OBSERVATIONS,
    min_similarity: float = DEFAULT_MIN_SIMILARITY,
    min_agreement: float = DEFAULT_MIN_AGREEMENT,
) -> TransferPlan:
    """Load the donor's history tail and package it for LOCAT.

    Keeps the last ``max_observations`` tuning rows (the donor's most
    recent — and therefore most converged — exploration) plus its
    all-time best row if the tail does not already contain it.
    """
    if max_observations < 1:
        raise ValueError("max_observations must be at least 1")
    rows = store.observations(candidate.app_id, source="tuning")
    if not rows:
        raise ValueError(f"donor {candidate.app_id!r} has no tuning observations")
    tail = rows[-max_observations:]
    best = min(rows, key=lambda r: r.duration_s)
    if best not in tail:
        # Displace the oldest tail row; [-0:] would keep the whole tail.
        tail = [best] + (tail[-(max_observations - 1):] if max_observations > 1 else [])
    return TransferPlan(
        donor_app_id=candidate.app_id,
        donor_benchmark=candidate.benchmark,
        similarity=candidate.similarity,
        cps=candidate.cps,
        fingerprint=candidate.fingerprint,
        observations=tuple(
            (config_from_dict(r.config), r.datasize_gb, r.duration_s) for r in tail
        ),
        min_similarity=min_similarity,
        min_agreement=min_agreement,
    )
