"""Workload fingerprints: a compact, comparable signature of an application.

The paper's portability claim (section 5.10, Figure 21) is that LOCAT's
importance structure — which queries are configuration-sensitive, which
parameters matter — carries across clusters and workloads.  To *exploit*
that claim the tuning service needs a cheap way to decide how alike two
workloads are **before** spending a single cluster run on the new one.

A :class:`WorkloadFingerprint` is that signature.  It has two parts:

* a **static** part computed from the :class:`~repro.sparksim.query.Application`
  plan alone — the query-category mix (selection/join/aggregation, the
  taxonomy of section 5.11), the stage-kind histogram, and scalar
  intensities (shuffle volume, input volume, CPU weight, skew, broadcast
  build-side size), all expressed as fractions of the input datasize so
  the signature is datasize-free;
* an optional **dynamic** part (:attr:`seconds_per_gb`) filled in from
  early observations — the median observed duration per input GB — which
  separates workloads whose plans look alike but whose runtime weight
  differs.

:func:`fingerprint_similarity` maps two fingerprints to ``[0, 1]``
(1.0 for identical signatures).  Donor selection
(:mod:`repro.transfer.donor`) ranks candidate donors by it and the
transfer bootstrap in :class:`~repro.core.locat.LOCAT` re-checks it with
the dynamic part filled in before transplanting any history.

Fingerprints round-trip exactly through JSON (:meth:`to_json` /
:meth:`from_json`): the service persists one per registered application
(``fingerprint.json`` in the history store) so future tenants can rank
donors without rebuilding their applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import median

from repro.sparksim.query import Application, StageKind

#: Query categories of the paper's section 5.11 taxonomy.
QUERY_CATEGORIES = ("selection", "join", "aggregation")

#: Stage kinds, in enum declaration order (stable across processes).
STAGE_KINDS = tuple(kind.value for kind in StageKind)

#: Relative weight of each fingerprint component in the similarity score.
#: The two mixes dominate (they encode what the workload *does*); the
#: scalar intensities refine; the dynamic part is a small tie-breaker and
#: is skipped (with weights renormalized) when either side lacks it.
_WEIGHTS = {
    "category_mix": 0.25,
    "stage_kind_mix": 0.25,
    "shuffle_intensity": 0.15,
    "input_intensity": 0.10,
    "cpu_intensity": 0.10,
    "skew": 0.05,
    "broadcast_mb": 0.05,
    "seconds_per_gb": 0.05,
}

#: Floor used when comparing scalar intensities, so two near-zero values
#: compare as similar instead of dividing noise by noise.
_SCALAR_FLOOR = 1e-3


@dataclass(frozen=True)
class WorkloadFingerprint:
    """The query-mix / stage-kind / volume signature of one application.

    All volume figures are fractions of the application input datasize
    (mirroring :class:`~repro.sparksim.query.Stage`), so fingerprints of
    the same application at different datasizes are identical except for
    the dynamic :attr:`seconds_per_gb` component.
    """

    benchmark: str
    n_queries: int
    #: Fraction of queries per category; every category key is present.
    category_mix: dict[str, float] = field(default_factory=dict)
    #: Fraction of stages per :class:`StageKind`; every kind key is present.
    stage_kind_mix: dict[str, float] = field(default_factory=dict)
    #: Mean per-query total shuffle volume (fraction of input datasize).
    shuffle_intensity: float = 0.0
    #: Mean per-query total bytes read (fraction of input datasize).
    input_intensity: float = 0.0
    #: Input-weighted mean stage CPU weight.
    cpu_intensity: float = 1.0
    #: Mean stage skew in [0, 1].
    skew: float = 0.0
    #: Mean broadcast build-side size (MB) over stages that have one.
    broadcast_mb: float = 0.0
    #: Median observed duration per input GB (dynamic part; None until
    #: early observations exist).  Units are whatever the observations
    #: were — a coarse magnitude signal, not a calibrated predictor.
    seconds_per_gb: float | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_application(cls, app: Application, benchmark: str | None = None) -> "WorkloadFingerprint":
        """Compute the static fingerprint of an application plan."""
        queries = app.queries
        category_mix = {c: 0.0 for c in QUERY_CATEGORIES}
        for query in queries:
            category_mix[query.category] += 1.0 / len(queries)

        stages = [s for q in queries for s in q.stages]
        stage_kind_mix = {k: 0.0 for k in STAGE_KINDS}
        for stage in stages:
            stage_kind_mix[stage.kind.value] += 1.0 / len(stages)

        total_input = sum(s.input_fraction for s in stages)
        cpu = (
            sum(s.cpu_weight * s.input_fraction for s in stages) / total_input
            if total_input > 0
            else float(sum(s.cpu_weight for s in stages)) / len(stages)
        )
        broadcast_sides = [s.small_side_mb for s in stages if s.small_side_mb > 0]
        return cls(
            benchmark=benchmark if benchmark is not None else app.name,
            n_queries=len(queries),
            category_mix=category_mix,
            stage_kind_mix=stage_kind_mix,
            shuffle_intensity=sum(q.total_shuffle_fraction for q in queries) / len(queries),
            input_intensity=sum(q.total_input_fraction for q in queries) / len(queries),
            cpu_intensity=cpu,
            skew=sum(s.skew for s in stages) / len(stages),
            broadcast_mb=sum(broadcast_sides) / len(broadcast_sides) if broadcast_sides else 0.0,
        )

    def with_observations(
        self, datasizes_gb: list[float], durations_s: list[float]
    ) -> "WorkloadFingerprint":
        """Fill the dynamic part from early (datasize, duration) pairs."""
        if len(datasizes_gb) != len(durations_s):
            raise ValueError("datasizes and durations must have the same length")
        if not durations_s:
            return self
        rates = [
            float(duration) / float(ds)
            for ds, duration in zip(datasizes_gb, durations_s)
            if float(ds) > 0 and float(duration) > 0
        ]
        if not rates:
            return self
        return replace(self, seconds_per_gb=float(median(rates)))

    # ------------------------------------------------------------------
    # JSON codec (exact round trip; persisted as fingerprint.json)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "n_queries": self.n_queries,
            "category_mix": dict(self.category_mix),
            "stage_kind_mix": dict(self.stage_kind_mix),
            "shuffle_intensity": self.shuffle_intensity,
            "input_intensity": self.input_intensity,
            "cpu_intensity": self.cpu_intensity,
            "skew": self.skew,
            "broadcast_mb": self.broadcast_mb,
            "seconds_per_gb": self.seconds_per_gb,
        }

    @classmethod
    def from_json(cls, data: dict) -> "WorkloadFingerprint":
        seconds = data.get("seconds_per_gb")
        return cls(
            benchmark=str(data["benchmark"]),
            n_queries=int(data["n_queries"]),
            category_mix={str(k): float(v) for k, v in data["category_mix"].items()},
            stage_kind_mix={str(k): float(v) for k, v in data["stage_kind_mix"].items()},
            shuffle_intensity=float(data["shuffle_intensity"]),
            input_intensity=float(data["input_intensity"]),
            cpu_intensity=float(data["cpu_intensity"]),
            skew=float(data["skew"]),
            broadcast_mb=float(data["broadcast_mb"]),
            seconds_per_gb=None if seconds is None else float(seconds),
        )


def _mix_similarity(a: dict[str, float], b: dict[str, float]) -> float:
    """1 - half the L1 distance between two distributions (both sum to 1)."""
    keys = set(a) | set(b)
    distance = sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)
    return max(0.0, 1.0 - 0.5 * distance)


def _scalar_similarity(a: float, b: float, floor: float = _SCALAR_FLOOR) -> float:
    """min/max ratio similarity with a floor for near-zero magnitudes."""
    hi = max(abs(a), abs(b), floor)
    return max(0.0, 1.0 - abs(a - b) / hi)


def fingerprint_similarity(a: WorkloadFingerprint, b: WorkloadFingerprint) -> float:
    """Similarity of two fingerprints in ``[0, 1]`` (1.0 when identical).

    A weighted blend of the mix similarities and scalar-intensity
    ratios (:data:`_WEIGHTS`); the dynamic ``seconds_per_gb`` component
    only participates when both fingerprints carry it.
    """
    scores = {
        "category_mix": _mix_similarity(a.category_mix, b.category_mix),
        "stage_kind_mix": _mix_similarity(a.stage_kind_mix, b.stage_kind_mix),
        "shuffle_intensity": _scalar_similarity(a.shuffle_intensity, b.shuffle_intensity),
        "input_intensity": _scalar_similarity(a.input_intensity, b.input_intensity),
        "cpu_intensity": _scalar_similarity(a.cpu_intensity, b.cpu_intensity),
        "skew": _scalar_similarity(a.skew, b.skew),
        "broadcast_mb": _scalar_similarity(a.broadcast_mb, b.broadcast_mb, floor=1.0),
    }
    if a.seconds_per_gb is not None and b.seconds_per_gb is not None:
        scores["seconds_per_gb"] = _scalar_similarity(a.seconds_per_gb, b.seconds_per_gb)
    total_weight = sum(_WEIGHTS[name] for name in scores)
    return sum(_WEIGHTS[name] * score for name, score in scores.items()) / total_weight
