"""Cross-application transfer warm-starting.

The PR-1 tuning service made each tenant's own history durable; this
package makes it *reusable across tenants*.  A newly registered
application no longer pays the full QCSA/IICP bootstrap when a similar
tenant already exists:

* :mod:`repro.transfer.fingerprint` — a workload signature
  (:class:`WorkloadFingerprint`) computed from the application plan plus
  early observations, with a ``[0, 1]`` similarity metric;
* :mod:`repro.transfer.donor` — the donor-selection policy: rank the
  history store's tenants by fingerprint similarity, validate the
  winner by importance-profile agreement (:func:`cps_agreement`), and
  package its history as a :class:`TransferPlan`.

The plan is consumed by :class:`~repro.core.locat.LOCAT` via
``transfer_from=``: the target runs a *reduced* bootstrap, checks the
donor's CPS against its own provisional one, and — on acceptance —
transplants the donor's observations into the DAGP as a low-fidelity
prior (a fidelity input column plus inflated observation noise), so the
target's own observations always dominate as they accumulate.  With no
eligible donor the plan is ``None`` and the cold-start trajectory is
reproduced bit for bit.

Service integration: register a tenant with ``warm_start="transfer"``
(HTTP ``POST /apps`` or :meth:`TuningClient.register_app`); CLI:
``repro tune --transfer-store DIR`` and ``repro serve --warm-start
transfer``.  See ``docs/architecture.md`` for the data flow and
``benchmarks/bench_transfer_warmstart.py`` for the evaluation-savings
measurement.
"""

from repro.transfer.donor import (
    DonorCandidate,
    TransferPlan,
    build_transfer_plan,
    cps_agreement,
    donor_candidate,
    rank_donors,
    select_donor,
    stored_fingerprint,
)
from repro.transfer.fingerprint import WorkloadFingerprint, fingerprint_similarity

__all__ = [
    "DonorCandidate",
    "TransferPlan",
    "WorkloadFingerprint",
    "build_transfer_plan",
    "cps_agreement",
    "donor_candidate",
    "fingerprint_similarity",
    "rank_donors",
    "select_donor",
    "stored_fingerprint",
]
