"""Thread-pool job scheduler with per-application serialization.

Tuning jobs from different tenants run concurrently on a small worker
pool; jobs for the same application run strictly in submission order
(the drift window in :class:`~repro.core.online.OnlineController` is
order-sensitive, and LOCAT sessions are not reentrant).  Each submitted
job gets a trackable :class:`Job` with the usual lifecycle:

    queued -> running -> done | failed

``GET /jobs/<id>`` serves :meth:`Job.to_json`; a killed scheduler fails
its queued jobs instead of leaving clients waiting forever.

Beyond worker-count concurrency the scheduler enforces a **slot**
budget: a job declares the evaluation parallelism it will use
(``slots``, typically the session's ``n_workers``) and admission blocks
until that many slots are free, so concurrent tenants running parallel
evaluation pipelines cannot oversubscribe the machine.  Waiting heavy
jobs cannot be starved by a stream of small ones (admission is ordered
by submission number), and a job larger than the whole budget runs
alone rather than deadlocking.

Two service-level controls ride on top: ``max_pending`` bounds the
queued backlog (:class:`SchedulerSaturatedError` -> HTTP 429 with a
``Retry-After`` hint, instead of unbounded queuing), and :meth:`drain`
is the graceful-shutdown path — refuse new work, *complete* everything
already accepted — used by sharded workers so accepted observations are
never dropped.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"


class SchedulerSaturatedError(RuntimeError):
    """The scheduler's pending queue is full; the caller should back off.

    Raised by :meth:`JobScheduler.submit` when ``max_pending`` is set and
    that many jobs are already queued (not yet running).  Carries a
    ``retry_after_s`` hint — the estimated time for the backlog to drain,
    from an exponentially-weighted average of recent job service times —
    which the HTTP layer forwards as a ``Retry-After`` header on the 429
    response instead of letting clients guess.
    """

    def __init__(self, pending: int, max_pending: int, retry_after_s: float):
        super().__init__(
            f"scheduler saturated: {pending} jobs already pending "
            f"(bound {max_pending}); retry in ~{retry_after_s:.0f}s"
        )
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One unit of work bound to an application.

    ``slots`` is the job's evaluation-parallelism footprint: a tuning
    session running with ``n_workers`` parallel evaluators occupies that
    many of the scheduler's slots while it runs, so concurrent tenants
    cannot oversubscribe the machine.
    """

    job_id: str
    app_id: str
    kind: str
    fn: Callable[[], Any] | None  # cleared on completion to free the closure
    slots: int = 1
    seq: int = 0  # monotone submission number (admission ordering)
    status: str = STATUS_QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: Any = None
    error: str | None = None
    done_event: threading.Event = field(default_factory=threading.Event)
    #: The owning scheduler's lock; snapshots of the mutable lifecycle
    #: fields are taken under it so an HTTP thread can never observe a
    #: half-written transition (e.g. ``status == "done"`` with
    #: ``finished_at`` still None) while a worker completes the job.
    scheduler_lock: threading.Lock | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        return self.status in (STATUS_DONE, STATUS_FAILED)

    def wait(self, timeout: float | None = None) -> bool:
        return self.done_event.wait(timeout)

    def to_json(self) -> dict:
        """JSON-safe view (the result itself is attached by the server)."""
        if self.scheduler_lock is not None:
            with self.scheduler_lock:
                return self._to_json_locked()
        return self._to_json_locked()

    def _to_json_locked(self) -> dict:
        return {
            "job_id": self.job_id,
            "app_id": self.app_id,
            "kind": self.kind,
            "slots": self.slots,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class JobScheduler:
    """N worker threads over per-application FIFO queues.

    The service is long-lived, so finished jobs are not kept forever:
    only the most recent ``max_finished`` stay queryable, older ones are
    evicted (``get`` then raises ``KeyError``, which the HTTP layer maps
    to 404).
    """

    def __init__(
        self,
        n_workers: int = 4,
        max_finished: int = 1000,
        total_slots: int | None = None,
        max_pending: int | None = None,
        job_id_prefix: str = "",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if max_finished < 1:
            raise ValueError("max_finished must be at least 1")
        if total_slots is not None and total_slots < 1:
            raise ValueError("total_slots must be at least 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_finished = max_finished
        #: Backpressure bound: queued-but-not-running jobs beyond this
        #: are refused with :class:`SchedulerSaturatedError` instead of
        #: growing the queue without limit.  ``None`` keeps the legacy
        #: unbounded behavior.
        self.max_pending = None if max_pending is None else int(max_pending)
        #: Prepended to every job id.  A sharded deployment gives each
        #: worker a distinct prefix (``w0-``, ``w1-``, ...) so the
        #: front end can route ``GET /jobs/<id>`` back to the worker
        #: that owns the job; the single-worker service keeps the empty
        #: prefix and therefore the legacy ``job-000001`` ids.
        self.job_id_prefix = str(job_id_prefix)
        #: EWMA of job service times, feeding the Retry-After hint.
        self._avg_service_s = 1.0  # guarded-by: _lock, _cond
        #: Evaluation-thread budget shared by all running jobs.  A job
        #: declaring ``slots=k`` (a tuning session with k parallel
        #: evaluators) is only admitted while the budget holds, except
        #: when nothing runs at all — an oversized job then runs alone
        #: rather than deadlocking.  Defaults to ``n_workers``, which
        #: with the default 1-slot jobs reproduces plain worker-count
        #: admission.
        self.total_slots = int(total_slots) if total_slots is not None else int(n_workers)
        self._slots_used = 0  # guarded-by: _lock, _cond
        self._lock = threading.Lock()
        #: The condition wraps ``_lock``: entering either acquires the
        #: same mutex, so both names are listed as valid guards below.
        self._cond = threading.Condition(self._lock)
        self._queues: dict[str, deque[Job]] = {}  # guarded-by: _lock, _cond
        self._busy: set[str] = set()  # guarded-by: _lock, _cond
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock, _cond
        self._finished: deque[str] = deque()  # guarded-by: _lock, _cond
        self._counter = itertools.count(1)  # guarded-by: _lock, _cond
        self._shutdown = False  # guarded-by: _lock, _cond
        self._draining = False  # guarded-by: _lock, _cond
        self._workers = [
            threading.Thread(target=self._worker, name=f"tuning-worker-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self, app_id: str, fn: Callable[[], Any], kind: str = "job", slots: int = 1
    ) -> Job:
        """Queue ``fn`` behind any earlier jobs of the same application.

        ``slots`` declares the job's evaluation-parallelism footprint
        (see :class:`Job`); heavier jobs wait until enough of the slot
        budget is free.
        """
        if slots < 1:
            raise ValueError("slots must be at least 1")
        with self._cond:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._draining:
                raise RuntimeError("scheduler is draining (service shutting down)")
            if self.max_pending is not None:
                pending = sum(len(queue) for queue in self._queues.values())
                if pending >= self.max_pending:
                    # Backlog drains at roughly one job per avg service
                    # time per worker thread.
                    hint = pending * self._avg_service_s / len(self._workers)
                    raise SchedulerSaturatedError(
                        pending, self.max_pending, min(max(hint, 1.0), 60.0)
                    )
            number = next(self._counter)
            job = Job(
                job_id=f"{self.job_id_prefix}job-{number:06d}",
                app_id=app_id,
                kind=kind,
                fn=fn,
                slots=int(slots),
                seq=number,
                scheduler_lock=self._lock,
            )
            self._jobs[job.job_id] = job
            self._queues.setdefault(app_id, deque()).append(job)
            self._cond.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self, app_id: str | None = None) -> list[Job]:
        """All tracked jobs in submission order, optionally per app."""
        with self._lock:
            out = list(self._jobs.values())
        if app_id is not None:
            out = [j for j in out if j.app_id == app_id]
        return out

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job finishes; raises TimeoutError on timeout."""
        job = self.get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status} after {timeout}s")
        return job

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work and wait for every accepted job to finish.

        Unlike :meth:`shutdown`, queued jobs are *completed*, not failed
        — this is the graceful path a sharded worker takes on shutdown
        so accepted observations are never dropped on the floor.  New
        submissions are refused from the moment drain begins.  Returns
        True when the queue emptied, False on timeout (jobs may still be
        running); either way the scheduler no longer accepts work.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._draining = True
            while any(self._queues.values()) or self._busy:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued jobs fail, the running ones finish."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            for queue in self._queues.values():
                for job in queue:
                    job.status = STATUS_FAILED
                    job.error = "scheduler shut down before the job ran"
                    job.finished_at = time.time()
                    self._finish_locked(job)
                queue.clear()
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _finish_locked(self, job: Job) -> None:
        """Completion bookkeeping: free the closure, evict old jobs."""
        job.fn = None
        job.done_event.set()
        self._finished.append(job.job_id)
        while len(self._finished) > self.max_finished:
            self._jobs.pop(self._finished.popleft(), None)

    def _next_job_locked(self) -> Job | None:
        # Runnable queue heads, oldest submission first.  Admission stops
        # at the first head that does not fit the slot budget: younger
        # jobs may not overtake it, so a heavy job waiting for slots is
        # guaranteed to get them once running work drains — a steady
        # stream of 1-slot jobs cannot starve it.  An oversized head
        # still runs once nothing else does, rather than deadlocking.
        heads = [
            queue[0] for app_id, queue in self._queues.items()
            if queue and app_id not in self._busy
        ]
        if not heads:
            return None
        job = min(heads, key=lambda j: j.seq)
        fits = self._slots_used + job.slots <= self.total_slots
        if not fits and self._slots_used > 0:
            return None  # reserve: drain before admitting younger jobs
        self._busy.add(job.app_id)
        self._slots_used += job.slots
        self._queues[job.app_id].popleft()
        return job

    def _worker(self) -> None:
        while True:
            with self._cond:
                job = self._next_job_locked()
                while job is None and not self._shutdown:
                    self._cond.wait()
                    job = self._next_job_locked()
                if job is None:
                    return  # shutting down
                job.status = STATUS_RUNNING
                job.started_at = time.time()
                fn = job.fn
            try:
                assert fn is not None  # only cleared after completion
                result = fn()
                error = None
            except Exception:
                result = None
                error = traceback.format_exc(limit=8)
            with self._cond:
                job.result = result
                job.error = error
                job.status = STATUS_FAILED if error else STATUS_DONE
                job.finished_at = time.time()
                if job.started_at is not None:
                    service_s = max(job.finished_at - job.started_at, 1e-4)
                    self._avg_service_s += 0.2 * (service_s - self._avg_service_s)
                self._busy.discard(job.app_id)
                self._slots_used -= job.slots
                self._finish_locked(job)
                self._cond.notify_all()
